module Bits = Gsim_bits.Bits
module Circuit = Gsim_ir.Circuit
module Sim = Gsim_engine.Sim
module Runtime = Gsim_engine.Runtime
module Checkpoint = Gsim_engine.Checkpoint
module Gsim = Gsim_core.Gsim

type config = {
  checkpoint_every : int option;
  checkpoint_dir : string option;
  ring : int;
  keyframe_every : int;
  shadow_stride : int option;
  shadow_window : int option;
  watchdog_seconds : float option;
  incident_dir : string option;
}

let default =
  {
    checkpoint_every = None;
    checkpoint_dir = None;
    ring = 3;
    keyframe_every = 16;
    shadow_stride = None;
    shadow_window = None;
    watchdog_seconds = None;
    incident_dir = None;
  }

type outcome = {
  final_cycle : int;
  ran : int;
  halted : bool;
  incidents : Incident.t list;
  checkpoints_written : int;
  keyframes_written : int;
  deltas_written : int;
  windows_verified : int;
  degraded : bool;
}

type t = {
  circuit : Circuit.t;
  cfg : config;
  keep : int list;
  primary : Gsim.compiled;
  primary_name : string;
  mutable fallback : Gsim.compiled option;
  mutable on_fallback : bool;
  store : Store.t option;
  mutable abs_cycle : int;
  mutable verified : Checkpoint.t option;
  mutable injections : (int * (Sim.t -> unit)) list;
  mutable incidents : Incident.t list;  (* newest first *)
  (* Delta-chain state: the materialized architectural state of the
     newest on-disk generation plus the CRC32 of that generation's file
     bytes — the base link of the next delta.  [None] restarts the chain
     with a keyframe (session start, post-resume, post-rollback). *)
  mutable last_persisted : (Checkpoint.t * int) option;
  mutable deltas_since_key : int;
  (* Dirty-word accumulators, keyed by memory {e name} so they cross
     engine boundaries (the primary and the fallback are separate
     elaborations whose memory indices need not agree).  [persist_dirty]
     holds words written since [last_persisted], [shadow_dirty] since
     the shadow compare base (the verified anchor, or the sampled
     window's start).  Both are fed from the active engine's write
     barrier by [drain_dirty]. *)
  persist_dirty : (string, (int, unit) Hashtbl.t) Hashtbl.t;
  shadow_dirty : (string, (int, unit) Hashtbl.t) Hashtbl.t;
  (* Whether the fallback engine's live state equals the verified
     anchor — when it does, a full-stride shadow window replays with no
     restore round-trip. *)
  mutable shadow_synced : bool;
  (* Scalar compare plan for the in-place fast path: (primary node id,
     fallback node id) for every input and kept register, matched by
     name once. *)
  mutable scalar_pairs : (int * int) array option;
}

(* The engine of last resort: the simplest compiled configuration —
   full-cycle evaluation, closure backend — the one every other engine is
   differentially tested against. *)
let fallback_config =
  { (Gsim.verilator ()) with Gsim.config_name = "reference-fallback"; backend = `Closures }

let create ?(forcible = []) cfg sim_config circuit =
  (* Both the primary and the fallback keep every register alive so their
     architectural-state captures describe the same state set at any
     optimization level — the precondition of [Checkpoint.equal]-based
     verification (same trick as the fault campaign's). *)
  let keep =
    List.map (fun (r : Circuit.register) -> r.Circuit.read) (Circuit.registers circuit)
  in
  let primary = Gsim.instantiate ~forcible ~keep sim_config circuit in
  let store = Option.map (fun d -> Store.create ~ring:cfg.ring d) cfg.checkpoint_dir in
  {
    circuit;
    cfg;
    keep;
    primary;
    primary_name = sim_config.Gsim.config_name;
    fallback = None;
    on_fallback = false;
    store;
    abs_cycle = 0;
    verified = None;
    injections = [];
    incidents = [];
    last_persisted = None;
    deltas_since_key = 0;
    persist_dirty = Hashtbl.create 8;
    shadow_dirty = Hashtbl.create 8;
    shadow_synced = false;
    scalar_pairs = None;
  }

let fallback t =
  match t.fallback with
  | Some f -> f
  | None ->
    let f = Gsim.instantiate ~keep:t.keep fallback_config t.circuit in
    t.fallback <- Some f;
    f

let sim t = if t.on_fallback then (fallback t).Gsim.sim else t.primary.Gsim.sim
let primary_sim t = t.primary.Gsim.sim
let degraded t = t.on_fallback
let cycle t = t.abs_cycle
let incidents t = List.rev t.incidents

let active_name t = if t.on_fallback then fallback_config.Gsim.config_name else t.primary_name

let active_runtime t =
  if t.on_fallback then (fallback t).Gsim.runtime else t.primary.Gsim.runtime

let checkpoint t =
  Checkpoint.with_cycle (Checkpoint.capture ?rt:(active_runtime t) (sim t)) t.abs_cycle

(* --- Dirty accumulators -------------------------------------------------- *)

let merge_dirty tbl name words =
  let set =
    match Hashtbl.find_opt tbl name with
    | Some s -> s
    | None ->
      let s = Hashtbl.create 64 in
      Hashtbl.replace tbl name s;
      s
  in
  Array.iter (fun w -> Hashtbl.replace set w ()) words

(* Drain the active engine's write barrier into both accumulators. *)
let drain_dirty t =
  match active_runtime t with
  | None -> ()
  | Some rt ->
    let c = (sim t).Sim.circuit in
    List.iter
      (fun (mi, words) ->
        let name = (Circuit.memory c mi).Circuit.mem_name in
        merge_dirty t.persist_dirty name words;
        merge_dirty t.shadow_dirty name words)
      (Runtime.take_dirty_mem rt)

(* Name-keyed word sets -> [(memory index, sorted words)] for the given
   engine's elaboration. *)
let dirty_for_sim (s : Sim.t) tbl =
  let mems = Circuit.memories s.Sim.circuit in
  let out = ref [] in
  for mi = Array.length mems - 1 downto 0 do
    match Hashtbl.find_opt tbl mems.(mi).Circuit.mem_name with
    | Some set when Hashtbl.length set > 0 ->
      let words = Array.make (Hashtbl.length set) 0 in
      let i = ref 0 in
      Hashtbl.iter
        (fun w () ->
          words.(!i) <- w;
          incr i)
        set;
      Array.sort compare words;
      out := (mi, words) :: !out
    | _ -> ()
  done;
  !out

(* The live engine's state as a full checkpoint, built sparsely: [base]
   patched with the scalars that differ and the memory words recorded in
   [tbl].  [tbl] must cover every word that may differ from [base] —
   which it does when [base] was established at a point where the
   accumulator was cleared and the write barrier was already on. *)
let materialize_current t tbl base =
  let s = sim t in
  drain_dirty t;
  let d =
    Checkpoint.capture_delta s ~cycle:t.abs_cycle ~dirty:(dirty_for_sim s tbl) ~base
      ~base_crc:0
  in
  (Checkpoint.apply_delta base d, d)

let resume t =
  match t.store with
  | None -> None
  | Some s -> (
    match Store.latest ~lenient:true s with
    | None -> None
    | Some (ck, path) ->
      Checkpoint.restore (sim t) ck;
      t.abs_cycle <- Checkpoint.cycle ck;
      t.verified <- Some ck;
      (* The restored generation may itself have been recovered leniently;
         the chain restarts with a fresh keyframe at the next persist
         rather than extending a link we cannot vouch for. *)
      t.last_persisted <- None;
      t.deltas_since_key <- 0;
      Hashtbl.reset t.persist_dirty;
      Hashtbl.reset t.shadow_dirty;
      t.shadow_synced <- false;
      Some (Checkpoint.cycle ck, path))

let inject_at t ~cycle f = t.injections <- (cycle, f) :: t.injections

let incident_path t =
  let dir =
    match t.cfg.incident_dir with
    | Some d -> Some d
    | None -> Option.map Store.dir t.store
  in
  Option.map
    (fun d ->
      Store.ensure_dir d;
      let rec free n =
        let p = Filename.concat d (Printf.sprintf "incident-%03d.rpt" n) in
        if Sys.file_exists p then free (n + 1) else p
      in
      free 1)
    dir

let record t inc =
  t.incidents <- inc :: t.incidents;
  match incident_path t with
  | Some path ->
    Incident.save path inc;
    Some path
  | None -> None

(* --- Shadow fast path ----------------------------------------------------

   The fallback engine holds the last verified state {e live}: a window
   is verified by replaying its pokes on the fallback in place and
   comparing against the primary in place — scalars exhaustively (there
   are few), memory over the union of both engines' dirty words (both
   started from the same state, so a word neither wrote cannot differ).
   Only on a mismatch does the expensive path run: full capture, fresh
   replays, and {!Shadow.verify}'s bisection to a one-cycle repro. *)

let scalar_pairs t =
  match t.scalar_pairs with
  | Some p -> p
  | None ->
    let pc = t.primary.Gsim.sim.Sim.circuit in
    let fc = (fallback t).Gsim.sim.Sim.circuit in
    let freg = Hashtbl.create 64 in
    List.iter
      (fun (r : Circuit.register) -> Hashtbl.replace freg r.Circuit.reg_name r.Circuit.read)
      (Circuit.registers fc);
    let pairs = ref [] in
    List.iter
      (fun (n : Circuit.node) ->
        match Circuit.find_node fc n.Circuit.name with
        | Some fn -> pairs := (n.Circuit.id, fn.Circuit.id) :: !pairs
        | None -> ())
      (Circuit.inputs pc);
    List.iter
      (fun (r : Circuit.register) ->
        match Hashtbl.find_opt freg r.Circuit.reg_name with
        | Some fid -> pairs := (r.Circuit.read, fid) :: !pairs
        | None -> ())
      (Circuit.registers pc);
    let p = Array.of_list !pairs in
    t.scalar_pairs <- Some p;
    p

let mem_index_by_name (s : Sim.t) =
  let tbl = Hashtbl.create 8 in
  Array.iteri
    (fun mi (m : Circuit.memory) -> Hashtbl.replace tbl m.Circuit.mem_name mi)
    (Circuit.memories s.Sim.circuit);
  tbl

(* In-place end-state comparison over the dirty union.  [fb_dirty] are
   the shadow's replay writes (name-keyed), [t.shadow_dirty] the
   primary's writes since the compare base. *)
let states_agree t fb_dirty =
  let ps = t.primary.Gsim.sim and fbs = (fallback t).Gsim.sim in
  Array.for_all
    (fun (pid, fid) -> Bits.equal (ps.Sim.peek pid) (fbs.Sim.peek fid))
    (scalar_pairs t)
  &&
  let pmi = mem_index_by_name ps and fmi = mem_index_by_name fbs in
  let names = Hashtbl.create 8 in
  Hashtbl.iter (fun n _ -> Hashtbl.replace names n ()) t.shadow_dirty;
  Hashtbl.iter (fun n _ -> Hashtbl.replace names n ()) fb_dirty;
  let ok = ref true in
  Hashtbl.iter
    (fun name () ->
      if !ok then
        match (Hashtbl.find_opt pmi name, Hashtbl.find_opt fmi name) with
        | Some pi, Some fi ->
          let check set =
            Hashtbl.iter
              (fun w () ->
                if !ok && not (Bits.equal (ps.Sim.read_mem pi w) (fbs.Sim.read_mem fi w))
                then ok := false)
              set
          in
          Option.iter check (Hashtbl.find_opt t.shadow_dirty name);
          Option.iter check (Hashtbl.find_opt fb_dirty name)
        | _ -> ok := false)
    names;
  !ok

let run ?(stimulus = fun _ -> []) ?halt t target =
  let start_cycle = t.abs_cycle in
  let ckpts = ref 0 and keyframes = ref 0 and deltas = ref 0 in
  let verified_windows = ref 0 in
  let run_incidents = ref [] in
  let halted = ref false in
  (* Arm the write barrier before the anchor states below are captured:
     the delta chain and the shadow compare both need every store since
     their base recorded. *)
  let arm_tracking () =
    if t.store <> None || t.cfg.shadow_stride <> None then
      match active_runtime t with
      | Some rt -> if not (Runtime.mem_tracking rt) then Runtime.set_mem_tracking rt true
      | None -> ()
  in
  arm_tracking ();
  if t.verified = None then t.verified <- Some (checkpoint t);
  (* Anchor the delta chain at run entry: persisting the verified anchor
     as a keyframe now means every periodic persist below is a cheap
     delta — the chain's one full-state write happens once, up front,
     reusing the capture just taken.  After a resume this re-serializes
     the restored state as a fresh keyframe, healing a leniently
     recovered (torn) source file and breaking the CRC links of any
     stale deltas from the abandoned timeline. *)
  (match (t.store, t.cfg.checkpoint_every) with
   | Some s, Some every when every > 0 && t.last_persisted = None ->
     let ck =
       match t.verified with
       | Some ck when Checkpoint.cycle ck = t.abs_cycle -> ck
       | _ -> checkpoint t
     in
     let _, crc = Store.save_keyframe s ck in
     t.last_persisted <- Some (ck, crc);
     t.deltas_since_key <- 0;
     Hashtbl.reset t.persist_dirty;
     incr keyframes;
     incr ckpts
   | _ -> ());
  (* Input pokes for the shadow's replay window, newest first — recorded
     only while a verification window is open. *)
  let trace = ref [] in
  let shadow_on () = t.cfg.shadow_stride <> None && not t.on_fallback in
  (* Sampled verification: with [shadow_window = Some w], only the last
     [w] cycles of each stride are re-executed — the window's start state
     is materialized sparsely from the primary at (boundary - w).  [None]
     replays the full stride from the verified anchor. *)
  let stride_of () = Option.value ~default:0 t.cfg.shadow_stride in
  let window_of () =
    let stride = stride_of () in
    match t.cfg.shadow_window with
    (* Sampling needs the write barrier to materialize the window's start
       state; without a runtime (reference primary) fall back to
       full-stride replay. *)
    | Some w when w > 0 && w < stride && t.primary.Gsim.runtime <> None -> w
    | _ -> stride
  in
  let sampled () = window_of () < stride_of () in
  let win_start = ref None in
  (* The sparse delta from the verified anchor to [win_start], kept so a
     synced shadow can be moved to the window start in place instead of
     paying a full-state restore. *)
  let win_delta = ref None in
  let record_inc inc =
    ignore (record t inc);
    run_incidents := inc :: !run_incidents
  in
  let rollback () =
    (* Graceful degradation: back to the last verified state, forward on
       the reference engine.  Injected (primary-only) faults do not follow
       us here, and neither does shadow verification — the fallback is the
       shadow. *)
    let ck = Option.get t.verified in
    let fb = fallback t in
    t.on_fallback <- true;
    Checkpoint.restore fb.Gsim.sim ck;
    t.abs_cycle <- Checkpoint.cycle ck;
    trace := [];
    win_start := None;
    win_delta := None;
    t.shadow_synced <- false;
    Hashtbl.reset t.shadow_dirty;
    (* The chain restarts on the fallback: its first persist is a
       keyframe, which also invalidates any stale deltas left on disk by
       the abandoned primary timeline (their base file gets overwritten,
       breaking their CRC links). *)
    t.last_persisted <- None;
    t.deltas_since_key <- 0;
    Hashtbl.reset t.persist_dirty;
    (* Drop the marks the restore itself just made, then re-arm. *)
    (match active_runtime t with
     | Some rt -> Runtime.set_mem_tracking rt false
     | None -> ());
    arm_tracking ();
    halted := false
  in
  let persist () =
    match t.store with
    | None -> ()
    | Some s ->
      let sm = sim t in
      drain_dirty t;
      let can_delta =
        match active_runtime t with Some rt -> Runtime.mem_tracking rt | None -> false
      in
      (match t.last_persisted with
       | Some (base, _) when Checkpoint.cycle base >= t.abs_cycle ->
         () (* nothing new since the chain tail *)
       | Some (base, base_crc)
         when can_delta && t.deltas_since_key < t.cfg.keyframe_every ->
         let dirty = dirty_for_sim sm t.persist_dirty in
         let d = Checkpoint.capture_delta sm ~cycle:t.abs_cycle ~dirty ~base ~base_crc in
         let _, crc = Store.save_delta s d in
         t.last_persisted <- Some (Checkpoint.apply_delta base d, crc);
         t.deltas_since_key <- t.deltas_since_key + 1;
         incr deltas;
         incr ckpts
       | _ ->
         let ck = checkpoint t in
         let _, crc = Store.save_keyframe s ck in
         t.last_persisted <- Some (ck, crc);
         t.deltas_since_key <- 0;
         incr keyframes;
         incr ckpts);
      Hashtbl.reset t.persist_dirty
  in
  let next_boundary () =
    let b = ref target in
    (match t.cfg.checkpoint_every with
     | Some every when every > 0 ->
       let next = ((t.abs_cycle / every) + 1) * every in
       if next < !b then b := next
     | _ -> ());
    (if shadow_on () then begin
       let vc = Checkpoint.cycle (Option.get t.verified) in
       let next_verify = vc + stride_of () in
       let next =
         if sampled () && !win_start = None then next_verify - window_of ()
         else next_verify
       in
       if next > t.abs_cycle && next < !b then b := next
     end);
    !b
  in
  (* Run the expensive path on a window the in-place compare rejected (or
     that cannot use it): fresh replays and bisection to a one-cycle
     repro.  Returns [true] when the window verified after all. *)
  let slow_verify ~start ~start_cycle ~pokes =
    let primary_end = checkpoint t in
    let fb = fallback t in
    t.shadow_synced <- false;
    match
      Shadow.verify ~circuit:t.circuit ~primary:t.primary.Gsim.sim ~shadow:fb.Gsim.sim
        ~start ~start_cycle ~pokes ~primary_end
    with
    | Shadow.Verified ck ->
      t.verified <- Some (Checkpoint.with_cycle ck t.abs_cycle);
      true
    | Shadow.Diverged inc | Shadow.Transient inc ->
      record_inc inc;
      rollback ();
      false
  in
  let verify_window () =
    let vck = Option.get t.verified in
    let pokes = Array.of_list (List.rev !trace) in
    let w = Array.length pokes in
    let start, start_cycle =
      match !win_start with
      | Some ck -> (ck, Checkpoint.cycle ck)
      | None -> (vck, Checkpoint.cycle vck)
    in
    let fb = fallback t in
    let fbs = fb.Gsim.sim in
    let fast_ok =
      match (t.primary.Gsim.runtime, fb.Gsim.runtime) with
      | Some prt, Some frt when Runtime.mem_tracking prt ->
        (* Bring the shadow to the window's start state; skip the restore
           when it is already sitting there, and when it sits at the
           verified anchor move it by the sparse window delta instead of
           a full-state restore. *)
        (if !win_start <> None || not t.shadow_synced then
           match (!win_delta, t.shadow_synced) with
           | Some d, true -> Checkpoint.restore_delta frt fbs d
           | _ -> Checkpoint.restore fbs start);
        (* Force-clear the shadow's tracker: only the replay's own writes
           belong in the compare set (restore marks every word). *)
        Runtime.set_mem_tracking frt false;
        Runtime.set_mem_tracking frt true;
        for i = 0 to w - 1 do
          List.iter (fun (id, v) -> fbs.Sim.poke id v) pokes.(i);
          fbs.Sim.step ()
        done;
        let fb_dirty = Hashtbl.create 8 in
        List.iter
          (fun (mi, words) ->
            merge_dirty fb_dirty
              (Circuit.memory fbs.Sim.circuit mi).Circuit.mem_name words)
          (Runtime.take_dirty_mem frt);
        drain_dirty t;
        if states_agree t fb_dirty then
          Some (fst (materialize_current t t.shadow_dirty start))
        else None
      | _ -> None
    in
    match fast_ok with
    | Some new_verified ->
      t.verified <- Some new_verified;
      t.shadow_synced <- true;  (* the shadow now sits at the new anchor *)
      trace := [];
      win_start := None;
      win_delta := None;
      Hashtbl.reset t.shadow_dirty;
      incr verified_windows
    | None ->
      if slow_verify ~start ~start_cycle ~pokes then begin
        trace := [];
        win_start := None;
        win_delta := None;
        drain_dirty t;
        Hashtbl.reset t.shadow_dirty;
        incr verified_windows
      end
  in
  while t.abs_cycle < target && not !halted do
    let upto = next_boundary () in
    let s = sim t in
    (* Per-chunk constants: whether pokes are recorded for replay, and
       whether any injection can fire — both invariant within a chunk, so
       the per-cycle loop stays lean when the features are off. *)
    let recording =
      shadow_on ()
      &&
      let vc = Checkpoint.cycle (Option.get t.verified) in
      if sampled () then !win_start <> None
      else t.abs_cycle >= vc
    in
    let has_injections = (not t.on_fallback) && t.injections <> [] in
    let t0 = Unix.gettimeofday () in
    let err =
      try
        while t.abs_cycle < upto && not !halted do
          let pokes = stimulus t.abs_cycle in
          (match pokes with
           | [] -> ()
           | pokes -> List.iter (fun (id, v) -> s.Sim.poke id v) pokes);
          if recording then trace := pokes :: !trace;
          if has_injections then
            List.iter
              (fun (c, f) -> if c = t.abs_cycle then f t.primary.Gsim.sim)
              t.injections;
          s.Sim.step ();
          t.abs_cycle <- t.abs_cycle + 1;
          match halt with
          | Some h when not (Bits.is_zero (s.Sim.peek h)) -> halted := true
          | _ -> ()
        done;
        None
      with e -> Some e
    in
    let dt = Unix.gettimeofday () -. t0 in
    match err with
    | Some e when t.on_fallback ->
      (* The engine of last resort failed: nothing left to degrade to. *)
      raise e
    | Some e ->
      record_inc
        {
          Incident.kind = Incident.Engine_error (Printexc.to_string e);
          window_start = Checkpoint.cycle (Option.get t.verified);
          window_end = t.abs_cycle;
          first_divergent = None;
          registers = [];
          start_state = None;
          trace = [];
          message = "";
        };
      rollback ()
    | None ->
      let tripped =
        (* The watchdog is only armed on the primary: the fallback is the
           engine of last resort, slow but trusted. *)
        (not t.on_fallback)
        && match t.cfg.watchdog_seconds with Some w -> dt > w | None -> false
      in
      if tripped then begin
        record_inc
          {
            Incident.kind = Incident.Watchdog dt;
            window_start = Checkpoint.cycle (Option.get t.verified);
            window_end = t.abs_cycle;
            first_divergent = None;
            registers = [];
            start_state = None;
            trace = [];
            message =
              Printf.sprintf "step batch [%d,%d) took %.3fs (budget %.3fs)"
                (Checkpoint.cycle (Option.get t.verified))
                t.abs_cycle dt
                (Option.get t.cfg.watchdog_seconds);
          };
        rollback ()
      end
      else begin
        (if shadow_on () then begin
           let vc = Checkpoint.cycle (Option.get t.verified) in
           let stride = stride_of () in
           (* Open a sampled window at (boundary - w): snapshot the
              primary sparsely; replay starts here. *)
           (if sampled () && !win_start = None && t.abs_cycle >= vc + stride - window_of ()
               && t.abs_cycle < vc + stride
            then begin
              let ck, d = materialize_current t t.shadow_dirty (Option.get t.verified) in
              win_start := Some (Checkpoint.with_cycle ck t.abs_cycle);
              win_delta := Some d;
              Hashtbl.reset t.shadow_dirty;
              trace := []
            end);
           let window_full = t.abs_cycle >= vc + stride in
           let at_end = t.abs_cycle >= target || !halted in
           if !trace <> [] && (window_full || at_end) then verify_window ()
         end);
        match t.cfg.checkpoint_every with
        | Some every when every > 0 && t.abs_cycle mod every = 0 && t.abs_cycle > 0 ->
          persist ()
        | _ -> ()
      end
  done;
  (* A completed session leaves its end state in the store, whatever the
     stride: resuming past [target] needs no replay. *)
  (match (t.store, t.cfg.checkpoint_every) with
   | Some _, Some every when every > 0 && t.abs_cycle mod every <> 0 -> persist ()
   | _ -> ());
  {
    final_cycle = t.abs_cycle;
    ran = t.abs_cycle - start_cycle;
    halted = !halted;
    incidents = List.rev !run_incidents;
    checkpoints_written = !ckpts;
    keyframes_written = !keyframes;
    deltas_written = !deltas;
    windows_verified = !verified_windows;
    degraded = t.on_fallback;
  }

let destroy t =
  t.primary.Gsim.destroy ();
  match t.fallback with Some f -> f.Gsim.destroy () | None -> ()
