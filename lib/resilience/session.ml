module Bits = Gsim_bits.Bits
module Circuit = Gsim_ir.Circuit
module Sim = Gsim_engine.Sim
module Checkpoint = Gsim_engine.Checkpoint
module Gsim = Gsim_core.Gsim

type config = {
  checkpoint_every : int option;
  checkpoint_dir : string option;
  ring : int;
  shadow_stride : int option;
  watchdog_seconds : float option;
  incident_dir : string option;
}

let default =
  {
    checkpoint_every = None;
    checkpoint_dir = None;
    ring = 3;
    shadow_stride = None;
    watchdog_seconds = None;
    incident_dir = None;
  }

type outcome = {
  final_cycle : int;
  ran : int;
  halted : bool;
  incidents : Incident.t list;
  checkpoints_written : int;
  windows_verified : int;
  degraded : bool;
}

type t = {
  circuit : Circuit.t;
  cfg : config;
  keep : int list;
  primary : Gsim.compiled;
  primary_name : string;
  mutable fallback : Gsim.compiled option;
  mutable on_fallback : bool;
  store : Store.t option;
  mutable abs_cycle : int;
  mutable verified : Checkpoint.t option;
  mutable injections : (int * (Sim.t -> unit)) list;
  mutable incidents : Incident.t list;  (* newest first *)
}

(* The engine of last resort: the simplest compiled configuration —
   full-cycle evaluation, closure backend — the one every other engine is
   differentially tested against. *)
let fallback_config =
  { (Gsim.verilator ()) with Gsim.config_name = "reference-fallback"; backend = `Closures }

let create ?(forcible = []) cfg sim_config circuit =
  (* Both the primary and the fallback keep every register alive so their
     architectural-state captures describe the same state set at any
     optimization level — the precondition of [Checkpoint.equal]-based
     verification (same trick as the fault campaign's). *)
  let keep =
    List.map (fun (r : Circuit.register) -> r.Circuit.read) (Circuit.registers circuit)
  in
  let primary = Gsim.instantiate ~forcible ~keep sim_config circuit in
  let store = Option.map (fun d -> Store.create ~ring:cfg.ring d) cfg.checkpoint_dir in
  {
    circuit;
    cfg;
    keep;
    primary;
    primary_name = sim_config.Gsim.config_name;
    fallback = None;
    on_fallback = false;
    store;
    abs_cycle = 0;
    verified = None;
    injections = [];
    incidents = [];
  }

let fallback t =
  match t.fallback with
  | Some f -> f
  | None ->
    let f = Gsim.instantiate ~keep:t.keep fallback_config t.circuit in
    t.fallback <- Some f;
    f

let sim t = if t.on_fallback then (fallback t).Gsim.sim else t.primary.Gsim.sim
let primary_sim t = t.primary.Gsim.sim
let degraded t = t.on_fallback
let cycle t = t.abs_cycle
let incidents t = List.rev t.incidents

let active_name t = if t.on_fallback then fallback_config.Gsim.config_name else t.primary_name

let checkpoint t = Checkpoint.with_cycle (Checkpoint.capture (sim t)) t.abs_cycle

let resume t =
  match t.store with
  | None -> None
  | Some s -> (
    match Store.latest ~lenient:true s with
    | None -> None
    | Some (ck, path) ->
      Checkpoint.restore (sim t) ck;
      t.abs_cycle <- Checkpoint.cycle ck;
      t.verified <- Some ck;
      Some (Checkpoint.cycle ck, path))

let inject_at t ~cycle f = t.injections <- (cycle, f) :: t.injections

let incident_path t =
  let dir =
    match t.cfg.incident_dir with
    | Some d -> Some d
    | None -> Option.map Store.dir t.store
  in
  Option.map
    (fun d ->
      Store.ensure_dir d;
      let rec free n =
        let p = Filename.concat d (Printf.sprintf "incident-%03d.rpt" n) in
        if Sys.file_exists p then free (n + 1) else p
      in
      free 1)
    dir

let record t inc =
  t.incidents <- inc :: t.incidents;
  match incident_path t with
  | Some path ->
    Incident.save path inc;
    Some path
  | None -> None

let run ?(stimulus = fun _ -> []) ?halt t target =
  let start_cycle = t.abs_cycle in
  let ckpts = ref 0 and verified_windows = ref 0 in
  let run_incidents = ref [] in
  let halted = ref false in
  if t.verified = None then t.verified <- Some (checkpoint t);
  (* Input pokes since the last verified checkpoint, newest first — the
     shadow's replay script and the raw material of incident repros. *)
  let trace = ref [] in
  let shadow_on () = t.cfg.shadow_stride <> None && not t.on_fallback in
  let record_inc inc =
    ignore (record t inc);
    run_incidents := inc :: !run_incidents
  in
  let rollback () =
    (* Graceful degradation: back to the last verified state, forward on
       the reference engine.  Injected (primary-only) faults do not follow
       us here, and neither does shadow verification — the fallback is the
       shadow. *)
    let ck = Option.get t.verified in
    let fb = fallback t in
    t.on_fallback <- true;
    Checkpoint.restore fb.Gsim.sim ck;
    t.abs_cycle <- Checkpoint.cycle ck;
    trace := [];
    halted := false
  in
  let persist () =
    match t.store with
    | Some s ->
      ignore (Store.save s (checkpoint t));
      incr ckpts
    | None -> ()
  in
  let next_boundary () =
    let b = ref target in
    (match t.cfg.checkpoint_every with
     | Some every when every > 0 ->
       let next = ((t.abs_cycle / every) + 1) * every in
       if next < !b then b := next
     | _ -> ());
    (match t.cfg.shadow_stride with
     | Some stride when stride > 0 && not t.on_fallback ->
       let next = Checkpoint.cycle (Option.get t.verified) + stride in
       if next < !b then b := next
     | _ -> ());
    !b
  in
  while t.abs_cycle < target && not !halted do
    let upto = next_boundary () in
    let s = sim t in
    let t0 = Unix.gettimeofday () in
    let err =
      try
        while t.abs_cycle < upto && not !halted do
          let pokes = stimulus t.abs_cycle in
          List.iter (fun (id, v) -> s.Sim.poke id v) pokes;
          if shadow_on () then trace := pokes :: !trace;
          if not t.on_fallback then
            List.iter
              (fun (c, f) -> if c = t.abs_cycle then f t.primary.Gsim.sim)
              t.injections;
          s.Sim.step ();
          t.abs_cycle <- t.abs_cycle + 1;
          match halt with
          | Some h when not (Bits.is_zero (s.Sim.peek h)) -> halted := true
          | _ -> ()
        done;
        None
      with e -> Some e
    in
    let dt = Unix.gettimeofday () -. t0 in
    match err with
    | Some e when t.on_fallback ->
      (* The engine of last resort failed: nothing left to degrade to. *)
      raise e
    | Some e ->
      record_inc
        {
          Incident.kind = Incident.Engine_error (Printexc.to_string e);
          window_start = Checkpoint.cycle (Option.get t.verified);
          window_end = t.abs_cycle;
          first_divergent = None;
          registers = [];
          start_state = None;
          trace = [];
          message = "";
        };
      rollback ()
    | None ->
      let tripped =
        (* The watchdog is only armed on the primary: the fallback is the
           engine of last resort, slow but trusted. *)
        (not t.on_fallback)
        && match t.cfg.watchdog_seconds with Some w -> dt > w | None -> false
      in
      if tripped then begin
        record_inc
          {
            Incident.kind = Incident.Watchdog dt;
            window_start = Checkpoint.cycle (Option.get t.verified);
            window_end = t.abs_cycle;
            first_divergent = None;
            registers = [];
            start_state = None;
            trace = [];
            message =
              Printf.sprintf "step batch [%d,%d) took %.3fs (budget %.3fs)"
                (Checkpoint.cycle (Option.get t.verified))
                t.abs_cycle dt
                (Option.get t.cfg.watchdog_seconds);
          };
        rollback ()
      end
      else begin
        (if shadow_on () && !trace <> [] then begin
           let vck = Option.get t.verified in
           let vc = Checkpoint.cycle vck in
           let stride = Option.get t.cfg.shadow_stride in
           let window_full = t.abs_cycle >= vc + stride in
           let at_end = t.abs_cycle >= target || !halted in
           if window_full || at_end then begin
             let pokes = Array.of_list (List.rev !trace) in
             let primary_end = checkpoint t in
             let fb = fallback t in
             match
               Shadow.verify ~circuit:t.circuit ~primary:t.primary.Gsim.sim
                 ~shadow:fb.Gsim.sim ~start:vck ~start_cycle:vc ~pokes ~primary_end
             with
             | Shadow.Verified ck ->
               t.verified <- Some (Checkpoint.with_cycle ck t.abs_cycle);
               trace := [];
               incr verified_windows
             | Shadow.Diverged inc | Shadow.Transient inc ->
               record_inc inc;
               rollback ()
           end
         end);
        match t.cfg.checkpoint_every with
        | Some every when every > 0 && t.abs_cycle mod every = 0 && t.abs_cycle > 0 ->
          persist ()
        | _ -> ()
      end
  done;
  (* A completed session leaves its end state in the store, whatever the
     stride: resuming past [target] needs no replay. *)
  (match (t.store, t.cfg.checkpoint_every) with
   | Some _, Some every when every > 0 && t.abs_cycle mod every <> 0 -> persist ()
   | _ -> ());
  {
    final_cycle = t.abs_cycle;
    ran = t.abs_cycle - start_cycle;
    halted = !halted;
    incidents = List.rev !run_incidents;
    checkpoints_written = !ckpts;
    windows_verified = !verified_windows;
    degraded = t.on_fallback;
  }

let destroy t =
  t.primary.Gsim.destroy ();
  match t.fallback with Some f -> f.Gsim.destroy () | None -> ()
