(** Crash-safe persistent checkpoint store.

    A store is a directory holding a ring of the last [ring] checkpoint
    generations, one file per generation: full keyframes
    ([ckpt-<cycle>.gck], the version-2 CRC-footed text format of
    {!Gsim_engine.Checkpoint}) and sparse deltas ([delta-<cycle>.gcd])
    chained off them by (base cycle, base file CRC) links.
    Writes are atomic — content goes to a temp file that is renamed into
    place — so a SIGKILL at any instant leaves either the previous
    generation or the new one, never a torn file under the final name.
    Stray temp files from a killed writer are ignored by readers and
    removed by the next clean exit of any process using the store. *)

type t

val create : ?ring:int -> string -> t
(** Opens (creating directories as needed) a store keeping the last
    [ring] generations (default 3; [ring <= 0] keeps everything). *)

val dir : t -> string

val save : t -> Gsim_engine.Checkpoint.t -> string
(** Atomically persists a full keyframe under its recorded cycle number,
    prunes generations beyond the ring, and returns the path written. *)

val save_keyframe : t -> Gsim_engine.Checkpoint.t -> string * int
(** Like {!save} but also returns the CRC32 of the file bytes written —
    the base link for a delta chained on this keyframe. *)

val save_delta : t -> Gsim_engine.Checkpoint.delta -> string * int
(** Atomically persists a sparse delta ([delta-<cycle>.gcd]) under its
    recorded cycle, prunes, and returns [(path, file CRC32)] — the crc
    is the base link for the {e next} delta in the chain. *)

val find : t -> int -> Gsim_engine.Checkpoint.t option
(** The state at exactly the given cycle, if a valid generation exists
    there — materialized through its delta chain when the generation is
    a delta (every link CRC-verified). *)

val checkpoints : t -> (int * string) list
(** Full keyframes on disk as [(cycle, path)], oldest first.  Deltas are
    not listed; see {!generations}. *)

val generations : t -> (int * string * [ `Full | `Delta ]) list
(** Every generation on disk, keyframes and deltas, oldest first. *)

val latest : ?lenient:bool -> t -> (Gsim_engine.Checkpoint.t * string) option
(** Newest generation that materializes with every chain link verified:
    a keyframe must pass its own CRC; a delta additionally requires its
    whole chain back to a keyframe intact, each link's stored CRC
    matching the actual bytes of the file it names.  A broken link fails
    every generation chained on top of it, so recovery lands on the
    newest generation older than the break.  With [~lenient:true], if
    {e every} generation fails, the newest keyframe is re-read in the
    last-complete-section mode of {!Gsim_engine.Checkpoint.of_string}
    (tolerating a torn final write) before giving up — deltas are never
    half-applied. *)

val write_atomic : string -> string -> unit
(** [write_atomic path content] — the store's temp+rename discipline for
    any auxiliary file (incident reports, golden-run traces). *)

val cleanup_tmp : unit -> unit
(** Remove temp files registered by this process.  Runs automatically on
    exit — including a SIGTERM-initiated one: the first registration
    installs a SIGTERM handler that routes through [exit 143] so the
    [at_exit] hook fires (unless some other handler was installed first,
    which then keeps ownership of the signal). *)

val track_tmp : string -> unit
(** Register an extra path (a socket, a spool file) for removal by
    {!cleanup_tmp} on exit/SIGINT/SIGTERM. *)

val untrack_tmp : string -> unit

val ensure_dir : string -> unit
(** [mkdir -p]. *)
