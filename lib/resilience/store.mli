(** Crash-safe persistent checkpoint store.

    A store is a directory holding a ring of the last [ring] checkpoint
    generations, one file per checkpoint ([ckpt-<cycle>.gck], the
    version-2 CRC-footed text format of {!Gsim_engine.Checkpoint}).
    Writes are atomic — content goes to a temp file that is renamed into
    place — so a SIGKILL at any instant leaves either the previous
    generation or the new one, never a torn file under the final name.
    Stray temp files from a killed writer are ignored by readers and
    removed by the next clean exit of any process using the store. *)

type t

val create : ?ring:int -> string -> t
(** Opens (creating directories as needed) a store keeping the last
    [ring] generations (default 3; [ring <= 0] keeps everything). *)

val dir : t -> string

val save : t -> Gsim_engine.Checkpoint.t -> string
(** Atomically persists the checkpoint under its recorded cycle number,
    prunes generations beyond the ring, and returns the path written. *)

val find : t -> int -> Gsim_engine.Checkpoint.t option
(** The generation captured at exactly the given cycle, if present and
    valid. *)

val checkpoints : t -> (int * string) list
(** All generations on disk as [(cycle, path)], oldest first. *)

val latest : ?lenient:bool -> t -> (Gsim_engine.Checkpoint.t * string) option
(** Newest generation that passes CRC validation, falling back to older
    generations when the newest is corrupt.  With [~lenient:true], if
    {e every} generation fails validation the newest is re-read in the
    last-complete-section mode of {!Gsim_engine.Checkpoint.of_string}
    (tolerating a torn final write) before giving up. *)

val write_atomic : string -> string -> unit
(** [write_atomic path content] — the store's temp+rename discipline for
    any auxiliary file (incident reports, golden-run traces). *)

val cleanup_tmp : unit -> unit
(** Remove temp files registered by this process.  Runs automatically on
    exit — including a SIGTERM-initiated one: the first registration
    installs a SIGTERM handler that routes through [exit 143] so the
    [at_exit] hook fires (unless some other handler was installed first,
    which then keeps ownership of the signal). *)

val track_tmp : string -> unit
(** Register an extra path (a socket, a spool file) for removal by
    {!cleanup_tmp} on exit/SIGINT/SIGTERM. *)

val untrack_tmp : string -> unit

val ensure_dir : string -> unit
(** [mkdir -p]. *)
