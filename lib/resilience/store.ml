module Checkpoint = Gsim_engine.Checkpoint

(* --- Atomic writes and temp-file hygiene ---------------------------------
   Every persistent artifact of the resilience layer reaches its final
   name through write-to-temp + rename, so a reader never observes a
   half-written file (a SIGKILL leaves at most a stray temp file, which
   the next run ignores and which [at_exit] removes on any clean or
   SIGINT-interrupted exit). *)

let live_tmp : (string, unit) Hashtbl.t = Hashtbl.create 8
let live_lock = Mutex.create ()

let cleanup_tmp () =
  (* Runs from [at_exit] — possibly via the SIGTERM handler below, which
     may have interrupted this very thread inside a locked section, so a
     blocking lock could self-deadlock.  Cleanup proceeds either way; the
     process is exiting. *)
  let locked = Mutex.try_lock live_lock in
  Hashtbl.iter (fun p () -> try Sys.remove p with Sys_error _ -> ()) live_tmp;
  Hashtbl.reset live_tmp;
  if locked then Mutex.unlock live_lock

let cleanup_registered = ref false

let register_cleanup () =
  if not !cleanup_registered then begin
    cleanup_registered := true;
    at_exit cleanup_tmp;
    (* SIGTERM's default action kills the process without running
       [at_exit], leaving temp files behind — and SIGTERM is exactly how
       supervisors (and gsimd's own drain) stop long runs.  Route it
       through [exit 143] so the at_exit hook fires.  A handler installed
       before us is kept (it owns the signal); one installed after us
       (the daemon's graceful drain) simply replaces this one. *)
    match Sys.signal Sys.sigterm (Sys.Signal_handle (fun _ -> exit 143)) with
    | Sys.Signal_default -> ()
    | previous -> Sys.set_signal Sys.sigterm previous
    | exception Invalid_argument _ -> () (* no SIGTERM on this platform *)
  end

let track_tmp path =
  register_cleanup ();
  Mutex.protect live_lock (fun () -> Hashtbl.replace live_tmp path ())

let untrack_tmp path = Mutex.protect live_lock (fun () -> Hashtbl.remove live_tmp path)

let write_atomic path content =
  let tmp = Printf.sprintf "%s.tmp.%d" path (Unix.getpid ()) in
  track_tmp tmp;
  let oc = open_out tmp in
  (try
     output_string oc content;
     flush oc
   with e ->
     close_out_noerr oc;
     raise e);
  close_out oc;
  Sys.rename tmp path;
  untrack_tmp tmp

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let ensure_dir = mkdir_p

(* --- The checkpoint ring ------------------------------------------------- *)

type t = { dir : string; ring : int }

let create ?(ring = 3) dir =
  mkdir_p dir;
  { dir; ring }

let dir t = t.dir

let path_of_cycle t cycle = Filename.concat t.dir (Printf.sprintf "ckpt-%012d.gck" cycle)

let cycle_of_name name =
  if String.length name = 21 && String.sub name 0 5 = "ckpt-"
     && Filename.check_suffix name ".gck"
  then int_of_string_opt (String.sub name 5 12)
  else None

let checkpoints t =
  (try Sys.readdir t.dir with Sys_error _ -> [||])
  |> Array.to_list
  |> List.filter_map (fun name ->
         match cycle_of_name name with
         | Some c -> Some (c, Filename.concat t.dir name)
         | None -> None)
  |> List.sort compare

let prune t =
  if t.ring > 0 then begin
    let cks = checkpoints t in
    let excess = List.length cks - t.ring in
    List.iteri
      (fun i (_, path) ->
        if i < excess then try Sys.remove path with Sys_error _ -> ())
      cks
  end

let save t ck =
  let path = path_of_cycle t (Checkpoint.cycle ck) in
  write_atomic path (Checkpoint.to_string ck);
  prune t;
  path

let find t cycle =
  let path = path_of_cycle t cycle in
  if Sys.file_exists path then
    match Checkpoint.load path with ck -> Some ck | exception Failure _ -> None
  else None

let latest ?(lenient = false) t =
  let candidates = List.rev (checkpoints t) in
  let rec strict = function
    | [] -> None
    | (_, path) :: rest -> (
      match Checkpoint.load path with
      | ck -> Some (ck, path)
      | exception Failure _ -> strict rest)
  in
  match strict candidates with
  | Some _ as r -> r
  | None -> (
    (* Every generation failed validation.  As a last resort the newest
       file is re-read in the checkpoint parser's last-complete-section
       mode — better a slightly older architectural state than nothing,
       and the caller asked for it explicitly. *)
    match candidates with
    | (_, path) :: _ when lenient -> (
      match Checkpoint.load ~lenient:true path with
      | ck -> Some (ck, path)
      | exception Failure _ -> None)
    | _ -> None)
