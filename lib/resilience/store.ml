module Checkpoint = Gsim_engine.Checkpoint

(* --- Atomic writes and temp-file hygiene ---------------------------------
   Every persistent artifact of the resilience layer reaches its final
   name through write-to-temp + rename, so a reader never observes a
   half-written file (a SIGKILL leaves at most a stray temp file, which
   the next run ignores and which [at_exit] removes on any clean or
   SIGINT-interrupted exit). *)

let live_tmp : (string, unit) Hashtbl.t = Hashtbl.create 8
let live_lock = Mutex.create ()

let cleanup_tmp () =
  (* Runs from [at_exit] — possibly via the SIGTERM handler below, which
     may have interrupted this very thread inside a locked section, so a
     blocking lock could self-deadlock.  Cleanup proceeds either way; the
     process is exiting. *)
  let locked = Mutex.try_lock live_lock in
  Hashtbl.iter (fun p () -> try Sys.remove p with Sys_error _ -> ()) live_tmp;
  Hashtbl.reset live_tmp;
  if locked then Mutex.unlock live_lock

let cleanup_registered = ref false

let register_cleanup () =
  if not !cleanup_registered then begin
    cleanup_registered := true;
    at_exit cleanup_tmp;
    (* SIGTERM's default action kills the process without running
       [at_exit], leaving temp files behind — and SIGTERM is exactly how
       supervisors (and gsimd's own drain) stop long runs.  Route it
       through [exit 143] so the at_exit hook fires.  A handler installed
       before us is kept (it owns the signal); one installed after us
       (the daemon's graceful drain) simply replaces this one. *)
    match Sys.signal Sys.sigterm (Sys.Signal_handle (fun _ -> exit 143)) with
    | Sys.Signal_default -> ()
    | previous -> Sys.set_signal Sys.sigterm previous
    | exception Invalid_argument _ -> () (* no SIGTERM on this platform *)
  end

let track_tmp path =
  register_cleanup ();
  Mutex.protect live_lock (fun () -> Hashtbl.replace live_tmp path ())

let untrack_tmp path = Mutex.protect live_lock (fun () -> Hashtbl.remove live_tmp path)

let write_atomic path content =
  let tmp = Printf.sprintf "%s.tmp.%d" path (Unix.getpid ()) in
  track_tmp tmp;
  let oc = open_out tmp in
  (try
     output_string oc content;
     flush oc
   with e ->
     close_out_noerr oc;
     raise e);
  close_out oc;
  Sys.rename tmp path;
  untrack_tmp tmp

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let ensure_dir = mkdir_p

(* --- The checkpoint ring -------------------------------------------------

   Two kinds of generation file share the directory: full keyframes
   ([ckpt-<cycle>.gck]) and sparse deltas ([delta-<cycle>.gcd]) whose
   base link names an older generation by cycle and file CRC.  Readers
   materialize state by walking a delta chain back to its keyframe —
   verifying every link's CRC against the actual file bytes — then
   applying the deltas forward.  A broken link (torn delta, corrupt or
   missing base) invalidates every generation chained on top of it, and
   recovery falls back to the newest generation older than the break. *)

type t = {
  dir : string;
  ring : int;
  (* Chain links known to this handle (delta cycle -> base cycle), fed by
     [save_delta] and lazily from disk — so the per-save [prune] does not
     re-read and re-parse every retained delta file. *)
  links : (int, int) Hashtbl.t;
}

let create ?(ring = 3) dir =
  mkdir_p dir;
  { dir; ring; links = Hashtbl.create 16 }

let dir t = t.dir

let path_of_cycle t cycle = Filename.concat t.dir (Printf.sprintf "ckpt-%012d.gck" cycle)

let delta_path_of_cycle t cycle =
  Filename.concat t.dir (Printf.sprintf "delta-%012d.gcd" cycle)

let cycle_of_name name =
  if String.length name = 21 && String.sub name 0 5 = "ckpt-"
     && Filename.check_suffix name ".gck"
  then int_of_string_opt (String.sub name 5 12)
  else None

let delta_cycle_of_name name =
  if String.length name = 22 && String.sub name 0 6 = "delta-"
     && Filename.check_suffix name ".gcd"
  then int_of_string_opt (String.sub name 6 12)
  else None

let checkpoints t =
  (try Sys.readdir t.dir with Sys_error _ -> [||])
  |> Array.to_list
  |> List.filter_map (fun name ->
         match cycle_of_name name with
         | Some c -> Some (c, Filename.concat t.dir name)
         | None -> None)
  |> List.sort compare

let generations t =
  (try Sys.readdir t.dir with Sys_error _ -> [||])
  |> Array.to_list
  |> List.filter_map (fun name ->
         match cycle_of_name name with
         | Some c -> Some (c, Filename.concat t.dir name, `Full)
         | None -> (
           match delta_cycle_of_name name with
           | Some c -> Some (c, Filename.concat t.dir name, `Delta)
           | None -> None))
  |> List.sort compare

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Materialize the generation at [cycle]: raw bytes are CRC-checked
   against the link that referenced them (when [expect_crc] is given),
   deltas recurse to their base and apply forward.  Any failure raises
   [Failure] — the caller treats the whole chain head as unusable. *)
let rec materialize t ?expect_crc cycle =
  let kind, path =
    let full = path_of_cycle t cycle in
    if Sys.file_exists full then (`Full, full)
    else
      let d = delta_path_of_cycle t cycle in
      if Sys.file_exists d then (`Delta, d)
      else failwith (Printf.sprintf "store: no generation at cycle %d" cycle)
  in
  let raw = read_file path in
  (match expect_crc with
   | Some crc when Checkpoint.crc32 raw <> crc ->
     failwith
       (Printf.sprintf "store: generation at cycle %d does not match its chain link" cycle)
   | _ -> ());
  match kind with
  | `Full -> Checkpoint.of_string raw
  | `Delta ->
    let d = Checkpoint.delta_of_string raw in
    let base_cycle, base_crc = Checkpoint.delta_base d in
    if base_cycle >= cycle then
      failwith (Printf.sprintf "store: delta at cycle %d links forward" cycle);
    Checkpoint.apply_delta (materialize t ~expect_crc:base_crc base_cycle) d

(* Keep the newest [ring] generations plus everything they chain onto:
   pruning a delta's base would break the chain, so bases are retained
   transitively until a newer keyframe displaces the whole chain from
   the ring window.  Between keyframes the directory therefore holds up
   to [keyframe cadence + ring] files.  An unparseable kept delta
   contributes no links (its chain is already broken). *)
let prune t =
  if t.ring > 0 then begin
    let gens = generations t in
    let newest = List.rev gens in
    let keep = Hashtbl.create 16 in
    let rec close cycle =
      if not (Hashtbl.mem keep cycle) then begin
        Hashtbl.replace keep cycle ();
        match Hashtbl.find_opt t.links cycle with
        | Some base -> close base
        | None -> (
          match List.find_opt (fun (c, _, _) -> c = cycle) gens with
          | Some (_, path, `Delta) -> (
            match Checkpoint.load_delta path with
            | d ->
              let base = fst (Checkpoint.delta_base d) in
              Hashtbl.replace t.links cycle base;
              close base
            | exception (Failure _ | Sys_error _) -> ())
          | _ -> ())
      end
    in
    List.iteri (fun i (c, _, _) -> if i < t.ring then close c) newest;
    List.iter
      (fun (c, path, _) ->
        if not (Hashtbl.mem keep c) then begin
          Hashtbl.remove t.links c;
          try Sys.remove path with Sys_error _ -> ()
        end)
      gens
  end

let save_keyframe t ck =
  let path = path_of_cycle t (Checkpoint.cycle ck) in
  let content = Checkpoint.to_string ck in
  write_atomic path content;
  (* A keyframe displaces any stale same-cycle delta link. *)
  Hashtbl.remove t.links (Checkpoint.cycle ck);
  prune t;
  (path, Checkpoint.crc32 content)

let save t ck = fst (save_keyframe t ck)

let save_delta t d =
  let path = delta_path_of_cycle t (Checkpoint.delta_cycle d) in
  let content = Checkpoint.delta_to_string d in
  write_atomic path content;
  Hashtbl.replace t.links (Checkpoint.delta_cycle d) (fst (Checkpoint.delta_base d));
  prune t;
  (path, Checkpoint.crc32 content)

let find t cycle =
  match materialize t cycle with
  | ck -> Some ck
  | exception (Failure _ | Sys_error _) -> None

let latest ?(lenient = false) t =
  let candidates = List.rev (generations t) in
  let rec strict = function
    | [] -> None
    | (cycle, path, _) :: rest -> (
      match materialize t cycle with
      | ck -> Some (ck, path)
      | exception (Failure _ | Sys_error _) -> strict rest)
  in
  match strict candidates with
  | Some _ as r -> r
  | None -> (
    (* Every generation failed validation.  As a last resort the newest
       {e keyframe} is re-read in the checkpoint parser's
       last-complete-section mode — better a slightly older architectural
       state than nothing, and the caller asked for it explicitly.  Torn
       deltas are never half-applied: a partial delta reconstructs wrong
       state, an old keyframe prefix merely stale state. *)
    match List.filter (fun (_, _, k) -> k = `Full) candidates with
    | (_, path, _) :: _ when lenient -> (
      match Checkpoint.load ~lenient:true path with
      | ck -> Some (ck, path)
      | exception (Failure _ | Sys_error _) -> None)
    | _ -> None)
