(** Shadow lockstep verification.

    At a configurable stride, a resilient session re-executes the window
    since the last verified checkpoint on a reference engine (full-cycle,
    closure backend) and compares architectural state.  On disagreement
    the window is delta-debugged — bisected on cycle ranges down to an
    adjacent agree/disagree pair, then reduced to the register subset
    that differs — yielding a minimal, replayable incident. *)

module Bits = Gsim_bits.Bits
open Gsim_ir

type verdict =
  | Verified of Gsim_engine.Checkpoint.t
      (** the shadow's (= primary's) end state: the new trust anchor *)
  | Diverged of Incident.t
      (** deterministic divergence, bisected to one cycle *)
  | Transient of Incident.t
      (** the primary's own replay no longer reproduces the divergence *)

val verify :
  circuit:Circuit.t ->
  primary:Gsim_engine.Sim.t ->
  shadow:Gsim_engine.Sim.t ->
  start:Gsim_engine.Checkpoint.t ->
  start_cycle:int ->
  pokes:(int * Bits.t) list array ->
  primary_end:Gsim_engine.Checkpoint.t ->
  verdict
(** [pokes.(i)] are the input pokes applied before step [i] of the
    window; [primary_end] is the primary's capture after the last step.
    Verification replays the window on [shadow] from [start]; a
    divergence additionally replays prefixes on {e both} engines to
    bisect.  Both sims are clobbered — the caller rolls back. *)

val replay : circuit:Circuit.t -> Gsim_engine.Sim.t -> Incident.t -> bool
(** Replays a divergence incident on the given (primary-configured) sim:
    restore the shrunk start state, apply the recorded trace, and check
    that the first-divergent signals reproduce the recorded primary
    values while still differing from the shadow's.  [false] for
    incidents without a repro (transient, watchdog, engine error). *)

val run_window :
  Gsim_engine.Sim.t ->
  Gsim_engine.Checkpoint.t ->
  (int * Bits.t) list array ->
  int ->
  Gsim_engine.Checkpoint.t
(** [run_window sim start pokes k]: restore, step [k] cycles applying
    pokes, capture.  Exposed for the resilience tests. *)
