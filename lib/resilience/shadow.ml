module Bits = Gsim_bits.Bits
module Circuit = Gsim_ir.Circuit
module Sim = Gsim_engine.Sim
module Checkpoint = Gsim_engine.Checkpoint

type verdict =
  | Verified of Checkpoint.t
  | Diverged of Incident.t
  | Transient of Incident.t

(* Replay [k] steps of the window on [sim]: restore the start state,
   apply the recorded pokes cycle by cycle, and capture.  Works on any
   engine of the same elaboration — node ids are preserved across
   instantiation, and restore invalidates activity state. *)
let run_window sim start pokes k =
  Checkpoint.restore sim start;
  for i = 0 to k - 1 do
    List.iter (fun (id, v) -> sim.Sim.poke id v) pokes.(i);
    sim.Sim.step ()
  done;
  Checkpoint.capture sim

let pp_value v = Format.asprintf "%a" Bits.pp v

let verify ~circuit ~primary ~shadow ~start ~start_cycle ~pokes ~primary_end =
  let w = Array.length pokes in
  let shadow_end = run_window shadow start pokes w in
  if Checkpoint.equal shadow_end primary_end then
    Verified shadow_end
  else begin
    (* The engines disagree about the window's end state.  First check the
       divergence is deterministic: replay the whole window on the primary
       itself.  A replay that now agrees with the shadow means the original
       run hit a transient upset — report it, but there is nothing to
       bisect. *)
    let p_end = run_window primary start pokes w in
    if Checkpoint.equal p_end shadow_end then
      Transient
        {
          Incident.kind = Incident.Transient_divergence;
          window_start = start_cycle;
          window_end = start_cycle + w;
          first_divergent = None;
          registers = Checkpoint.diff primary_end shadow_end;
          start_state = Some start;
          trace = [];
          message =
            Printf.sprintf
              "window [%d,%d): primary end state differed from the shadow, but a replay \
               of the same window agreed — not reproducible"
              start_cycle (start_cycle + w);
        }
    else begin
      (* Delta-debug the cycle range: invariant — the engines agree after
         [lo] steps and disagree after [hi].  Both hold initially ([lo]=0
         restores the same state into both; [hi]=w was just re-checked),
         so the loop always terminates on an adjacent pair: a one-cycle
         repro even when the divergence is not monotone. *)
      let lo = ref 0 and hi = ref w in
      while !hi - !lo > 1 do
        let mid = (!lo + !hi) / 2 in
        let p = run_window primary start pokes mid in
        let s = run_window shadow start pokes mid in
        if Checkpoint.equal p s then lo := mid else hi := mid
      done;
      let first = !hi in
      let agreed = run_window shadow start pokes (first - 1) in
      let p_first = run_window primary start pokes first in
      let s_first = run_window shadow start pokes first in
      (* The register subset: exactly the architectural signals that
         disagree on the first divergent cycle. *)
      let registers = Checkpoint.diff p_first s_first in
      let name id = (Circuit.node circuit id).Circuit.name in
      let trace =
        [
          ( start_cycle + first - 1,
            List.map (fun (id, v) -> (name id, pp_value v)) pokes.(first - 1) );
        ]
      in
      Diverged
        {
          Incident.kind = Incident.Divergence;
          window_start = start_cycle;
          window_end = start_cycle + w;
          first_divergent = Some (start_cycle + first);
          registers;
          start_state = Some (Checkpoint.with_cycle agreed (start_cycle + first - 1));
          trace;
          message =
            Printf.sprintf "engines agree at cycle %d and disagree at cycle %d"
              (start_cycle + first - 1) (start_cycle + first);
        }
    end
  end

let replay ~circuit sim (inc : Incident.t) =
  match (inc.Incident.start_state, inc.Incident.trace) with
  | None, _ | _, [] -> false
  | Some ck, trace ->
    Checkpoint.restore sim ck;
    List.iter
      (fun (_, pokes) ->
        List.iter
          (fun (pname, v) ->
            match Circuit.find_node circuit pname with
            | Some n -> sim.Sim.poke n.Circuit.id (Bits.of_string v)
            | None -> ())
          pokes;
        sim.Sim.step ())
      trace;
    (* Reproduced iff every resolvable first-divergent signal shows the
       recorded primary value again — and at least one still differs from
       the shadow's. *)
    let reg_by_name = Hashtbl.create 16 in
    List.iter
      (fun (r : Circuit.register) ->
        Hashtbl.replace reg_by_name r.Circuit.reg_name r.Circuit.read)
      (Circuit.registers circuit);
    let resolve pname =
      match Hashtbl.find_opt reg_by_name pname with
      | Some id -> Some id
      | None -> Option.map (fun (n : Circuit.node) -> n.Circuit.id) (Circuit.find_node circuit pname)
    in
    let checked = ref 0 and matched = ref 0 and divergent = ref 0 in
    List.iter
      (fun (pname, pval, sval) ->
        match resolve pname with
        | None -> () (* memory words and optimized-away signals *)
        | Some id ->
          incr checked;
          let now = pp_value (sim.Sim.peek id) in
          if now = pval then incr matched;
          if now <> sval then incr divergent)
      inc.Incident.registers;
    !checked > 0 && !matched = !checked && !divergent > 0
