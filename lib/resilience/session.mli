(** Resilient simulation sessions.

    A session wraps any engine configuration behind the crash-safe /
    self-verifying / self-healing run loop:

    - {b Crash-safe delta checkpointing} — every [checkpoint_every]
      cycles the architectural state is persisted atomically into a
      {!Store} ring, as a sparse delta (scalars that changed plus the
      memory words the engine's write barrier recorded) chained off a
      full keyframe written every [keyframe_every] deltas; {!resume}
      picks up the newest generation whose chain verifies intact, so a
      SIGKILL costs at most one checkpoint interval of work.
    - {b Shadow lockstep verification} — every [shadow_stride] cycles
      the window since the last verified checkpoint is re-executed on a
      reference engine (full-cycle, closure backend) held {e live} at
      the last verified state, and the end states compared in place over
      the engines' dirty-word union; only a mismatch pays for full
      captures and the bisection to a minimal replayable {!Incident}
      report.  With [shadow_window = Some w], only the last [w] cycles
      of each stride are re-executed (sampled verification: a fraction
      of the cost, a fraction of the coverage).
    - {b Graceful degradation} — on divergence, an engine exception, or
      a wall-clock watchdog trip, the session rolls back to the last
      verified checkpoint and continues on the reference engine,
      recording the incident instead of aborting.

    Both the primary and the fallback engine are instantiated with every
    register kept, so captures describe the same architectural state set
    regardless of the primary's optimization level. *)

module Bits = Gsim_bits.Bits
open Gsim_ir

type config = {
  checkpoint_every : int option;  (** persist every N cycles *)
  checkpoint_dir : string option;  (** store directory; [None] = no store *)
  ring : int;  (** generations kept; [<= 0] keeps everything *)
  keyframe_every : int;
      (** full keyframe after at most N deltas (default 16); [0] writes
          every generation full (no deltas) *)
  shadow_stride : int option;  (** verify every N cycles *)
  shadow_window : int option;
      (** re-execute only the last N cycles of each stride ([None] = the
          whole stride).  Sampled verification: cheap, probabilistic *)
  watchdog_seconds : float option;
      (** wall-clock budget per step batch on the primary *)
  incident_dir : string option;
      (** where incident reports go (default: the checkpoint dir) *)
}

val default : config
(** Everything off, [ring = 3], [keyframe_every = 16]. *)

type outcome = {
  final_cycle : int;  (** absolute cycle reached *)
  ran : int;  (** cycles actually retired by this [run] (net of rollbacks) *)
  halted : bool;  (** the halt signal fired *)
  incidents : Incident.t list;  (** recorded during this [run], oldest first *)
  checkpoints_written : int;  (** generations persisted (keyframes + deltas) *)
  keyframes_written : int;
  deltas_written : int;
  windows_verified : int;
  degraded : bool;  (** finished on the fallback engine *)
}

type t

val create : ?forcible:int list -> config -> Gsim_core.Gsim.config -> Circuit.t -> t
(** Instantiates the primary engine from the given configuration (with
    [forcible] nodes overridable, for fault injection).  The fallback is
    instantiated lazily on first need. *)

val resume : t -> (int * string) option
(** Restores the newest valid checkpoint generation from the store (CRC
    fallback across generations, then last-complete-section leniency).
    Returns the [(cycle, path)] restored, or [None] when the store is
    absent or empty.  Call before the first {!run}. *)

val run :
  ?stimulus:(int -> (int * Bits.t) list) ->
  ?halt:int ->
  t ->
  int ->
  outcome
(** [run t target] steps to absolute cycle [target] (or until the [halt]
    node is nonzero), applying [stimulus cycle] pokes before each step.
    Checkpointing, shadow verification, the watchdog, and degradation
    all happen inside.  [stimulus] must be a function of the absolute
    cycle only — it is re-invoked for replay after a rollback. *)

val checkpoint : t -> Gsim_engine.Checkpoint.t
(** Capture of the active engine, stamped with the absolute cycle. *)

val inject_at : t -> cycle:int -> (Gsim_engine.Sim.t -> unit) -> unit
(** Runs the callback on the {e primary} sim just before the step of the
    given absolute cycle — never on the fallback, so a session degrades
    away from injected faults. *)

val sim : t -> Gsim_engine.Sim.t
(** The active engine (primary, or fallback once degraded). *)

val primary_sim : t -> Gsim_engine.Sim.t

val cycle : t -> int
(** Absolute cycle (engine counters restart at 0 on restore; this does
    not). *)

val degraded : t -> bool
val active_name : t -> string
val incidents : t -> Incident.t list
(** All incidents recorded over the session's lifetime, oldest first. *)

val destroy : t -> unit
