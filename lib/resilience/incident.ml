module Checkpoint = Gsim_engine.Checkpoint

type kind =
  | Divergence
  | Transient_divergence
  | Engine_error of string
  | Watchdog of float

type t = {
  kind : kind;
  window_start : int;
  window_end : int;
  first_divergent : int option;
  registers : (string * string * string) list;
  start_state : Checkpoint.t option;
  trace : (int * (string * string) list) list;
  message : string;
}

let sanitize s =
  String.map (fun ch -> if ch = '\n' || ch = '\r' then ' ' else ch) s

let kind_to_string = function
  | Divergence -> "divergence"
  | Transient_divergence -> "transient-divergence"
  | Engine_error _ -> "engine-error"
  | Watchdog s -> Printf.sprintf "watchdog %.3f" s

let summary t =
  match t.kind with
  | Divergence ->
    Printf.sprintf "divergence in window [%d,%d), first divergent cycle %s, %d signal(s) differ"
      t.window_start t.window_end
      (match t.first_divergent with Some c -> string_of_int c | None -> "?")
      (List.length t.registers)
  | Transient_divergence ->
    Printf.sprintf
      "transient divergence in window [%d,%d): end states differed but a replay agreed"
      t.window_start t.window_end
  | Engine_error msg ->
    Printf.sprintf "engine error at cycle %d: %s" t.window_end (sanitize msg)
  | Watchdog s ->
    Printf.sprintf "watchdog tripped: batch ending at cycle %d took %.3fs" t.window_end s

(* --- Text format ---------------------------------------------------------
   incident 1
   kind <divergence|transient-divergence|engine-error|watchdog <secs>>
   window <start> <end>
   divergent <cycle>                 (optional)
   message <one line>
   reg <name> <primary> <shadow>
   trace <cycle>
   poke <name> <value>
   checkpoint
   <embedded version-2 checkpoint, to end of file>                        *)

let to_string t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "incident 1\n";
  Buffer.add_string buf (Printf.sprintf "kind %s\n" (kind_to_string t.kind));
  Buffer.add_string buf (Printf.sprintf "window %d %d\n" t.window_start t.window_end);
  (match t.first_divergent with
   | Some c -> Buffer.add_string buf (Printf.sprintf "divergent %d\n" c)
   | None -> ());
  let message =
    match t.kind with Engine_error msg when t.message = "" -> msg | _ -> t.message
  in
  if message <> "" then
    Buffer.add_string buf (Printf.sprintf "message %s\n" (sanitize message));
  List.iter
    (fun (name, p, s) -> Buffer.add_string buf (Printf.sprintf "reg %s %s %s\n" name p s))
    t.registers;
  List.iter
    (fun (cycle, pokes) ->
      Buffer.add_string buf (Printf.sprintf "trace %d\n" cycle);
      List.iter
        (fun (name, v) -> Buffer.add_string buf (Printf.sprintf "poke %s %s\n" name v))
        pokes)
    t.trace;
  (match t.start_state with
   | Some ck ->
     Buffer.add_string buf "checkpoint\n";
     Buffer.add_string buf (Checkpoint.to_string ck)
   | None -> ());
  Buffer.contents buf

let of_string s =
  let fail fmt = Printf.ksprintf failwith fmt in
  let body, ck =
    (* The embedded checkpoint starts at the line after "checkpoint". *)
    let marker = "\ncheckpoint\n" in
    let rec find i =
      if i + String.length marker > String.length s then None
      else if String.sub s i (String.length marker) = marker then Some i
      else find (i + 1)
    in
    match find 0 with
    | Some i ->
      ( String.sub s 0 i,
        Some
          (Checkpoint.of_string
             (String.sub s
                (i + String.length marker)
                (String.length s - i - String.length marker))) )
    | None -> (s, None)
  in
  let lines = String.split_on_char '\n' body |> List.filter (fun l -> String.trim l <> "") in
  match lines with
  | header :: rest when String.trim header = "incident 1" ->
    let kind = ref Divergence and window = ref (0, 0) and divergent = ref None in
    let message = ref "" and regs = ref [] and trace = ref [] in
    List.iter
      (fun line ->
        let line = String.trim line in
        match String.split_on_char ' ' line with
        | "kind" :: rest -> (
            match rest with
            | [ "divergence" ] -> kind := Divergence
            | [ "transient-divergence" ] -> kind := Transient_divergence
            | [ "engine-error" ] -> kind := Engine_error ""
            | [ "watchdog"; secs ] -> (
                match float_of_string_opt secs with
                | Some f -> kind := Watchdog f
                | None -> fail "incident: bad watchdog seconds %S" secs)
            | _ -> fail "incident: bad kind line %S" line)
        | [ "window"; a; b ] -> (
            match (int_of_string_opt a, int_of_string_opt b) with
            | Some a, Some b -> window := (a, b)
            | _ -> fail "incident: bad window line %S" line)
        | [ "divergent"; c ] -> divergent := int_of_string_opt c
        | "message" :: _ :: _ ->
          message := String.sub line 8 (String.length line - 8)
        | [ "reg"; name; p; s ] -> regs := (name, p, s) :: !regs
        | [ "trace"; c ] -> (
            match int_of_string_opt c with
            | Some c -> trace := (c, []) :: !trace
            | None -> fail "incident: bad trace line %S" line)
        | [ "poke"; name; v ] -> (
            match !trace with
            | (c, pokes) :: rest -> trace := (c, (name, v) :: pokes) :: rest
            | [] -> fail "incident: poke before any trace line")
        | _ -> fail "incident: bad line %S" line)
      rest;
    let kind =
      match !kind with Engine_error _ -> Engine_error !message | k -> k
    in
    {
      kind;
      window_start = fst !window;
      window_end = snd !window;
      first_divergent = !divergent;
      registers = List.rev !regs;
      start_state = ck;
      trace = List.rev_map (fun (c, pokes) -> (c, List.rev pokes)) !trace;
      message = !message;
    }
  | _ -> fail "incident: missing header"

let save path t = Store.write_atomic path (to_string t)

let load path =
  let ic = open_in_bin path in
  let s =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  of_string s
