(** Expression simplification (paper §III-B, "expression simplification"
    and "shorted nodes"): constant folding and propagation, algebraic
    identities, mux shorting, extract/concat restructuring, and the
    one-hot pattern [(1 << a) & k  ==>  (a == log2 k) << log2 k].

    Every rewrite preserves the expression's width exactly. *)

val rewrite : Gsim_ir.Expr.t -> Gsim_ir.Expr.t
(** Bottom-up simplification to a local fixpoint. *)

val test_miscompile : bool ref
(** Test-only fault injection for the differential fuzzer: when set,
    binary constant folding produces the bitwise complement of the
    correct value.  The verification canary (lib/verify, [gsim fuzz run
    --inject-miscompile], test_verify) flips this to prove a wrong
    rewrite is detected, shrunk and bisected back to this pass.  Must
    stay false everywhere else. *)

val pass : Pass.t
