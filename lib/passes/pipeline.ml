open Gsim_ir

type level = O0 | O1 | O2 | O3

let level_of_string = function
  | "O0" | "o0" | "0" -> Some O0
  | "O1" | "o1" | "1" -> Some O1
  | "O2" | "o2" | "2" -> Some O2
  | "O3" | "o3" | "3" -> Some O3
  | _ -> None

let level_to_string = function O0 -> "O0" | O1 -> "O1" | O2 -> "O2" | O3 -> "O3"

let o1_passes = [ Simplify.pass; Alias.pass; Dce.pass ]

let o2_passes = [ Simplify.pass; Alias.pass; Dce.pass; Reset_opt.pass; Inline.extract_pass; Inline.inline_pass ]

type stage = { stage_passes : Pass.t list; stage_max_rounds : int }

(* The optimizer is driven by this plan so that the fuzzer's pass-pipeline
   bisection (lib/verify) can linearize exactly the applications
   [optimize] performs — keep the two in sync by construction. *)
let plan = function
  | O0 -> []
  | O1 -> [ { stage_passes = o1_passes; stage_max_rounds = 8 } ]
  | O2 -> [ { stage_passes = o2_passes; stage_max_rounds = 8 } ]
  | O3 ->
    [
      { stage_passes = o2_passes; stage_max_rounds = 8 };
      (* Bit splitting runs once, outside the fixpoints; no inliner after
         it (it would re-absorb the split parts).  Reset_opt restores the
         slow path on part registers created by the split. *)
      { stage_passes = [ Bitsplit.pass ]; stage_max_rounds = 1 };
      { stage_passes = o1_passes @ [ Reset_opt.pass ]; stage_max_rounds = 4 };
    ]

let optimize ?(level = O3) c =
  let outcomes =
    List.concat_map
      (fun s -> Pass.run_fixpoint ~max_rounds:s.stage_max_rounds s.stage_passes c)
      (plan level)
  in
  Circuit.validate c;
  outcomes

let optimize_and_compact ?level c =
  ignore (optimize ?level c);
  let map = Circuit.compact c in
  Circuit.validate c;
  map
