(** Standard optimization pipelines.

    - [O0] — nothing (the Table III/Fig. 8 baseline).
    - [O1] — redundant-node elimination and expression simplification:
      simplify, alias, constant forwarding, dead code.
    - [O2] — [O1] plus the inline/extract cost model and the reset
      slow-path transform (the paper's full node level).
    - [O3] — [O2] plus bit-level node splitting (the paper's default).

    Bit-split parts are protected from being re-inlined: the splitting
    stage runs after the node-level fixpoint and is followed only by a
    cleanup fixpoint without the inliner. *)

open Gsim_ir

type level = O0 | O1 | O2 | O3

val level_of_string : string -> level option
val level_to_string : level -> string

type stage = { stage_passes : Pass.t list; stage_max_rounds : int }
(** One fixpoint of a pass list, bounded by [stage_max_rounds] rounds
    ({!Pass.run_fixpoint} semantics: stop early when a round performs no
    rewrites, validate after every round). *)

val plan : level -> stage list
(** The exact stage sequence {!optimize} runs for a level.  The fuzzer's
    pass-pipeline bisection replays this plan one pass application at a
    time to name the first application after which a failure appears. *)

val optimize : ?level:level -> Circuit.t -> Pass.outcome list
(** Runs the pipeline in place (default [O3]) and validates the result.
    Node ids of inputs and output-marked nodes are preserved. *)

val optimize_and_compact : ?level:level -> Circuit.t -> int array
(** Like {!optimize} but renumbers the graph densely afterwards; returns
    the old-id -> new-id map. *)
