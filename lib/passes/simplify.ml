open Gsim_ir
module Bits = Gsim_bits.Bits

(* Test-only miscompile injection: when set, constant folding of binary
   operators produces the complemented value.  This exists solely so the
   differential fuzzer (lib/verify) can prove, end to end, that a wrong
   rewrite is caught, shrunk and bisected back to this pass; nothing
   outside the fuzz canary and test_verify may set it. *)
let test_miscompile = ref false

let is_const (e : Expr.t) = match e.Expr.desc with Expr.Const _ -> true | _ -> false

let const_value (e : Expr.t) =
  match e.Expr.desc with Expr.Const b -> Some b | _ -> None

let is_zero_const e = match const_value e with Some b -> Bits.is_zero b | None -> false

let is_ones_const e =
  match const_value e with Some b -> Bits.equal b (Bits.ones (Bits.width b)) | None -> false

(* Pad (or no-op) [e] to exactly [w] bits, unsigned. *)
let fit ~w (e : Expr.t) =
  if Expr.width e = w then e else Expr.unop (Expr.Pad_unsigned w) e

let single_bit_position b =
  if Bits.popcount b = 1 then begin
    let rec find i = if Bits.bit b i then i else find (i + 1) in
    Some (find 0)
  end
  else None

(* [(1 << a) & k] with a single-bit constant [k] selecting position [p]
   becomes [(a == p) ? 1 << p : 0] — the paper's one-hot pattern.  [w] is
   the width of the enclosing [And]. *)
let one_hot ~w (shifted : Expr.t) (k : Expr.t) : Expr.t option =
  let base_is_one (base : Expr.t) =
    match const_value base with
    | Some b -> Bits.width b <= 62 && Bits.to_int_trunc b = 1 && Bits.popcount b = 1
    | None ->
      (match base.Expr.desc with
       | Expr.Unop (Expr.Pad_unsigned _, inner) -> const_value inner = Some (Bits.one 1)
       | _ -> false)
  in
  match (shifted.Expr.desc, const_value k) with
  | Expr.Binop (Expr.Dshl, base, amount), Some kv when base_is_one base -> begin
      match single_bit_position kv with
      | Some p ->
        if p >= Expr.width shifted then Some (Expr.const (Bits.zero w))
        else begin
          let wa = Expr.width amount in
          if wa >= 30 || p < 1 lsl wa then begin
            let cond = Expr.binop Expr.Eq amount (Expr.of_int ~width:(max 1 wa) p) in
            let onehot = Bits.zero_extend (Bits.shift_left (Bits.one 1) p) ~width:w in
            Some (Expr.mux cond (Expr.const onehot) (Expr.const (Bits.zero w)))
          end
          else Some (Expr.const (Bits.zero w))
        end
      | None -> None
    end
  | _, (Some _ | None) -> None

(* One local rewrite step at the root of [e]; children are already
   simplified.  Returns [None] when no rule applies. *)
let step (e : Expr.t) : Expr.t option =
  let w = Expr.width e in
  match e.Expr.desc with
  | Expr.Const _ | Expr.Var _ -> None
  (* ---- Constant folding -------------------------------------------- *)
  | Expr.Unop (op, a) when is_const a ->
    Some (Expr.const (Expr.eval_unop op (Option.get (const_value a))))
  | Expr.Binop (op, a, b) when is_const a && is_const b ->
    let v = Expr.eval_binop op (Option.get (const_value a)) (Option.get (const_value b)) in
    Some (Expr.const (if !test_miscompile then Bits.lognot v else v))
  | Expr.Mux (s, a, b) when is_const s ->
    Some (if is_zero_const s then b else a)
  (* ---- Unary identities -------------------------------------------- *)
  | Expr.Unop (Expr.Not, { Expr.desc = Expr.Unop (Expr.Not, x); _ }) -> Some x
  | Expr.Unop (Expr.Shl_const 0, x) | Expr.Unop (Expr.Shr_const 0, x) when Expr.width x = w ->
    Some x
  | Expr.Unop ((Expr.Pad_unsigned _ | Expr.Pad_signed _), x) when Expr.width x = w -> Some x
  | Expr.Unop (Expr.Pad_unsigned n, { Expr.desc = Expr.Unop (Expr.Pad_unsigned m, x); _ })
    when n <= m ->
    Some (Expr.unop (Expr.Pad_unsigned n) x)
  | Expr.Unop (Expr.Extract (hi, lo), x) when lo = 0 && hi = Expr.width x - 1 -> Some x
  | Expr.Unop (Expr.Extract (hi, lo), { Expr.desc = Expr.Unop (Expr.Extract (_, lo2), x); _ })
    ->
    Some (Expr.unop (Expr.Extract (hi + lo2, lo + lo2)) x)
  | Expr.Unop (Expr.Extract (hi, lo), { Expr.desc = Expr.Binop (Expr.Cat, a, b); _ }) ->
    let wb = Expr.width b in
    if hi < wb then Some (Expr.unop (Expr.Extract (hi, lo)) b)
    else if lo >= wb then Some (Expr.unop (Expr.Extract (hi - wb, lo - wb)) a)
    else
      (* Straddles the seam: split into a concat of two extracts, which
         later feeds the bit-level splitting pass. *)
      Some
        (Expr.binop Expr.Cat
           (Expr.unop (Expr.Extract (hi - wb, 0)) a)
           (Expr.unop (Expr.Extract (wb - 1, lo)) b))
  | Expr.Unop (Expr.Extract (hi, lo), { Expr.desc = Expr.Unop (Expr.Pad_unsigned _, x); _ })
    when hi < Expr.width x ->
    Some (Expr.unop (Expr.Extract (hi, lo)) x)
  | Expr.Unop ((Expr.Reduce_or | Expr.Reduce_and | Expr.Reduce_xor), x)
    when Expr.width x = 1 ->
    Some x
  (* ---- Binary identities ------------------------------------------- *)
  | Expr.Binop (Expr.And, x, z) when is_zero_const z || is_zero_const x ->
    Some (Expr.const (Bits.zero w))
  | Expr.Binop (Expr.And, x, m) when is_ones_const m && Expr.width m >= Expr.width x ->
    Some (fit ~w x)
  | Expr.Binop (Expr.And, m, x) when is_ones_const m && Expr.width m >= Expr.width x ->
    Some (fit ~w x)
  | Expr.Binop (Expr.Or, x, z) when is_zero_const z -> Some (fit ~w x)
  | Expr.Binop (Expr.Or, z, x) when is_zero_const z -> Some (fit ~w x)
  | Expr.Binop (Expr.Or, x, m) when is_ones_const m && Expr.width m >= Expr.width x ->
    Some (Expr.const (Bits.ones w))
  | Expr.Binop (Expr.Xor, x, z) when is_zero_const z -> Some (fit ~w x)
  | Expr.Binop (Expr.Xor, z, x) when is_zero_const z -> Some (fit ~w x)
  | Expr.Binop (Expr.Add, x, z) when is_zero_const z -> Some (fit ~w x)
  | Expr.Binop (Expr.Add, z, x) when is_zero_const z -> Some (fit ~w x)
  | Expr.Binop (Expr.Sub, x, z) when is_zero_const z -> Some (fit ~w x)
  | Expr.Binop (Expr.Mul, x, z) when is_zero_const z || is_zero_const x ->
    Some (Expr.const (Bits.zero w))
  | Expr.Binop (Expr.Mul, x, o) when const_value o = Some (Bits.one (Expr.width o)) ->
    Some (fit ~w x)
  | Expr.Binop (Expr.Mul, o, x) when const_value o = Some (Bits.one (Expr.width o)) ->
    Some (fit ~w x)
  | Expr.Binop (Expr.Div, x, o)
    when (match const_value o with Some b -> Bits.to_int_trunc b = 1 && Bits.width b <= 62 | None -> false) ->
    Some (fit ~w x)
  | Expr.Binop ((Expr.Dshl | Expr.Dshr | Expr.Dshr_signed), x, z) when is_zero_const z ->
    Some (fit ~w x)
  (* ---- Comparisons with constants on 1-bit operands ----------------- *)
  | Expr.Binop (Expr.Eq, x, o)
    when Expr.width x = 1 && const_value o = Some (Bits.one 1) ->
    Some x
  | Expr.Binop (Expr.Eq, x, z) when Expr.width x = 1 && is_zero_const z && Expr.width z = 1 ->
    Some (Expr.unop Expr.Not x)
  | Expr.Binop (Expr.Neq, x, z) when is_zero_const z ->
    Some (Expr.unop Expr.Reduce_or x)
  (* ---- Same-operand collapses --------------------------------------- *)
  | Expr.Binop (Expr.Xor, { Expr.desc = Expr.Var u; _ }, { Expr.desc = Expr.Var v; _ })
    when u = v ->
    Some (Expr.const (Bits.zero w))
  | Expr.Binop (Expr.Eq, ({ Expr.desc = Expr.Var u; _ } as a), { Expr.desc = Expr.Var v; _ })
    when u = v && Expr.width a = Expr.width a ->
    Some (Expr.const (Bits.one 1))
  | Expr.Binop ((Expr.And | Expr.Or), ({ Expr.desc = Expr.Var u; _ } as a),
                { Expr.desc = Expr.Var v; _ })
    when u = v ->
    Some (fit ~w a)
  (* ---- Mux simplifications ------------------------------------------ *)
  | Expr.Mux (_, a, b) when Expr.equal a b -> Some a
  | Expr.Mux (s, o, z)
    when Expr.width o = 1 && const_value o = Some (Bits.one 1) && is_zero_const z
         && Expr.width s = 1 ->
    Some s
  | Expr.Mux (s, z, o)
    when Expr.width o = 1 && const_value o = Some (Bits.one 1) && is_zero_const z
         && Expr.width s = 1 ->
    Some (Expr.unop Expr.Not s)
  (* ---- The one-hot pattern ------------------------------------------ *)
  | Expr.Binop (Expr.And, a, b) ->
    (match one_hot ~w a b with Some _ as r -> r | None -> one_hot ~w b a)
  | Expr.Unop (_, _) | Expr.Binop (_, _, _) | Expr.Mux (_, _, _) -> None

let rec rewrite (e : Expr.t) : Expr.t =
  let e' =
    match e.Expr.desc with
    | Expr.Const _ | Expr.Var _ -> e
    | Expr.Unop (op, a) ->
      let a' = rewrite a in
      if a' == a then e else Expr.unop op a'
    | Expr.Binop (op, a, b) ->
      let a' = rewrite a and b' = rewrite b in
      if a' == a && b' == b then e else Expr.binop op a' b'
    | Expr.Mux (s, a, b) ->
      let s' = rewrite s and a' = rewrite a and b' = rewrite b in
      if s' == s && a' == a && b' == b then e else Expr.mux s' a' b'
  in
  match step e' with
  | Some e'' ->
    assert (Expr.width e'' = Expr.width e');
    rewrite e''
  | None -> e'

let run c =
  let changed = ref 0 in
  Circuit.iter_nodes c (fun n ->
      match n.Circuit.expr with
      | Some e ->
        let e' = rewrite e in
        if not (Expr.equal e e') then begin
          n.Circuit.expr <- Some e';
          incr changed
        end
      | None -> ());
  !changed

let pass = { Pass.pass_name = "simplify"; run }
