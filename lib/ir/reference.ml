module Bits = Gsim_bits.Bits

type t = {
  c : Circuit.t;
  values : Bits.t array;
  mems : Bits.t array array;
  order : int array;
  mutable cycles : int;
  (* Force overrides: while set, [values.(id)] always holds
     [(computed land lnot mask) lor value]; every write to the slot
     re-applies the override. *)
  forced_flag : bool array;
  forced : (int, Bits.t * Bits.t) Hashtbl.t;  (* id -> mask, pre-masked value *)
}

let circuit t = t.c

let create c =
  Circuit.validate c;
  let values =
    Array.init (Circuit.max_id c) (fun id ->
        match Circuit.node_opt c id with
        | None -> Bits.zero 1
        | Some n ->
          (match n.Circuit.kind with
           | Circuit.Reg_read i -> ignore i; n.Circuit.width |> Bits.zero
           | _ -> Bits.zero n.Circuit.width))
  in
  List.iter
    (fun (r : Circuit.register) -> values.(r.read) <- r.init)
    (Circuit.registers c);
  let mems =
    Array.map
      (fun (m : Circuit.memory) -> Array.make m.depth (Bits.zero m.mem_width))
      (Circuit.memories c)
  in
  {
    c;
    values;
    mems;
    order = Circuit.eval_order c;
    cycles = 0;
    forced_flag = Array.make (max (Circuit.max_id c) 1) false;
    forced = Hashtbl.create 8;
  }

let override t id v =
  match Hashtbl.find_opt t.forced id with
  | None -> v
  | Some (m, mv) -> Bits.logor (Bits.logand v (Bits.lognot m)) mv

let poke t id v =
  let n = Circuit.node t.c id in
  (match n.Circuit.kind with
   | Circuit.Input -> ()
   | _ -> invalid_arg (Printf.sprintf "Reference.poke: %S is not an input" n.Circuit.name));
  if Bits.width v <> n.Circuit.width then
    invalid_arg
      (Printf.sprintf "Reference.poke: %S has width %d, value %d" n.Circuit.name
         n.Circuit.width (Bits.width v));
  t.values.(id) <- (if t.forced_flag.(id) then override t id v else v)

let peek t id =
  ignore (Circuit.node t.c id);
  t.values.(id)

let eval_node t id =
  let n = Circuit.node t.c id in
  (match n.Circuit.kind with
  | Circuit.Logic | Circuit.Reg_next _ ->
    (match n.Circuit.expr with
     | Some e -> t.values.(id) <- Expr.eval (fun v -> t.values.(v)) e
     | None -> assert false)
  | Circuit.Mem_read i ->
    let p = Circuit.read_port t.c i in
    let m = Circuit.memory t.c p.Circuit.r_mem in
    let enabled =
      match p.Circuit.r_en with Some en -> not (Bits.is_zero t.values.(en)) | None -> true
    in
    let addr = Bits.to_int_trunc t.values.(p.Circuit.r_addr) in
    t.values.(id) <-
      (if enabled && addr < m.Circuit.depth then t.mems.(p.Circuit.r_mem).(addr)
       else Bits.zero m.Circuit.mem_width)
  | Circuit.Input | Circuit.Reg_read _ -> assert false);
  if t.forced_flag.(id) then t.values.(id) <- override t id t.values.(id)

let eval_comb t = Array.iter (eval_node t) t.order

let commit t =
  (* Memory writes read this cycle's node values; they become visible next
     cycle because reads already happened during [eval_comb]. *)
  Array.iteri
    (fun mi (m : Circuit.memory) ->
      List.iter
        (fun (w : Circuit.write_port) ->
          if not (Bits.is_zero t.values.(w.w_en)) then begin
            let addr = Bits.to_int_trunc t.values.(w.w_addr) in
            if addr < m.depth then t.mems.(mi).(addr) <- t.values.(w.w_data)
          end)
        m.write_ports)
    (Circuit.memories t.c);
  List.iter
    (fun (r : Circuit.register) ->
      let v =
        match r.reset with
        | Some rst when rst.slow_path && not (Bits.is_zero t.values.(rst.reset_signal)) ->
          rst.reset_value
        | Some _ | None -> t.values.(r.next)
      in
      t.values.(r.read) <- (if t.forced_flag.(r.read) then override t r.read v else v))
    (Circuit.registers t.c)

let step t =
  eval_comb t;
  commit t;
  t.cycles <- t.cycles + 1

let run t n =
  for _ = 1 to n do
    step t
  done

let load_mem t mi contents =
  let m = Circuit.memory t.c mi in
  if Array.length contents > m.Circuit.depth then invalid_arg "Reference.load_mem: too long";
  Array.iteri
    (fun i v ->
      if Bits.width v <> m.Circuit.mem_width then invalid_arg "Reference.load_mem: width";
      t.mems.(mi).(i) <- v)
    contents

let read_mem t mi addr =
  let m = Circuit.memory t.c mi in
  if addr < 0 || addr >= m.Circuit.depth then invalid_arg "Reference.read_mem";
  t.mems.(mi).(addr)

let force_register t id v =
  match (Circuit.node t.c id).Circuit.kind with
  | Circuit.Reg_read _ ->
    if Bits.width v <> (Circuit.node t.c id).Circuit.width then
      invalid_arg "Reference.force_register: width";
    t.values.(id) <- (if t.forced_flag.(id) then override t id v else v)
  | _ -> invalid_arg "Reference.force_register: not a register read node"

let force t ?mask id v =
  let n = Circuit.node t.c id in
  let w = n.Circuit.width in
  if Bits.width v <> w then invalid_arg "Reference.force: width mismatch";
  let m =
    match mask with
    | None -> Bits.ones w
    | Some m ->
      if Bits.width m <> w then invalid_arg "Reference.force: mask width mismatch";
      m
  in
  t.forced_flag.(id) <- true;
  Hashtbl.replace t.forced id (m, Bits.logand v m);
  let cur = t.values.(id) in
  let nv = override t id cur in
  t.values.(id) <- nv;
  not (Bits.equal nv cur)

let release t id =
  ignore (Circuit.node t.c id);
  let was = t.forced_flag.(id) in
  t.forced_flag.(id) <- false;
  Hashtbl.remove t.forced id;
  was

let cycle_count t = t.cycles
