(** Source positions for the textual frontends.

    The FIRRTL and Verilog lexers/parsers report failures as a
    (line, column) pair; this module renders them in the conventional
    [file:line:col] form with a one-line excerpt of the offending source
    and a caret under the column, so every frontend diagnostic is
    directly clickable and self-explanatory. *)

val format :
  ?file:string -> src:string -> line:int -> col:int -> string -> string
(** [format ?file ~src ~line ~col msg] is

    {v
    file:LINE:COL: msg
      LINE | <source line>
           |       ^
    v}

    Lines and columns are 1-based; out-of-range positions degrade
    gracefully (no excerpt).  Without [file] the location prints as
    [line LINE:COL]. *)
