(** Exact textual serialization of a circuit.

    Unlike the FIRRTL emitter (which targets an external language and is
    lossy about node identities, reset slow-paths and port tables), this
    format round-trips the graph IR exactly: every live node with its id,
    kind, width, name and expression, the full register and memory port
    tables, reset annotations including the slow-path flag, and output
    marks.  The fuzzer's repro files embed it so a recorded failure can
    be rebuilt and re-run bit-identically ([gsim fuzz replay]).

    Parsing renumbers nodes densely in ascending-id order (the identity
    mapping when the source circuit was compacted); all references are
    remapped consistently, and the result is validated. *)

val to_string : Circuit.t -> string

val of_string : string -> Circuit.t
(** Raises [Failure] with a line-numbered message on malformed input. *)
