(** Reference interpreter.

    A direct, slow execution of the circuit semantics: every cycle, all
    expression-carrying nodes are evaluated in topological order, then
    registers latch and memory writes commit.  Every engine in
    [gsim_engine] must produce bit-identical traces to this interpreter;
    the test suite enforces it.

    The circuit must not be mutated after [create]. *)

module Bits = Gsim_bits.Bits

type t

val create : Circuit.t -> t

val circuit : t -> Circuit.t

val poke : t -> int -> Bits.t -> unit
(** Set an input node's value.  Raises [Invalid_argument] if the node is
    not an input or the width differs. *)

val peek : t -> int -> Bits.t
(** Current value of any node.  Combinational values are those of the last
    {!eval_comb}/{!step}. *)

val eval_comb : t -> unit
(** Settle all combinational values for the current inputs and state
    without advancing the clock. *)

val step : t -> unit
(** One clock cycle: evaluate, then latch registers (applying slow-path
    resets) and commit memory writes. *)

val run : t -> int -> unit
(** [run t n] steps [n] cycles. *)

val load_mem : t -> int -> Bits.t array -> unit
(** Initialize the contents of memory [i] (for program loading); lengths
    beyond the depth are rejected. *)

val read_mem : t -> int -> int -> Bits.t
(** [read_mem t mem addr]. *)

val force_register : t -> int -> Bits.t -> unit
(** Overwrite a register's current value (by read-node id); checkpoint
    restore. *)

val force : t -> ?mask:Bits.t -> int -> Bits.t -> bool
(** Pin the masked bits of any node to the given value until {!release}
    (fault injection).  The override survives evaluation, latching and
    pokes; returns whether the stored value changed. *)

val release : t -> int -> bool
(** Remove a {!force} override; the stored value keeps the forced bits
    until the node is next evaluated / latched / poked.  Returns whether
    an override was active. *)

val cycle_count : t -> int
