let nth_line src n =
  if n < 1 then None
  else
    let rec go i remaining start =
      if remaining = 0 then
        let stop =
          match String.index_from_opt src start '\n' with
          | Some j -> j
          | None -> String.length src
        in
        Some (String.sub src start (stop - start))
      else
        match String.index_from_opt src i '\n' with
        | Some j -> go (j + 1) (remaining - 1) (j + 1)
        | None -> None
    in
    if src = "" then None else go 0 (n - 1) 0

let format ?file ~src ~line ~col msg =
  let loc =
    match file with
    | Some f -> Printf.sprintf "%s:%d:%d" f line col
    | None -> Printf.sprintf "line %d:%d" line col
  in
  match nth_line src line with
  | None -> Printf.sprintf "%s: %s" loc msg
  | Some text ->
    (* Strip a trailing CR and expand tabs to one column each so the
       caret lines up with what was lexed. *)
    let text =
      if String.length text > 0 && text.[String.length text - 1] = '\r' then
        String.sub text 0 (String.length text - 1)
      else text
    in
    let gutter = Printf.sprintf "%4d | " line in
    let caret_col = max 1 (min col (String.length text + 1)) in
    let caret =
      String.make (String.length gutter - 2) ' ' ^ "| "
      ^ String.make (caret_col - 1) ' ' ^ "^"
    in
    Printf.sprintf "%s: %s\n%s%s\n%s" loc msg gutter text caret
