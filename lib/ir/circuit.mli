(** The RTL graph.

    A circuit is a mutable directed graph whose nodes are registers (split
    into a read node holding the state and a next node computing the value
    to latch, as full-cycle simulators do to break cycles), combinational
    logic nodes holding an expression, circuit inputs, and memory read
    ports.  Memories are state arrays with combinational read ports and
    end-of-cycle write ports.

    Node ids are dense small integers; deleting a node leaves a hole until
    {!compact} renumbers the graph. *)

module Bits = Gsim_bits.Bits

type kind =
  | Input
  | Logic
  | Reg_read of int          (** index into the register table *)
  | Reg_next of int
  | Mem_read of int          (** index into the read-port table *)

type node = {
  id : int;
  mutable name : string;
  mutable width : int;
  mutable kind : kind;
  mutable expr : Expr.t option;
      (** Present exactly on [Logic] and [Reg_next] nodes. *)
  mutable is_output : bool;
      (** Observable nodes are never dead-code eliminated. *)
}

type reset = {
  reset_signal : int;        (** 1-bit node asserting the reset *)
  reset_value : Bits.t;
  mutable slow_path : bool;
      (** When true the engines apply the reset outside node evaluation
          (the paper's reset-handling optimization); the [Reg_next]
          expression then no longer mentions the reset. *)
}

type register = {
  reg_name : string;
  read : int;
  next : int;
  init : Bits.t;
  mutable reset : reset option;
  mutable dead : bool;
}

type write_port = { w_addr : int; w_data : int; w_en : int }

type read_port = { r_mem : int; r_data : int; r_addr : int; r_en : int option }

type memory = {
  mem_name : string;
  mem_width : int;
  depth : int;
  mutable write_ports : write_port list;
  mutable read_port_ids : int list;  (** node ids of the [Mem_read] nodes *)
}

type t

exception Combinational_cycle of int list
(** Carries the node ids of one cycle. *)

(** {1 Construction} *)

val create : ?name:string -> unit -> t

val name : t -> string

val add_input : t -> name:string -> width:int -> node

val add_logic : t -> name:string -> Expr.t -> node
(** A combinational node computing the given expression. *)

val add_register :
  t -> name:string -> width:int -> init:Bits.t ->
  ?reset:int * Bits.t -> unit -> register
(** Creates the read node immediately; the next-value expression is
    supplied later with {!set_next}.  [reset] gives the 1-bit reset signal
    node and the reset value; the caller's next expression should NOT
    include the reset mux — it is added by {!set_next} so that the
    reset-optimization pass has a canonical form to strip. *)

val set_next : t -> register -> Expr.t -> unit

val add_memory : t -> name:string -> width:int -> depth:int -> int
(** Returns the memory index. *)

val add_read_port : t -> mem:int -> name:string -> addr:int -> ?en:int -> unit -> node
(** Combinational read port; returns the data node. *)

val add_write_port : t -> mem:int -> addr:int -> data:int -> en:int -> unit

val mark_output : t -> int -> unit

(** {1 Access} *)

val node : t -> int -> node
(** Raises [Invalid_argument] if the id is out of range or deleted. *)

val node_opt : t -> int -> node option

val node_count : t -> int
(** Number of live nodes. *)

val max_id : t -> int
(** Ids are in [0, max_id); some may be deleted. *)

val iter_nodes : t -> (node -> unit) -> unit

val fold_nodes : t -> init:'a -> f:('a -> node -> 'a) -> 'a

val registers : t -> register list

val memories : t -> memory array

val memory : t -> int -> memory

val inputs : t -> node list

val outputs : t -> node list

val register_of_node : t -> int -> register option
(** The register a [Reg_read]/[Reg_next] node belongs to. *)

val read_port : t -> int -> read_port
(** By read-port table index (as stored in [Mem_read]). *)

val find_node : t -> string -> node option
(** Finds a live node by name (linear scan; for tests and the CLI). *)

(** {1 Mutation used by optimization passes} *)

val set_expr : t -> int -> Expr.t -> unit
(** Replace the expression of a [Logic]/[Reg_next] node (same width). *)

val delete_node : t -> int -> unit
(** The node must have no remaining uses; registers/memories referencing it
    must have been fixed up first. *)

val delete_register : t -> register -> unit
(** Marks the register dead and deletes its two nodes. *)

val replace_uses : t -> of_:int -> with_:Expr.t -> unit
(** Substitute every [Var of_] occurrence in every expression, every memory
    port operand and every register reset signal.  For ports and reset
    signals the replacement must itself be a [Var]. *)

val replace_read_port : t -> int -> read_port -> unit
(** Patch a read port's operands in place (by port table index).  The data
    node and memory must stay the same. *)

val fresh_name : t -> string -> string

(** {1 Structure} *)

val dependencies : t -> int -> int list
(** Nodes whose current-cycle value this node reads: expression variables,
    plus address/enable for read ports.  Register read nodes and inputs
    have none. *)

val successors : t -> int list array
(** [successors c] is a fresh table: for each id, the ids whose evaluation
    reads it this cycle (indexed by id; deleted ids map to []). *)

val eval_order : t -> int array
(** Topological order over all nodes that carry an expression or are read
    ports.  Raises {!Combinational_cycle}. *)

val check_acyclic : t -> unit

val cycle_diagnostic : t -> int list -> string
(** Human-readable description of a {!Combinational_cycle} witness,
    naming the nodes on the loop ([a -> b -> a]). *)

val validate : t -> unit
(** Checks the representation invariants: expression widths match node
    widths, variable references point to live nodes with matching widths,
    port and reset references are live, exactly the right kinds carry
    expressions.  Raises [Failure] with a description otherwise. *)

val copy : t -> t
(** Deep copy: node ids are preserved; mutating the copy leaves the
    original untouched. *)

val compact : t -> int array
(** Renumber nodes densely.  Returns the old-id -> new-id map (-1 for
    deleted ids). *)

(** {1 Statistics} *)

type stats = { ir_nodes : int; ir_edges : int; registers_count : int; memories_count : int }

val stats : t -> stats
(** IR node and edge counts as reported in the paper's Table I: every live
    node counts; every (dependency) connection counts as an edge, plus the
    sequential edge from each register's next node to its read node. *)

val pp_stats : Format.formatter -> stats -> unit
