module Bits = Gsim_bits.Bits

type kind =
  | Input
  | Logic
  | Reg_read of int
  | Reg_next of int
  | Mem_read of int

type node = {
  id : int;
  mutable name : string;
  mutable width : int;
  mutable kind : kind;
  mutable expr : Expr.t option;
  mutable is_output : bool;
}

type reset = {
  reset_signal : int;
  reset_value : Bits.t;
  mutable slow_path : bool;
}

type register = {
  reg_name : string;
  read : int;
  next : int;
  init : Bits.t;
  mutable reset : reset option;
  mutable dead : bool;
}

type write_port = { w_addr : int; w_data : int; w_en : int }

type read_port = { r_mem : int; r_data : int; r_addr : int; r_en : int option }

type memory = {
  mem_name : string;
  mem_width : int;
  depth : int;
  mutable write_ports : write_port list;
  mutable read_port_ids : int list;
}

type t = {
  circuit_name : string;
  mutable nodes : node option array;
  mutable len : int;
  mutable regs : register array;
  mutable nregs : int;
  mutable mems : memory array;
  mutable nmems : int;
  mutable ports : read_port array;
  mutable nports : int;
  mutable name_counter : int;
}

exception Combinational_cycle of int list

let create ?(name = "circuit") () =
  {
    circuit_name = name;
    nodes = Array.make 64 None;
    len = 0;
    regs = [||];
    nregs = 0;
    mems = [||];
    nmems = 0;
    ports = [||];
    nports = 0;
    name_counter = 0;
  }

let name c = c.circuit_name

let grow arr len dummy =
  if len < Array.length arr then arr
  else begin
    let arr' = Array.make (max 64 (2 * Array.length arr)) dummy in
    Array.blit arr 0 arr' 0 (Array.length arr);
    arr'
  end

let alloc_node c ~name ~width ~kind ~expr =
  if width < 1 then invalid_arg (Printf.sprintf "Circuit: node %S has width %d" name width);
  c.nodes <- grow c.nodes c.len None;
  let n = { id = c.len; name; width; kind; expr; is_output = false } in
  c.nodes.(c.len) <- Some n;
  c.len <- c.len + 1;
  n

let node_opt c id = if id < 0 || id >= c.len then None else c.nodes.(id)

let node c id =
  match node_opt c id with
  | Some n -> n
  | None -> invalid_arg (Printf.sprintf "Circuit.node: no node %d" id)

let max_id c = c.len

let iter_nodes c f =
  for i = 0 to c.len - 1 do
    match c.nodes.(i) with Some n -> f n | None -> ()
  done

let fold_nodes c ~init ~f =
  let acc = ref init in
  iter_nodes c (fun n -> acc := f !acc n);
  !acc

let node_count c = fold_nodes c ~init:0 ~f:(fun acc _ -> acc + 1)

let registers c = Array.to_list (Array.sub c.regs 0 c.nregs)
  |> List.filter (fun r -> not r.dead)

let memories c = Array.sub c.mems 0 c.nmems

let memory c i =
  if i < 0 || i >= c.nmems then invalid_arg "Circuit.memory";
  c.mems.(i)

let read_port c i =
  if i < 0 || i >= c.nports then invalid_arg "Circuit.read_port";
  c.ports.(i)

let inputs c =
  fold_nodes c ~init:[] ~f:(fun acc n -> match n.kind with Input -> n :: acc | _ -> acc)
  |> List.rev

let outputs c =
  fold_nodes c ~init:[] ~f:(fun acc n -> if n.is_output then n :: acc else acc) |> List.rev

let register_of_node c id =
  match (node c id).kind with
  | Reg_read i | Reg_next i -> Some c.regs.(i)
  | Input | Logic | Mem_read _ -> None

let find_node c nm =
  let found = ref None in
  iter_nodes c (fun n -> if !found = None && n.name = nm then found := Some n);
  !found

let fresh_name c base =
  c.name_counter <- c.name_counter + 1;
  Printf.sprintf "%s$%d" base c.name_counter

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

let add_input c ~name ~width = alloc_node c ~name ~width ~kind:Input ~expr:None

let add_logic c ~name e =
  alloc_node c ~name ~width:(Expr.width e) ~kind:Logic ~expr:(Some e)

let dummy_reg =
  { reg_name = ""; read = -1; next = -1; init = Bits.zero 1; reset = None; dead = true }

let add_register c ~name ~width ~init ?reset () =
  if Bits.width init <> width then invalid_arg "Circuit.add_register: init width mismatch";
  let idx = c.nregs in
  let read = alloc_node c ~name ~width ~kind:(Reg_read idx) ~expr:None in
  let next = alloc_node c ~name:(name ^ "$next") ~width ~kind:(Reg_next idx) ~expr:None in
  let reset =
    match reset with
    | None -> None
    | Some (signal, value) ->
      if Bits.width value <> width then
        invalid_arg "Circuit.add_register: reset value width mismatch";
      Some { reset_signal = signal; reset_value = value; slow_path = false }
  in
  let r = { reg_name = name; read = read.id; next = next.id; init; reset; dead = false } in
  c.regs <- grow c.regs c.nregs dummy_reg;
  c.regs.(c.nregs) <- r;
  c.nregs <- c.nregs + 1;
  r

let set_next c r e =
  let nd = node c r.next in
  if Expr.width e <> nd.width then
    invalid_arg
      (Printf.sprintf "Circuit.set_next: register %S expects width %d, got %d" r.reg_name
         nd.width (Expr.width e));
  let e =
    match r.reset with
    | Some rst when not rst.slow_path ->
      let sel = Expr.var ~width:(node c rst.reset_signal).width rst.reset_signal in
      Expr.mux sel (Expr.const rst.reset_value) e
    | Some _ | None -> e
  in
  nd.expr <- Some e

let dummy_mem =
  { mem_name = ""; mem_width = 0; depth = 0; write_ports = []; read_port_ids = [] }

let add_memory c ~name ~width ~depth =
  if width < 1 || depth < 1 then invalid_arg "Circuit.add_memory";
  let m = { mem_name = name; mem_width = width; depth; write_ports = []; read_port_ids = [] } in
  c.mems <- grow c.mems c.nmems dummy_mem;
  c.mems.(c.nmems) <- m;
  c.nmems <- c.nmems + 1;
  c.nmems - 1

let dummy_port = { r_mem = -1; r_data = -1; r_addr = -1; r_en = None }

let add_read_port c ~mem ~name ~addr ?en () =
  let m = memory c mem in
  let idx = c.nports in
  let data = alloc_node c ~name ~width:m.mem_width ~kind:(Mem_read idx) ~expr:None in
  let port = { r_mem = mem; r_data = data.id; r_addr = addr; r_en = en } in
  c.ports <- grow c.ports c.nports dummy_port;
  c.ports.(c.nports) <- port;
  c.nports <- c.nports + 1;
  m.read_port_ids <- data.id :: m.read_port_ids;
  data

let add_write_port c ~mem ~addr ~data ~en =
  let m = memory c mem in
  let check id =
    match node_opt c id with
    | Some _ -> ()
    | None -> invalid_arg "Circuit.add_write_port: dangling node"
  in
  check addr; check data; check en;
  if (node c data).width <> m.mem_width then
    invalid_arg "Circuit.add_write_port: data width mismatch";
  m.write_ports <- { w_addr = addr; w_data = data; w_en = en } :: m.write_ports

let mark_output c id = (node c id).is_output <- true

(* ------------------------------------------------------------------ *)
(* Mutation                                                            *)
(* ------------------------------------------------------------------ *)

let set_expr c id e =
  let n = node c id in
  (match n.kind with
   | Logic | Reg_next _ -> ()
   | Input | Reg_read _ | Mem_read _ ->
     invalid_arg (Printf.sprintf "Circuit.set_expr: node %S carries no expression" n.name));
  if Expr.width e <> n.width then
    invalid_arg
      (Printf.sprintf "Circuit.set_expr: node %S has width %d, expression %d" n.name n.width
         (Expr.width e));
  n.expr <- Some e

let delete_node c id =
  match node_opt c id with
  | None -> ()
  | Some _ -> c.nodes.(id) <- None

let delete_register c r =
  r.dead <- true;
  delete_node c r.read;
  delete_node c r.next

let replace_uses c ~of_ ~with_ =
  let subst ~width v =
    if v = of_ then begin
      if Expr.width with_ <> width then
        invalid_arg "Circuit.replace_uses: width mismatch";
      with_
    end
    else Expr.var ~width v
  in
  iter_nodes c (fun n ->
      match n.expr with
      | Some e when Expr.depends_on e of_ -> n.expr <- Some (Expr.map_vars subst e)
      | Some _ | None -> ());
  let as_var () =
    match with_ with
    | { Expr.desc = Expr.Var v; _ } -> v
    | _ -> invalid_arg "Circuit.replace_uses: port operand needs a Var replacement"
  in
  let fix id = if id = of_ then as_var () else id in
  for i = 0 to c.nports - 1 do
    let p = c.ports.(i) in
    if p.r_addr = of_ || p.r_en = Some of_ then
      c.ports.(i) <-
        { p with r_addr = fix p.r_addr; r_en = Option.map fix p.r_en }
  done;
  for i = 0 to c.nmems - 1 do
    let m = c.mems.(i) in
    if List.exists (fun w -> w.w_addr = of_ || w.w_data = of_ || w.w_en = of_) m.write_ports
    then
      m.write_ports <-
        List.map
          (fun w -> { w_addr = fix w.w_addr; w_data = fix w.w_data; w_en = fix w.w_en })
          m.write_ports
  done;
  for i = 0 to c.nregs - 1 do
    let r = c.regs.(i) in
    match r.reset with
    | Some rst when rst.reset_signal = of_ ->
      r.reset <- Some { rst with reset_signal = as_var () }
    | Some _ | None -> ()
  done

let replace_read_port c i p' =
  if i < 0 || i >= c.nports then invalid_arg "Circuit.replace_read_port";
  let p = c.ports.(i) in
  if p'.r_mem <> p.r_mem || p'.r_data <> p.r_data then
    invalid_arg "Circuit.replace_read_port: memory and data node are fixed";
  c.ports.(i) <- p'

(* ------------------------------------------------------------------ *)
(* Structure                                                           *)
(* ------------------------------------------------------------------ *)

let dependencies c id =
  let n = node c id in
  match n.kind with
  | Input | Reg_read _ -> []
  | Logic | Reg_next _ ->
    (match n.expr with Some e -> Expr.vars e | None -> [])
  | Mem_read i ->
    let p = read_port c i in
    (match p.r_en with Some en -> [ p.r_addr; en ] | None -> [ p.r_addr ])

let successors c =
  let succ = Array.make c.len [] in
  iter_nodes c (fun n ->
      List.iter (fun d -> succ.(d) <- n.id :: succ.(d)) (dependencies c n.id));
  Array.map List.rev succ

(* Kahn's algorithm over the evaluated nodes (those that read same-cycle
   values).  Inputs and register reads are sources and are excluded. *)
let eval_order c =
  let evaluated n =
    match n.kind with Logic | Reg_next _ | Mem_read _ -> true | Input | Reg_read _ -> false
  in
  let indeg = Array.make c.len 0 in
  let succ = Array.make c.len [] in
  iter_nodes c (fun n ->
      if evaluated n then
        List.iter
          (fun d ->
            match node_opt c d with
            | Some dn when evaluated dn ->
              indeg.(n.id) <- indeg.(n.id) + 1;
              succ.(d) <- n.id :: succ.(d)
            | Some _ -> ()
            | None ->
              failwith
                (Printf.sprintf "Circuit.eval_order: node %S references deleted node %d"
                   n.name d))
          (dependencies c n.id));
  let queue = Queue.create () in
  let total = ref 0 in
  iter_nodes c (fun n ->
      if evaluated n then begin
        incr total;
        if indeg.(n.id) = 0 then Queue.add n.id queue
      end);
  let order = Array.make !total 0 in
  let k = ref 0 in
  while not (Queue.is_empty queue) do
    let id = Queue.pop queue in
    order.(!k) <- id;
    incr k;
    List.iter
      (fun s ->
        indeg.(s) <- indeg.(s) - 1;
        if indeg.(s) = 0 then Queue.add s queue)
      succ.(id)
  done;
  if !k <> !total then begin
    (* Extract one cycle among the leftover nodes for the error report. *)
    let in_cycle = Array.make c.len false in
    iter_nodes c (fun n -> if evaluated n && indeg.(n.id) > 0 then in_cycle.(n.id) <- true);
    let rec walk path id =
      if List.mem id path then List.rev (id :: path)
      else
        match List.find_opt (fun d -> d < c.len && in_cycle.(d)) (dependencies c id) with
        | Some d -> walk (id :: path) d
        | None -> List.rev (id :: path)
    in
    let start = ref (-1) in
    Array.iteri (fun i b -> if b && !start < 0 then start := i) in_cycle;
    raise (Combinational_cycle (walk [] !start))
  end;
  order

let check_acyclic c = ignore (eval_order c)

let cycle_diagnostic c ids =
  let name id =
    match node_opt c id with
    | Some n -> Printf.sprintf "%S" n.name
    | None -> Printf.sprintf "#%d" id
  in
  (* The witness walk may carry a tail before it enters the cycle and ends
     at the first revisited node; keep only the closed loop. *)
  let closed =
    match List.rev ids with
    | [] -> []
    | last :: _ ->
      let rec drop = function
        | x :: _ as l when x = last -> l
        | _ :: tl -> drop tl
        | [] -> []
      in
      drop ids
  in
  match closed with
  | [] -> "combinational cycle (empty witness)"
  | _ ->
    let n = List.length closed - 1 in
    Printf.sprintf "combinational cycle through %d node%s: %s" (max n 1)
      (if n <= 1 then "" else "s")
      (String.concat " -> " (List.map name closed))

let validate c =
  let fail fmt = Printf.ksprintf failwith fmt in
  iter_nodes c (fun n ->
      (match (n.kind, n.expr) with
       | (Logic | Reg_next _), None -> fail "node %S (%d) is missing its expression" n.name n.id
       | (Input | Reg_read _ | Mem_read _), Some _ ->
         fail "node %S (%d) must not carry an expression" n.name n.id
       | (Logic | Reg_next _), Some e ->
         if Expr.width e <> n.width then
           fail "node %S: expression width %d <> node width %d" n.name (Expr.width e) n.width
       | (Input | Reg_read _ | Mem_read _), None -> ());
      match n.expr with
      | None -> ()
      | Some e ->
        Expr.iter_vars
          (fun v ->
            match node_opt c v with
            | None -> fail "node %S references deleted node %d" n.name v
            | Some _ -> ())
          e);
  List.iter
    (fun r ->
      (match node_opt c r.read, node_opt c r.next with
       | Some _, Some _ -> ()
       | _ -> fail "register %S has deleted nodes" r.reg_name);
      match r.reset with
      | Some rst ->
        (match node_opt c rst.reset_signal with
         | Some s when s.width = 1 -> ()
         | Some _ -> fail "register %S: reset signal is not 1 bit" r.reg_name
         | None -> fail "register %S: reset signal deleted" r.reg_name)
      | None -> ())
    (registers c);
  Array.iter
    (fun m ->
      List.iter
        (fun w ->
          if node_opt c w.w_addr = None || node_opt c w.w_data = None
             || node_opt c w.w_en = None
          then fail "memory %S has a dangling write port" m.mem_name)
        m.write_ports)
    (memories c);
  for i = 0 to c.nports - 1 do
    let p = c.ports.(i) in
    match node_opt c p.r_data with
    | None -> () (* port orphaned by node deletion; compact drops it *)
    | Some _ ->
      if node_opt c p.r_addr = None then fail "read port %d: dangling address" i;
      (match p.r_en with
       | Some en when node_opt c en = None -> fail "read port %d: dangling enable" i
       | Some _ | None -> ())
  done;
  check_acyclic c

let copy c =
  {
    c with
    nodes = Array.map (Option.map (fun n -> { n with id = n.id })) c.nodes;
    regs =
      Array.map
        (fun r -> { r with reset = Option.map (fun rst -> { rst with slow_path = rst.slow_path }) r.reset })
        c.regs;
    mems =
      Array.map
        (fun m -> { m with write_ports = m.write_ports; read_port_ids = m.read_port_ids })
        c.mems;
    ports = Array.copy c.ports;
  }

(* Expression variables must be remapped through [map]; kind indices are
   rebuilt from scratch. *)
let compact c =
  let map = Array.make c.len (-1) in
  let fresh = ref 0 in
  iter_nodes c (fun n ->
      map.(n.id) <- !fresh;
      incr fresh);
  let remap id =
    if id < 0 || id >= c.len || map.(id) < 0 then
      failwith (Printf.sprintf "Circuit.compact: dangling reference to node %d" id)
    else map.(id)
  in
  let remap_expr e = Expr.map_vars (fun ~width v -> Expr.var ~width (remap v)) e in
  (* Rebuild registers (dropping dead ones) with new indices. *)
  let live_regs = registers c in
  let new_regs =
    List.mapi
      (fun _ r ->
        {
          r with
          read = remap r.read;
          next = remap r.next;
          reset =
            Option.map (fun rst -> { rst with reset_signal = remap rst.reset_signal }) r.reset;
        })
      live_regs
  in
  let reg_index = Hashtbl.create 16 in
  List.iteri (fun i r -> Hashtbl.replace reg_index r.read i) new_regs;
  (* Rebuild read ports from live Mem_read nodes; memory indices stay. *)
  let new_ports = ref [] in
  let nports = ref 0 in
  let port_index = Hashtbl.create 16 in
  iter_nodes c (fun n ->
      match n.kind with
      | Mem_read i ->
        let p = c.ports.(i) in
        new_ports :=
          { p with r_data = remap p.r_data; r_addr = remap p.r_addr; r_en = Option.map remap p.r_en }
          :: !new_ports;
        Hashtbl.replace port_index n.id !nports;
        incr nports
      | Input | Logic | Reg_read _ | Reg_next _ -> ());
  let new_ports = Array.of_list (List.rev !new_ports) in
  (* Rebuild nodes. *)
  let new_nodes = Array.make (max 64 !fresh) None in
  iter_nodes c (fun n ->
      let id = map.(n.id) in
      let kind =
        match n.kind with
        | Input -> Input
        | Logic -> Logic
        | Reg_read _ ->
          (match Hashtbl.find_opt reg_index id with
           | Some i -> Reg_read i
           | None -> failwith "Circuit.compact: register read without register")
        | Reg_next _ ->
          (* Find via the paired read node: scan new_regs. *)
          let rec find i = function
            | [] -> failwith "Circuit.compact: register next without register"
            | r :: tl -> if r.next = id then i else find (i + 1) tl
          in
          Reg_next (find 0 new_regs)
        | Mem_read _ -> Mem_read (Hashtbl.find port_index n.id)
      in
      new_nodes.(id) <-
        Some
          {
            id;
            name = n.name;
            width = n.width;
            kind;
            expr = Option.map remap_expr n.expr;
            is_output = n.is_output;
          });
  (* Memories: remap write ports and the read-port id lists. *)
  for i = 0 to c.nmems - 1 do
    let m = c.mems.(i) in
    m.write_ports <-
      List.map
        (fun w -> { w_addr = remap w.w_addr; w_data = remap w.w_data; w_en = remap w.w_en })
        m.write_ports;
    m.read_port_ids <-
      List.filter_map
        (fun id -> if map.(id) >= 0 then Some map.(id) else None)
        m.read_port_ids
  done;
  c.nodes <- new_nodes;
  c.len <- !fresh;
  c.regs <- Array.of_list new_regs;
  c.nregs <- List.length new_regs;
  c.ports <- new_ports;
  c.nports <- Array.length new_ports;
  map

(* ------------------------------------------------------------------ *)
(* Statistics                                                          *)
(* ------------------------------------------------------------------ *)

type stats = { ir_nodes : int; ir_edges : int; registers_count : int; memories_count : int }

let stats c =
  let nodes = node_count c in
  let edges =
    fold_nodes c ~init:0 ~f:(fun acc n -> acc + List.length (dependencies c n.id))
  in
  let edges = edges + List.length (registers c) in
  {
    ir_nodes = nodes;
    ir_edges = edges;
    registers_count = List.length (registers c);
    memories_count = Array.length (memories c);
  }

let pp_stats fmt s =
  Format.fprintf fmt "nodes=%d edges=%d registers=%d memories=%d" s.ir_nodes s.ir_edges
    s.registers_count s.memories_count
