module Bits = Gsim_bits.Bits

(* --- Expressions: s-expression syntax, one token per atom ------------------

   8'h2a                  constant (Bits.pp form)
   (v <width> <id>)       node reference
   (not e) (neg e) (andr e) (orr e) (xorr e)
   (shl <n> e) (shr <n> e) (ex <hi> <lo> e) (padu <w> e) (pads <w> e)
   (<binop> a b)          add sub mul div sdiv rem srem and or xor cat
                          eq neq lt leq gt geq slt sleq sgt sgeq
                          dshl dshr sdshr
   (mux s a b)                                                             *)

let binop_name = function
  | Expr.Add -> "add" | Expr.Sub -> "sub" | Expr.Mul -> "mul"
  | Expr.Div -> "div" | Expr.Div_signed -> "sdiv"
  | Expr.Rem -> "rem" | Expr.Rem_signed -> "srem"
  | Expr.And -> "and" | Expr.Or -> "or" | Expr.Xor -> "xor"
  | Expr.Cat -> "cat"
  | Expr.Eq -> "eq" | Expr.Neq -> "neq"
  | Expr.Lt -> "lt" | Expr.Leq -> "leq" | Expr.Gt -> "gt" | Expr.Geq -> "geq"
  | Expr.Lt_signed -> "slt" | Expr.Leq_signed -> "sleq"
  | Expr.Gt_signed -> "sgt" | Expr.Geq_signed -> "sgeq"
  | Expr.Dshl -> "dshl" | Expr.Dshr -> "dshr" | Expr.Dshr_signed -> "sdshr"

let binop_of_name = function
  | "add" -> Some Expr.Add | "sub" -> Some Expr.Sub | "mul" -> Some Expr.Mul
  | "div" -> Some Expr.Div | "sdiv" -> Some Expr.Div_signed
  | "rem" -> Some Expr.Rem | "srem" -> Some Expr.Rem_signed
  | "and" -> Some Expr.And | "or" -> Some Expr.Or | "xor" -> Some Expr.Xor
  | "cat" -> Some Expr.Cat
  | "eq" -> Some Expr.Eq | "neq" -> Some Expr.Neq
  | "lt" -> Some Expr.Lt | "leq" -> Some Expr.Leq
  | "gt" -> Some Expr.Gt | "geq" -> Some Expr.Geq
  | "slt" -> Some Expr.Lt_signed | "sleq" -> Some Expr.Leq_signed
  | "sgt" -> Some Expr.Gt_signed | "sgeq" -> Some Expr.Geq_signed
  | "dshl" -> Some Expr.Dshl | "dshr" -> Some Expr.Dshr
  | "sdshr" -> Some Expr.Dshr_signed
  | _ -> None

let bits_token b = Format.asprintf "%a" Bits.pp b

let rec write_expr buf (e : Expr.t) =
  match e.Expr.desc with
  | Expr.Const b -> Buffer.add_string buf (bits_token b)
  | Expr.Var v -> Buffer.add_string buf (Printf.sprintf "(v %d %d)" e.Expr.width v)
  | Expr.Unop (op, a) ->
    let head =
      match op with
      | Expr.Not -> "not" | Expr.Neg -> "neg"
      | Expr.Reduce_and -> "andr" | Expr.Reduce_or -> "orr"
      | Expr.Reduce_xor -> "xorr"
      | Expr.Shl_const n -> Printf.sprintf "shl %d" n
      | Expr.Shr_const n -> Printf.sprintf "shr %d" n
      | Expr.Extract (hi, lo) -> Printf.sprintf "ex %d %d" hi lo
      | Expr.Pad_unsigned w -> Printf.sprintf "padu %d" w
      | Expr.Pad_signed w -> Printf.sprintf "pads %d" w
    in
    Buffer.add_char buf '(';
    Buffer.add_string buf head;
    Buffer.add_char buf ' ';
    write_expr buf a;
    Buffer.add_char buf ')'
  | Expr.Binop (op, a, b) ->
    Buffer.add_char buf '(';
    Buffer.add_string buf (binop_name op);
    Buffer.add_char buf ' ';
    write_expr buf a;
    Buffer.add_char buf ' ';
    write_expr buf b;
    Buffer.add_char buf ')'
  | Expr.Mux (s, a, b) ->
    Buffer.add_string buf "(mux ";
    write_expr buf s;
    Buffer.add_char buf ' ';
    write_expr buf a;
    Buffer.add_char buf ' ';
    write_expr buf b;
    Buffer.add_char buf ')'

let expr_to_string e =
  let buf = Buffer.create 64 in
  write_expr buf e;
  Buffer.contents buf

(* Tokenize an expression: parens are their own tokens. *)
let expr_tokens s =
  let tokens = ref [] and buf = Buffer.create 16 in
  let flush () =
    if Buffer.length buf > 0 then begin
      tokens := Buffer.contents buf :: !tokens;
      Buffer.clear buf
    end
  in
  String.iter
    (fun c ->
      match c with
      | ' ' | '\t' -> flush ()
      | '(' | ')' ->
        flush ();
        tokens := String.make 1 c :: !tokens
      | c -> Buffer.add_char buf c)
    s;
  flush ();
  List.rev !tokens

let parse_expr ~ctx s =
  let fail msg = failwith (Printf.sprintf "gsimir: %s: %s" ctx msg) in
  let toks = Array.of_list (expr_tokens s) in
  let pos = ref 0 in
  let next () =
    if !pos >= Array.length toks then fail "truncated expression"
    else begin
      incr pos;
      toks.(!pos - 1)
    end
  in
  let int_tok () =
    match int_of_string_opt (next ()) with
    | Some n -> n
    | None -> fail "expected integer in expression"
  in
  let close () = if next () <> ")" then fail "expected ')'" in
  let rec expr () =
    match next () with
    | "(" -> begin
      let head = next () in
      let e =
        match head with
        | "v" ->
          let w = int_tok () in
          let id = int_tok () in
          Expr.var ~width:w id
        | "not" -> Expr.unop Expr.Not (expr ())
        | "neg" -> Expr.unop Expr.Neg (expr ())
        | "andr" -> Expr.unop Expr.Reduce_and (expr ())
        | "orr" -> Expr.unop Expr.Reduce_or (expr ())
        | "xorr" -> Expr.unop Expr.Reduce_xor (expr ())
        | "shl" ->
          let n = int_tok () in
          Expr.unop (Expr.Shl_const n) (expr ())
        | "shr" ->
          let n = int_tok () in
          Expr.unop (Expr.Shr_const n) (expr ())
        | "ex" ->
          let hi = int_tok () in
          let lo = int_tok () in
          Expr.unop (Expr.Extract (hi, lo)) (expr ())
        | "padu" ->
          let w = int_tok () in
          Expr.unop (Expr.Pad_unsigned w) (expr ())
        | "pads" ->
          let w = int_tok () in
          Expr.unop (Expr.Pad_signed w) (expr ())
        | "mux" ->
          let s = expr () in
          let a = expr () in
          let b = expr () in
          Expr.mux s a b
        | op -> (
          match binop_of_name op with
          | Some op ->
            let a = expr () in
            let b = expr () in
            Expr.binop op a b
          | None -> fail (Printf.sprintf "unknown operator %S" op))
      in
      close ();
      e
    end
    | ")" -> fail "unexpected ')'"
    | tok -> (
      match Bits.of_string tok with
      | b -> Expr.const b
      | exception Invalid_argument _ -> fail (Printf.sprintf "bad constant %S" tok))
  in
  let e = expr () in
  if !pos <> Array.length toks then fail "trailing tokens after expression";
  e

(* --- Circuit lines ---------------------------------------------------------

   gsimir 1
   circuit <name>
   mem <width> <depth> <name>                       (memory-index order)
   node <id> input <width> <name>
   node <id> logic <width> <name> <expr>
   node <id> regread <width> <name>
   node <id> regnext <width> <name> <expr>
   node <id> memread <width> <name> <port-index>
   reg <read-id> <next-id> <init> <slow|-> <sig|-> <value|-> <name>
   rport <port-index> <mem> <data-id> <addr-id> <en-id|->
   wport <mem> <addr-id> <data-id> <en-id>
   output <id>

   Names are emitted with spaces replaced by '_' so every field is one
   whitespace-free token (names never contain spaces in practice).      *)

let sanitize_name s =
  let s = if s = "" then "_" else s in
  String.map (fun c -> if c = ' ' || c = '\t' || c = '\n' || c = '\r' then '_' else c) s

let to_string c =
  let buf = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s; Buffer.add_char buf '\n') fmt in
  line "gsimir 1";
  line "circuit %s" (sanitize_name (Circuit.name c));
  Array.iter
    (fun (m : Circuit.memory) ->
      line "mem %d %d %s" m.Circuit.mem_width m.Circuit.depth (sanitize_name m.Circuit.mem_name))
    (Circuit.memories c);
  Circuit.iter_nodes c (fun n ->
      let name = sanitize_name n.Circuit.name in
      match n.Circuit.kind with
      | Circuit.Input -> line "node %d input %d %s" n.Circuit.id n.Circuit.width name
      | Circuit.Logic ->
        line "node %d logic %d %s %s" n.Circuit.id n.Circuit.width name
          (expr_to_string (Option.get n.Circuit.expr))
      | Circuit.Reg_read _ -> line "node %d regread %d %s" n.Circuit.id n.Circuit.width name
      | Circuit.Reg_next _ ->
        line "node %d regnext %d %s %s" n.Circuit.id n.Circuit.width name
          (expr_to_string (Option.get n.Circuit.expr))
      | Circuit.Mem_read p ->
        line "node %d memread %d %s %d" n.Circuit.id n.Circuit.width name p);
  List.iter
    (fun (r : Circuit.register) ->
      let slow, sg, v =
        match r.Circuit.reset with
        | None -> ("-", "-", "-")
        | Some rst ->
          ( (if rst.Circuit.slow_path then "1" else "0"),
            string_of_int rst.Circuit.reset_signal,
            bits_token rst.Circuit.reset_value )
      in
      line "reg %d %d %s %s %s %s %s" r.Circuit.read r.Circuit.next (bits_token r.Circuit.init)
        slow sg v (sanitize_name r.Circuit.reg_name))
    (Circuit.registers c);
  Array.iteri
    (fun mem_idx (m : Circuit.memory) ->
      ignore mem_idx;
      List.iter
        (fun data_id ->
          match (Circuit.node c data_id).Circuit.kind with
          | Circuit.Mem_read p ->
            let port = Circuit.read_port c p in
            line "rport %d %d %d %d %s" p port.Circuit.r_mem port.Circuit.r_data
              port.Circuit.r_addr
              (match port.Circuit.r_en with Some e -> string_of_int e | None -> "-")
          | _ -> ())
        (List.rev m.Circuit.read_port_ids);
      List.iter
        (fun (w : Circuit.write_port) ->
          line "wport %d %d %d %d" mem_idx w.Circuit.w_addr w.Circuit.w_data w.Circuit.w_en)
        (List.rev m.Circuit.write_ports))
    (Circuit.memories c);
  Circuit.iter_nodes c (fun n -> if n.Circuit.is_output then line "output %d" n.Circuit.id);
  Buffer.contents buf

(* --- Parsing --------------------------------------------------------------- *)

type node_decl = {
  d_id : int;
  d_kind : string;
  d_width : int;
  d_name : string;
  d_rest : string;  (* expression text or port index *)
}

let of_string s =
  let lineno = ref 0 in
  let fail msg = failwith (Printf.sprintf "gsimir line %d: %s" !lineno msg) in
  let int_field f =
    match int_of_string_opt f with Some n -> n | None -> fail (Printf.sprintf "bad integer %S" f)
  in
  let bits_field f =
    match Bits.of_string f with
    | b -> b
    | exception Invalid_argument _ -> fail (Printf.sprintf "bad bit vector %S" f)
  in
  let lines =
    String.split_on_char '\n' s
    |> List.map (fun l -> String.trim l)
  in
  let circuit_name = ref "circuit" in
  let mems = ref [] (* (width, depth, name), reversed *)
  and nodes = ref [] (* node_decl, reversed *)
  and regs = ref [] (* (read, next, init, reset option), reversed *)
  and rports = ref [] (* (port, mem, data, addr, en option), reversed *)
  and wports = ref [] (* (mem, addr, data, en), reversed *)
  and outputs = ref [] in
  let header_seen = ref false in
  List.iter
    (fun line ->
      incr lineno;
      if line <> "" then
        match String.split_on_char ' ' line with
        | [ "gsimir"; "1" ] -> header_seen := true
        | "gsimir" :: _ -> fail "unsupported gsimir version"
        | [ "circuit"; name ] -> circuit_name := name
        | [ "mem"; w; d; name ] -> mems := (int_field w, int_field d, name) :: !mems
        | "node" :: id :: kind :: width :: name :: rest ->
          nodes :=
            {
              d_id = int_field id;
              d_kind = kind;
              d_width = int_field width;
              d_name = name;
              d_rest = String.concat " " rest;
            }
            :: !nodes
        | [ "reg"; read; next; init; slow; sg; v; name ] ->
          let reset =
            if slow = "-" then None
            else Some (slow = "1", int_field sg, bits_field v)
          in
          regs := (int_field read, int_field next, bits_field init, reset, name) :: !regs
        | [ "rport"; p; m; d; a; e ] ->
          let en = if e = "-" then None else Some (int_field e) in
          rports := (int_field p, int_field m, int_field d, int_field a, en) :: !rports
        | [ "wport"; m; a; d; e ] ->
          wports := (int_field m, int_field a, int_field d, int_field e) :: !wports
        | [ "output"; id ] -> outputs := int_field id :: !outputs
        | _ -> fail (Printf.sprintf "bad line %S" line))
    lines;
  if not !header_seen then failwith "gsimir: missing header";
  let node_decls =
    List.rev !nodes |> List.sort (fun a b -> compare a.d_id b.d_id) |> Array.of_list
  in
  let max_old =
    Array.fold_left (fun acc d -> max acc d.d_id) (-1) node_decls
  in
  let regs = List.rev !regs in
  let reg_of_read =
    let tbl = Hashtbl.create 16 in
    List.iter (fun ((read, _, _, _, _) as r) -> Hashtbl.replace tbl read r) regs;
    tbl
  in
  let c = Circuit.create ~name:!circuit_name () in
  List.iter
    (fun (w, d, name) -> ignore (Circuit.add_memory c ~name ~width:w ~depth:d))
    (List.rev !mems);
  (* Phase A: create all nodes in ascending old-id order.  A register's
     read node triggers [add_register], which also allocates the next
     node; the next's own declaration is skipped when reached.  Read
     ports are created with a placeholder address and patched in phase B
     (forward references are legal in the table). *)
  let map = Array.make (max_old + 1) (-1) in
  let port_map = Hashtbl.create 16 (* old port index -> new port index *) in
  let new_ports = ref 0 in
  let register_objs = Hashtbl.create 16 (* old read id -> register *) in
  Array.iter
    (fun d ->
      if map.(d.d_id) >= 0 then begin
        (* Already allocated as a register's next node: restore its
           serialized name. *)
        if d.d_kind <> "regnext" then
          failwith (Printf.sprintf "gsimir: node %d allocated twice" d.d_id);
        (Circuit.node c map.(d.d_id)).Circuit.name <- d.d_name
      end
      else begin
        match d.d_kind with
        | "input" ->
          let n = Circuit.add_input c ~name:d.d_name ~width:d.d_width in
          map.(d.d_id) <- n.Circuit.id
        | "logic" ->
          let n =
            Circuit.add_logic c ~name:d.d_name (Expr.const (Bits.zero d.d_width))
          in
          map.(d.d_id) <- n.Circuit.id
        | "regread" -> (
          match Hashtbl.find_opt reg_of_read d.d_id with
          | None -> failwith (Printf.sprintf "gsimir: regread node %d has no reg line" d.d_id)
          | Some (read, next, init, _reset, reg_name) ->
            (* Reset is attached in phase B: the serialized next
               expression already contains the reset mux, so the
               register is created bare to keep [set_expr] from
               double-wrapping. *)
            let r = Circuit.add_register c ~name:reg_name ~width:d.d_width ~init () in
            map.(read) <- r.Circuit.read;
            map.(next) <- r.Circuit.next;
            (Circuit.node c r.Circuit.read).Circuit.name <- d.d_name;
            Hashtbl.replace register_objs read r)
        | "memread" ->
          let old_port = int_of_string (String.trim d.d_rest) in
          let mem =
            match List.find_opt (fun (p, _, _, _, _) -> p = old_port) (List.rev !rports) with
            | Some (_, m, _, _, _) -> m
            | None ->
              failwith (Printf.sprintf "gsimir: memread node %d has no rport line" d.d_id)
          in
          let n = Circuit.add_read_port c ~mem ~name:d.d_name ~addr:(-1) () in
          Hashtbl.replace port_map old_port !new_ports;
          incr new_ports;
          map.(d.d_id) <- n.Circuit.id
        | "regnext" ->
          failwith
            (Printf.sprintf "gsimir: regnext node %d appears before its regread" d.d_id)
        | k -> failwith (Printf.sprintf "gsimir: unknown node kind %S" k)
      end)
    node_decls;
  let map_id id =
    if id < 0 || id > max_old || map.(id) < 0 then
      failwith (Printf.sprintf "gsimir: dangling node reference %d" id)
    else map.(id)
  in
  let remap_expr e = Expr.map_vars (fun ~width v -> Expr.var ~width (map_id v)) e in
  (* Phase B: expressions, resets, port operands, write ports, outputs. *)
  Array.iter
    (fun d ->
      match d.d_kind with
      | "logic" | "regnext" ->
        let ctx = Printf.sprintf "node %d" d.d_id in
        Circuit.set_expr c map.(d.d_id) (remap_expr (parse_expr ~ctx d.d_rest))
      | _ -> ())
    node_decls;
  List.iter
    (fun (read, _next, _init, reset, _name) ->
      match reset with
      | None -> ()
      | Some (slow, sg, value) -> (
        match Hashtbl.find_opt register_objs read with
        | None -> ()
        | Some r ->
          r.Circuit.reset <-
            Some
              {
                Circuit.reset_signal = map_id sg;
                reset_value = value;
                slow_path = slow;
              }))
    regs;
  List.iter
    (fun (old_port, mem, data, addr, en) ->
      match Hashtbl.find_opt port_map old_port with
      | None -> ()
      | Some new_port ->
        Circuit.replace_read_port c new_port
          {
            Circuit.r_mem = mem;
            r_data = map_id data;
            r_addr = map_id addr;
            r_en = Option.map map_id en;
          })
    (List.rev !rports);
  List.iter
    (fun (mem, addr, data, en) ->
      Circuit.add_write_port c ~mem ~addr:(map_id addr) ~data:(map_id data) ~en:(map_id en))
    (List.rev !wports);
  List.iter (fun id -> Circuit.mark_output c (map_id id)) (List.rev !outputs);
  Circuit.validate c;
  c
