module Bits = Gsim_bits.Bits
open Gsim_ir

(* A self-contained, replayable record of one shrunk fuzz failure.
   Everything above the [circuit] marker is line-oriented metadata;
   everything after it is the exact Ir_text serialization of the shrunk
   circuit.  Stimulus refers to nodes by NAME so the file stays readable
   and survives renumbering. *)

type poke = { p_node : string; p_value : Bits.t }

type act =
  | A_force of { f_node : string; f_mask : Bits.t option; f_value : Bits.t }
  | A_release of string

type t = {
  seed : int;
  case : int;
  subject : string;          (* setup name, e.g. "gsim+bytecode" *)
  level : string;
  kind : string;             (* mismatch | crash | hang *)
  at_cycle : int option;
  node : string option;      (* divergent node name, mismatches only *)
  expected : Bits.t option;
  got : Bits.t option;
  message : string;          (* free-text detail (crash text, ...) *)
  culprit : string;          (* Bisect.culprit_token *)
  culprit_detail : string;   (* Bisect.culprit_to_string *)
  bucket : string;
  nodes : int;
  cycles : int;
  trace : (int * poke list * act list) list;  (* sparse, by cycle *)
  circuit_text : string;
}

let bits_str v = Format.asprintf "%a" Bits.pp v

let signature t =
  match t.kind with
  | "mismatch" ->
    Printf.sprintf "mismatch:%s@%d"
      (Option.value t.node ~default:"?")
      (Option.value t.at_cycle ~default:(-1))
  | k -> k

let to_string t =
  let b = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  add "fuzzrepro 1\n";
  add "seed %d\n" t.seed;
  add "case %d\n" t.case;
  add "subject %s\n" t.subject;
  add "level %s\n" t.level;
  add "kind %s\n" t.kind;
  Option.iter (add "cycle %d\n") t.at_cycle;
  Option.iter (add "node %s\n") t.node;
  Option.iter (fun v -> add "expected %s\n" (bits_str v)) t.expected;
  Option.iter (fun v -> add "got %s\n" (bits_str v)) t.got;
  if t.message <> "" then
    add "message %s\n" (String.map (function '\n' -> ' ' | c -> c) t.message);
  add "culprit %s\n" t.culprit;
  add "culprit-detail %s\n" t.culprit_detail;
  add "bucket %s\n" t.bucket;
  add "nodes %d\n" t.nodes;
  add "cycles %d\n" t.cycles;
  List.iter
    (fun (cycle, pokes, acts) ->
      add "trace %d\n" cycle;
      List.iter (fun p -> add "poke %s %s\n" p.p_node (bits_str p.p_value)) pokes;
      List.iter
        (function
          | A_force { f_node; f_mask; f_value } ->
            add "force %s %s %s\n" f_node
              (match f_mask with Some m -> bits_str m | None -> "-")
              (bits_str f_value)
          | A_release n -> add "release %s\n" n)
        acts)
    t.trace;
  add "circuit\n";
  Buffer.add_string b t.circuit_text;
  Buffer.contents b

let of_string s =
  let fail fmt = Printf.ksprintf failwith fmt in
  let lines = String.split_on_char '\n' s in
  (match lines with
   | first :: _ when String.trim first = "fuzzrepro 1" -> ()
   | _ -> fail "not a fuzzrepro file (missing \"fuzzrepro 1\" header)");
  let meta = Hashtbl.create 16 in
  let trace = ref [] in                      (* reversed *)
  let cur_cycle = ref None in
  let cur_pokes = ref [] and cur_acts = ref [] in
  let flush_cycle () =
    match !cur_cycle with
    | Some c ->
      trace := (c, List.rev !cur_pokes, List.rev !cur_acts) :: !trace;
      cur_cycle := None;
      cur_pokes := [];
      cur_acts := []
    | None -> ()
  in
  let circuit_lines = ref [] in
  let in_circuit = ref false in
  List.iteri
    (fun i line ->
      if i = 0 then ()
      else if !in_circuit then circuit_lines := line :: !circuit_lines
      else
        let line = String.trim line in
        if line = "" then ()
        else if line = "circuit" then begin
          flush_cycle ();
          in_circuit := true
        end
        else
          match String.index_opt line ' ' with
          | None -> fail "line %d: malformed %S" (i + 1) line
          | Some sp ->
            let key = String.sub line 0 sp in
            let rest = String.sub line (sp + 1) (String.length line - sp - 1) in
            (match key with
             | "trace" ->
               flush_cycle ();
               cur_cycle := Some (int_of_string rest)
             | "poke" -> (
               match String.split_on_char ' ' rest with
               | [ n; v ] ->
                 cur_pokes := { p_node = n; p_value = Bits.of_string v } :: !cur_pokes
               | _ -> fail "line %d: malformed poke" (i + 1))
             | "force" -> (
               match String.split_on_char ' ' rest with
               | [ n; m; v ] ->
                 cur_acts :=
                   A_force
                     { f_node = n;
                       f_mask = (if m = "-" then None else Some (Bits.of_string m));
                       f_value = Bits.of_string v }
                   :: !cur_acts
               | _ -> fail "line %d: malformed force" (i + 1))
             | "release" -> cur_acts := A_release rest :: !cur_acts
             | _ -> Hashtbl.replace meta key rest))
    lines;
  if not !in_circuit then fail "missing circuit section";
  let get k = try Hashtbl.find meta k with Not_found -> fail "missing %S field" k in
  let get_opt k = Hashtbl.find_opt meta k in
  let int_field k = int_of_string (get k) in
  { seed = int_field "seed";
    case = int_field "case";
    subject = get "subject";
    level = (match get_opt "level" with Some l -> l | None -> "O3");
    kind = get "kind";
    at_cycle = Option.map int_of_string (get_opt "cycle");
    node = get_opt "node";
    expected = Option.map Bits.of_string (get_opt "expected");
    got = Option.map Bits.of_string (get_opt "got");
    message = Option.value (get_opt "message") ~default:"";
    culprit = get "culprit";
    culprit_detail = Option.value (get_opt "culprit-detail") ~default:"";
    bucket = get "bucket";
    nodes = int_field "nodes";
    cycles = int_field "cycles";
    trace = List.rev !trace;
    circuit_text = String.concat "\n" (List.rev !circuit_lines) }

(* ------------------------------------------------------------------ *)

let of_failure ~seed ~case ~subject ~level ~culprit circuit
    (steps : Oracle.step array) (failure : Oracle.failure) =
  let name id = (Circuit.node circuit id).Circuit.name in
  let trace =
    List.filteri (fun _ (_, p, a) -> p <> [] || a <> [])
      (List.mapi
         (fun cycle (s : Oracle.step) ->
           ( cycle,
             List.map (fun (id, v) -> { p_node = name id; p_value = v }) s.Oracle.pokes,
             List.map
               (function
                 | Oracle.Force { target; mask; value } ->
                   A_force { f_node = name target; f_mask = mask; f_value = value }
                 | Oracle.Release id -> A_release (name id))
               s.Oracle.actions ))
         (Array.to_list steps))
  in
  let at_cycle, node, expected, got, message =
    match failure with
    | Oracle.Mismatch m ->
      (Some m.Oracle.at_cycle, Some (name m.Oracle.node_id),
       Some m.Oracle.expected, Some m.Oracle.got, "")
    | Oracle.Crash msg -> (None, None, None, None, msg)
    | Oracle.Hang secs ->
      (None, None, None, None, Printf.sprintf "watchdog after %.1fs" secs)
  in
  { seed;
    case;
    subject;
    level;
    kind = Oracle.failure_kind failure;
    at_cycle;
    node;
    expected;
    got;
    message;
    culprit = Bisect.culprit_token culprit;
    culprit_detail = Bisect.culprit_to_string culprit;
    bucket = Bisect.culprit_token culprit ^ "|" ^ Oracle.failure_kind failure;
    nodes = Circuit.node_count circuit;
    cycles = Array.length steps;
    trace;
    circuit_text = Ir_text.to_string circuit }

let rebuild t =
  let circuit = Ir_text.of_string t.circuit_text in
  let resolve n =
    match Circuit.find_node circuit n with
    | Some node -> node.Circuit.id
    | None -> failwith (Printf.sprintf "repro references unknown node %S" n)
  in
  let steps =
    Array.init t.cycles (fun _ -> { Oracle.pokes = []; actions = [] })
  in
  List.iter
    (fun (cycle, pokes, acts) ->
      if cycle < 0 || cycle >= t.cycles then
        failwith (Printf.sprintf "repro trace cycle %d out of range" cycle);
      steps.(cycle) <-
        { Oracle.pokes = List.map (fun p -> (resolve p.p_node, p.p_value)) pokes;
          actions =
            List.map
              (function
                | A_force { f_node; f_mask; f_value } ->
                  Oracle.Force
                    { target = resolve f_node; mask = f_mask; value = f_value }
                | A_release n -> Oracle.Release (resolve n))
              acts })
    t.trace;
  (circuit, steps)

(* ------------------------------------------------------------------ *)

let save path t =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  output_string oc (to_string t);
  close_out oc;
  Sys.rename tmp path

let load path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  of_string s
