(** Delta-debugging shrinker for failing (circuit, stimulus) pairs.

    Reduces a failing test case to something a human can read: a minimal
    failing circuit (few nodes, narrow widths, no unused state) and the
    shortest failing poke sequence.  The caller supplies [check], the
    "does the same failure class still reproduce" oracle; the shrinker
    guarantees that every accepted reduction was directly re-validated by
    [check] — it never assumes monotonicity.

    Reductions, in fixpoint rounds (at most 3, bounded by the check
    budget): stimulus prefix truncation (binary search), output unmarking,
    reachability trim (an independent mark-and-sweep — deliberately {e
    not} the Dce pass, which is itself under test), memory removal,
    register freezing, stimulus cycle/poke ddmin, logic constant
    replacement, per-variable zeroing (disconnects fan-in cones), and
    width narrowing.  The result is compacted to dense ids when the
    failure survives renumbering. *)

open Gsim_ir

type result = {
  circuit : Circuit.t;        (** validated; the original is untouched *)
  steps : Oracle.step array;  (** ids refer to [circuit] *)
  checks_used : int;
}

val run :
  ?budget:int ->
  check:(Circuit.t -> Oracle.step array -> bool) ->
  Circuit.t ->
  Oracle.step array ->
  result
(** [check] must not mutate its arguments and should return [false] (not
    raise) on candidates it cannot run; exceptions are treated as
    rejection.  Default budget: 400 checks. *)
