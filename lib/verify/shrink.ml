module Bits = Gsim_bits.Bits
open Gsim_ir

(* Delta-debugging for (circuit, stimulus) pairs.

   Every transform builds candidates from a private [Circuit.copy] of the
   current best, validates them, and accepts only candidates for which
   [check] (the caller's "same failure class still reproduces" oracle)
   holds — so the invariant "the current pair fails" is maintained by
   direct test at every acceptance, never by assumption.  Candidates that
   raise anywhere (construction, validation, the check itself) are simply
   rejected.

   Structural transforms share one generalized ddmin: [minimize test items]
   finds a small "kept" subset such that removing everything else still
   fails, probing chunks of decreasing size.  "Removing" means whatever the
   transform's rebuild function does: unmark an output, freeze a register
   at its init value, zero a logic node, substitute a constant for one
   variable occurrence, drop a stimulus cycle... *)

type ctx = {
  check : Circuit.t -> Oracle.step array -> bool;
  mutable checks_left : int;
  mutable c : Circuit.t;
  mutable steps : Oracle.step array;
}

let test ctx c steps =
  if ctx.checks_left <= 0 then false
  else begin
    ctx.checks_left <- ctx.checks_left - 1;
    try
      Circuit.validate c;
      ctx.check c steps
    with _ -> false
  end

let minimize test items =
  let rec pass sz cur =
    if sz < 1 || Array.length cur = 0 then cur
    else begin
      let cur = ref cur in
      let i = ref 0 in
      while !i < Array.length !cur do
        let m = Array.length !cur in
        let hi = min m (!i + sz) in
        if hi > !i then begin
          let cand =
            Array.append (Array.sub !cur 0 !i) (Array.sub !cur hi (m - hi))
          in
          if test (Array.to_list cand) then cur := cand else i := hi
        end
        else i := hi
      done;
      pass (if sz = 1 then 0 else sz / 2) !cur
    end
  in
  let arr = Array.of_list items in
  Array.to_list (pass (max 1 (Array.length arr / 2)) arr)

(* -------------------------------------------------------------------- *)
(* Stimulus                                                             *)

(* Smallest failing prefix, by binary search; every accepted length was
   directly tested, so no monotonicity assumption is load-bearing. *)
let shrink_tail ctx =
  let len = Array.length ctx.steps in
  if len = 0 then false
  else begin
    let fails l = test ctx ctx.c (Array.sub ctx.steps 0 l) in
    if fails 0 then begin
      ctx.steps <- [||];
      true
    end
    else begin
      let lo = ref 0 and hi = ref len in
      (* invariant: fails !lo = false; the full length is known to fail *)
      while !hi - !lo > 1 do
        let mid = (!lo + !hi) / 2 in
        if fails mid then hi := mid else lo := mid
      done;
      if !hi < len then begin
        ctx.steps <- Array.sub ctx.steps 0 !hi;
        true
      end
      else false
    end
  end

let shrink_cycles ctx =
  let n = Array.length ctx.steps in
  if n <= 1 then false
  else begin
    let snapshot = ctx.steps in
    let rebuild kept = Array.of_list (List.map (Array.get snapshot) kept) in
    let all = List.init n Fun.id in
    let kept = minimize (fun kept -> test ctx ctx.c (rebuild kept)) all in
    if List.length kept < n then begin
      ctx.steps <- rebuild kept;
      true
    end
    else false
  end

let shrink_pokes ctx =
  let snapshot = ctx.steps in
  let items =
    List.concat
      (List.mapi
         (fun ci (s : Oracle.step) ->
           List.mapi (fun j _ -> (ci, `Poke j)) s.Oracle.pokes
           @ List.mapi (fun j _ -> (ci, `Act j)) s.Oracle.actions)
         (Array.to_list snapshot))
  in
  if List.length items <= 1 then false
  else begin
    let rebuild kept =
      Array.mapi
        (fun ci (s : Oracle.step) ->
          { Oracle.pokes =
              List.filteri (fun j _ -> List.mem (ci, `Poke j) kept) s.Oracle.pokes;
            actions =
              List.filteri (fun j _ -> List.mem (ci, `Act j) kept) s.Oracle.actions
          })
        snapshot
    in
    let kept = minimize (fun kept -> test ctx ctx.c (rebuild kept)) items in
    if List.length kept < List.length items then begin
      ctx.steps <- rebuild kept;
      true
    end
    else false
  end

(* -------------------------------------------------------------------- *)
(* Circuit                                                              *)

let copy_with ctx f =
  let cc = Circuit.copy ctx.c in
  f cc;
  cc

let accept_circuit ctx rebuild kept_before kept =
  if List.length kept < kept_before then begin
    ctx.c <- rebuild kept;
    true
  end
  else false

let shrink_outputs ctx =
  let all = List.map (fun n -> n.Circuit.id) (Circuit.outputs ctx.c) in
  if List.length all <= 1 then false
  else begin
    let rebuild kept =
      copy_with ctx (fun cc ->
          List.iter
            (fun id ->
              if not (List.mem id kept) then
                (Circuit.node cc id).Circuit.is_output <- false)
            all)
    in
    let kept = minimize (fun kept -> test ctx (rebuild kept) ctx.steps) all in
    accept_circuit ctx rebuild (List.length all) kept
  end

(* A killed memory reads as constant zero and never commits writes; the
   orphaned port-table entries are harmless (engines dispatch on node
   kind, and compaction drops them). *)
let kill_mem cc mi =
  let m = Circuit.memory cc mi in
  List.iter
    (fun id ->
      match Circuit.node_opt cc id with
      | Some n ->
        n.Circuit.kind <- Circuit.Logic;
        n.Circuit.expr <- Some (Expr.const (Bits.zero n.Circuit.width))
      | None -> ())
    m.Circuit.read_port_ids;
  m.Circuit.read_port_ids <- [];
  m.Circuit.write_ports <- []

let shrink_memories ctx =
  let all =
    Array.to_list (Circuit.memories ctx.c)
    |> List.mapi (fun i m -> (i, m))
    |> List.filter (fun (_, (m : Circuit.memory)) ->
           m.Circuit.read_port_ids <> [] || m.Circuit.write_ports <> [])
    |> List.map fst
  in
  if all = [] then false
  else begin
    let rebuild kept =
      copy_with ctx (fun cc ->
          List.iter (fun mi -> if not (List.mem mi kept) then kill_mem cc mi) all)
    in
    let kept = minimize (fun kept -> test ctx (rebuild kept) ctx.steps) all in
    accept_circuit ctx rebuild (List.length all) kept
  end

(* Freeze a register at its init value: the read node becomes a Logic
   constant, the next node becomes plain (dead) logic, and the register
   entry is retired. *)
let demote_register cc read_id =
  match Circuit.register_of_node cc read_id with
  | Some r when not r.Circuit.dead ->
    let read = Circuit.node cc r.Circuit.read in
    read.Circuit.kind <- Circuit.Logic;
    read.Circuit.expr <- Some (Expr.const r.Circuit.init);
    let next = Circuit.node cc r.Circuit.next in
    next.Circuit.kind <- Circuit.Logic;
    r.Circuit.dead <- true
  | _ -> ()

let shrink_registers ctx =
  let all = List.map (fun r -> r.Circuit.read) (Circuit.registers ctx.c) in
  if all = [] then false
  else begin
    let rebuild kept =
      copy_with ctx (fun cc ->
          List.iter
            (fun id -> if not (List.mem id kept) then demote_register cc id)
            all)
    in
    let kept = minimize (fun kept -> test ctx (rebuild kept) ctx.steps) all in
    accept_circuit ctx rebuild (List.length all) kept
  end

let shrink_logic ctx =
  let all = ref [] in
  Circuit.iter_nodes ctx.c (fun n ->
      match (n.Circuit.kind, n.Circuit.expr) with
      | Circuit.Logic, Some { Expr.desc = Expr.Const _; _ } -> ()
      | Circuit.Logic, Some _ -> all := n.Circuit.id :: !all
      | _ -> ());
  let all = List.rev !all in
  if all = [] then false
  else begin
    let rebuild kept =
      copy_with ctx (fun cc ->
          List.iter
            (fun id ->
              if not (List.mem id kept) then
                let n = Circuit.node cc id in
                Circuit.set_expr cc id (Expr.const (Bits.zero n.Circuit.width)))
            all)
    in
    let kept = minimize (fun kept -> test ctx (rebuild kept) ctx.steps) all in
    accept_circuit ctx rebuild (List.length all) kept
  end

(* Substitute constant zero for individual variable references inside
   expressions.  This is what lets the reachability trim drop whole
   fan-in cones: zeroing the one use of a deep subgraph disconnects it. *)
let shrink_vars ctx =
  let items = ref [] in
  Circuit.iter_nodes ctx.c (fun n ->
      match n.Circuit.expr with
      | Some e ->
        List.iter (fun v -> items := (n.Circuit.id, v) :: !items) (Expr.vars e)
      | None -> ());
  let items = List.rev !items in
  if items = [] then false
  else begin
    let rebuild kept =
      copy_with ctx (fun cc ->
          Circuit.iter_nodes cc (fun n ->
              match n.Circuit.expr with
              | Some e ->
                let id = n.Circuit.id in
                let e' =
                  Expr.map_vars
                    (fun ~width v ->
                      if List.mem (id, v) items && not (List.mem (id, v) kept)
                      then Expr.const (Bits.zero width)
                      else Expr.var ~width v)
                    e
                in
                if not (Expr.equal e e') then Circuit.set_expr cc id e'
              | None -> ()))
    in
    let kept = minimize (fun kept -> test ctx (rebuild kept) ctx.steps) items in
    accept_circuit ctx rebuild (List.length items) kept
  end

(* -------------------------------------------------------------------- *)
(* Widths                                                               *)

let retruncate_steps (cc : Circuit.t) steps =
  Array.map
    (fun (s : Oracle.step) ->
      { s with
        Oracle.pokes =
          List.map
            (fun (id, v) ->
              match Circuit.node_opt cc id with
              | Some n when Bits.width v > n.Circuit.width ->
                (id, Bits.truncate v ~width:n.Circuit.width)
              | _ -> (id, v))
            s.Oracle.pokes
      })
    steps

let narrow cc id w' =
  let n = Circuit.node cc id in
  let old_w = n.Circuit.width in
  (match n.Circuit.kind with
   | Circuit.Logic ->
     let e = Option.get n.Circuit.expr in
     n.Circuit.width <- w';
     n.Circuit.expr <- Some (Expr.unop (Expr.Extract (w' - 1, 0)) e)
   | Circuit.Input -> n.Circuit.width <- w'
   | _ -> invalid_arg "narrow");
  Circuit.replace_uses cc ~of_:id
    ~with_:(Expr.unop (Expr.Pad_unsigned old_w) (Expr.var ~width:w' id))

let shrink_widths ctx =
  (* nodes whose id appears outside plain expressions (ports, resets)
     cannot be rewrapped by replace_uses *)
  let pinned = Hashtbl.create 16 in
  let pin id = Hashtbl.replace pinned id () in
  Array.iter
    (fun (m : Circuit.memory) ->
      List.iter
        (fun (w : Circuit.write_port) ->
          pin w.Circuit.w_addr;
          pin w.Circuit.w_data;
          pin w.Circuit.w_en)
        m.Circuit.write_ports;
      List.iter
        (fun id ->
          let p = Circuit.read_port ctx.c
              (match (Circuit.node ctx.c id).Circuit.kind with
               | Circuit.Mem_read i -> i
               | _ -> -1)
          in
          pin p.Circuit.r_addr;
          Option.iter pin p.Circuit.r_en)
        m.Circuit.read_port_ids)
    (Circuit.memories ctx.c);
  List.iter
    (fun (r : Circuit.register) ->
      match r.Circuit.reset with
      | Some rst -> pin rst.Circuit.reset_signal
      | None -> ())
    (Circuit.registers ctx.c);
  let candidates = ref [] in
  Circuit.iter_nodes ctx.c (fun n ->
      match n.Circuit.kind with
      | (Circuit.Input | Circuit.Logic)
        when n.Circuit.width > 1 && not (Hashtbl.mem pinned n.Circuit.id) ->
        candidates := (n.Circuit.id, n.Circuit.width) :: !candidates
      | _ -> ());
  let candidates =
    List.sort (fun (_, a) (_, b) -> compare b a) !candidates
  in
  let progressed = ref false in
  List.iter
    (fun (id, _) ->
      let try_width w' =
        match Circuit.node_opt ctx.c id with
        | Some n when n.Circuit.width > w' && w' >= 1 -> (
          match
            copy_with ctx (fun cc -> narrow cc id w')
          with
          | exception _ -> false
          | cc ->
            let steps' = retruncate_steps cc ctx.steps in
            if test ctx cc steps' then begin
              ctx.c <- cc;
              ctx.steps <- steps';
              true
            end
            else false)
        | _ -> false
      in
      if try_width 1 then progressed := true
      else begin
        let w = (Circuit.node ctx.c id).Circuit.width in
        if w > 2 && try_width (w / 2) then progressed := true
      end)
    candidates;
  !progressed

(* -------------------------------------------------------------------- *)
(* Reachability trim                                                    *)

(* Unlike the Dce pass — which is itself under test and must never be
   part of the shrinking loop — this is an independent mark-and-sweep
   from the output marks, pulling in register next/reset cones and the
   write ports of memories with live read ports. *)
let build_trimmed c (steps : Oracle.step array) =
  let cc = Circuit.copy c in
  let live = Hashtbl.create 64 in
  let live_mems = Hashtbl.create 4 in
  let queue = Queue.create () in
  let add id =
    if not (Hashtbl.mem live id) then begin
      Hashtbl.replace live id ();
      Queue.add id queue
    end
  in
  List.iter (fun (n : Circuit.node) -> add n.Circuit.id) (Circuit.outputs cc);
  while not (Queue.is_empty queue) do
    let id = Queue.pop queue in
    match Circuit.node_opt cc id with
    | None -> ()
    | Some n ->
      (match n.Circuit.expr with
       | Some e -> List.iter add (Expr.vars e)
       | None -> ());
      (match n.Circuit.kind with
       | Circuit.Reg_read _ | Circuit.Reg_next _ -> (
         match Circuit.register_of_node cc id with
         | Some r ->
           add r.Circuit.read;
           add r.Circuit.next;
           (match r.Circuit.reset with
            | Some rst -> add rst.Circuit.reset_signal
            | None -> ())
         | None -> ())
       | Circuit.Mem_read pi ->
         let p = Circuit.read_port cc pi in
         add p.Circuit.r_addr;
         Option.iter add p.Circuit.r_en;
         if not (Hashtbl.mem live_mems p.Circuit.r_mem) then begin
           Hashtbl.replace live_mems p.Circuit.r_mem ();
           let m = Circuit.memory cc p.Circuit.r_mem in
           List.iter
             (fun (w : Circuit.write_port) ->
               add w.Circuit.w_addr;
               add w.Circuit.w_data;
               add w.Circuit.w_en)
             m.Circuit.write_ports
         end
       | Circuit.Input | Circuit.Logic -> ())
  done;
  List.iter
    (fun (r : Circuit.register) ->
      if not (Hashtbl.mem live r.Circuit.read) then Circuit.delete_register cc r)
    (Circuit.registers cc);
  Array.iteri
    (fun mi (m : Circuit.memory) ->
      let live_ports, dead_ports =
        List.partition (fun id -> Hashtbl.mem live id) m.Circuit.read_port_ids
      in
      List.iter (fun id -> Circuit.delete_node cc id) dead_ports;
      m.Circuit.read_port_ids <- live_ports;
      if not (Hashtbl.mem live_mems mi) then m.Circuit.write_ports <- [])
    (Circuit.memories cc);
  Circuit.iter_nodes cc (fun n ->
      match n.Circuit.kind with
      | Circuit.Input | Circuit.Logic ->
        if not (Hashtbl.mem live n.Circuit.id) then
          Circuit.delete_node cc n.Circuit.id
      | _ -> ());
  let steps' =
    Array.map
      (fun (s : Oracle.step) ->
        { Oracle.pokes =
            List.filter (fun (id, _) -> Circuit.node_opt cc id <> None) s.Oracle.pokes;
          actions =
            List.filter
              (fun a ->
                let target =
                  match a with
                  | Oracle.Force { target; _ } -> target
                  | Oracle.Release target -> target
                in
                Circuit.node_opt cc target <> None)
              s.Oracle.actions
        })
      steps
  in
  (cc, steps')

let shrink_trim ctx =
  match build_trimmed ctx.c ctx.steps with
  | exception _ -> false
  | cc, steps' ->
    if Circuit.node_count cc < Circuit.node_count ctx.c
       && test ctx cc steps'
    then begin
      ctx.c <- cc;
      ctx.steps <- steps';
      true
    end
    else false

(* -------------------------------------------------------------------- *)

let remap_steps map (steps : Oracle.step array) =
  Array.map
    (fun (s : Oracle.step) ->
      { Oracle.pokes = List.map (fun (id, v) -> (map.(id), v)) s.Oracle.pokes;
        actions =
          List.map
            (function
              | Oracle.Force { target; mask; value } ->
                Oracle.Force { target = map.(target); mask; value }
              | Oracle.Release id -> Oracle.Release map.(id))
            s.Oracle.actions
      })
    steps

type result = {
  circuit : Circuit.t;
  steps : Oracle.step array;
  checks_used : int;
}

let run ?(budget = 400) ~check circuit steps =
  let ctx =
    { check; checks_left = budget; c = Circuit.copy circuit; steps }
  in
  let transforms =
    [ shrink_tail; shrink_outputs; shrink_trim; shrink_memories;
      shrink_registers; shrink_cycles; shrink_pokes; shrink_logic;
      shrink_vars; shrink_trim; shrink_widths; shrink_trim ]
  in
  let rounds = ref 0 in
  let progressed = ref true in
  while !progressed && !rounds < 3 && ctx.checks_left > 0 do
    progressed :=
      List.fold_left (fun acc t -> let p = t ctx in acc || p) false transforms;
    incr rounds
  done;
  (* dense renumbering for a readable repro; kept only if the failure
     survives it (it should — compaction is pure renaming) *)
  let compacted = Circuit.copy ctx.c in
  let map = Circuit.compact compacted in
  ctx.checks_left <- max ctx.checks_left 1;
  (match remap_steps map ctx.steps with
   | steps' when test ctx compacted steps' ->
     ctx.c <- compacted;
     ctx.steps <- steps'
   | _ | (exception _) -> ());
  { circuit = ctx.c; steps = ctx.steps; checks_used = budget - max ctx.checks_left 0 }
