(** Pass-pipeline and engine/backend bisection.

    Given a failing (circuit, subject) pair, decide {e what} to blame:

    - test the subject's engine at O0 on the unoptimized circuit — if it
      already fails, the pass pipeline is innocent: flip the evaluation
      backend; if the failure disappears it is [Guilty_backend],
      otherwise [Guilty_engine];
    - otherwise replay the failing level's exact stage plan
      ({!Gsim_passes.Pipeline.plan}, same fixpoint bounds) one pass
      application at a time on a private copy, re-running the O0 subject
      after every application that rewrote something.  The first
      application after which the failure class appears names the
      [Guilty_pass]. *)

open Gsim_ir

type culprit =
  | Guilty_pass of { pass : string; application : int }
      (** [application] counts pass applications across the whole
          linearized plan, starting at 1. *)
  | Guilty_backend of string
  | Guilty_engine of string
  | Inconclusive of string

val culprit_token : culprit -> string
(** Stable bucket key: ["pass:simplify"], ["backend:bytecode"],
    ["engine:gsim"] or ["unknown"]. *)

val culprit_to_string : culprit -> string

val run :
  level:Gsim_passes.Pipeline.level ->
  engine_name:string ->
  backend_name:string ->
  ?test_alt:(Circuit.t -> bool) ->
  test:(Circuit.t -> bool) ->
  Circuit.t ->
  culprit
(** [test] runs the failing engine+backend at O0 on the given circuit and
    reports whether the failure reproduces; [test_alt] is the same with
    the other backend.  Neither may mutate the circuit. *)
