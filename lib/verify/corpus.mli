(** Crash-safe persistent fuzz corpus ([fuzz.db]).

    Append-only text, same discipline as the fault-campaign database:
    the header and already-known records are written once, each finished
    case is appended as one flushed line, and a killed campaign leaves at
    worst a torn final line that a lenient reload skips ([--resume] then
    re-runs that case).  Shards fuzzing disjoint case ranges of the same
    seed can be combined with {!merge}. *)

type finding = {
  f_subject : string;       (** setup name, e.g. ["gsim+bytecode"] *)
  f_kind : string;          (** ["mismatch"] / ["crash"] / ["hang"] *)
  f_culprit : string;       (** {!Bisect.culprit_token} *)
  f_nodes : int;            (** shrunk circuit size *)
  f_cycles : int;           (** shrunk stimulus length *)
  f_repro : string option;  (** repro filename; [None] when deduplicated *)
}

type entry = Ok | Fail of finding

type t = { mutable seed : int; cases : (int, entry) Hashtbl.t }

val create : ?seed:int -> unit -> t
val bucket_of : finding -> string

val add : t -> int -> entry -> unit
(** Idempotent; raises [Failure] on a conflicting duplicate. *)

val mem : t -> int -> bool
val find : t -> int -> entry option
val count : t -> int
val iter : t -> (int -> entry -> unit) -> unit
val failures : t -> (int * finding) list

type bucket_stats = {
  b_bucket : string;
  b_count : int;
  b_min_nodes : int;
  b_min_cycles : int;
  b_repro : string option;
}

val buckets : t -> bucket_stats list

val merge : t -> t -> t
(** Raises [Failure] on seed mismatch or conflicting case records. *)

val to_string : t -> string
val of_string : ?lenient:bool -> string -> t
val equal : t -> t -> bool
val save : string -> t -> unit
val load : ?lenient:bool -> string -> t

val init_file : string -> t -> unit
val append_record : string -> int -> entry -> unit
