open Gsim_ir
module Pass = Gsim_passes.Pass
module Pipeline = Gsim_passes.Pipeline

type culprit =
  | Guilty_pass of { pass : string; application : int }
  | Guilty_backend of string
  | Guilty_engine of string
  | Inconclusive of string

let culprit_token = function
  | Guilty_pass { pass; _ } -> "pass:" ^ pass
  | Guilty_backend b -> "backend:" ^ b
  | Guilty_engine e -> "engine:" ^ e
  | Inconclusive _ -> "unknown"

let culprit_to_string = function
  | Guilty_pass { pass; application } ->
    Printf.sprintf "pass %s (application %d)" pass application
  | Guilty_backend b -> Printf.sprintf "backend %s" b
  | Guilty_engine e -> Printf.sprintf "engine %s" e
  | Inconclusive why -> Printf.sprintf "inconclusive (%s)" why

(* [test] must run the failing subject's engine+backend at O0 on the given
   circuit (no further optimization) and report whether the recorded
   failure class reproduces; it must not mutate the circuit.  [test_alt]
   is the same engine with the other evaluation backend.

   If the unoptimized circuit already fails, the pipeline is innocent and
   the blame splits between backend and engine.  Otherwise we replay the
   exact stage plan the failing opt level runs ({!Pipeline.plan}, same
   fixpoint bounds), re-testing after every pass application that rewrote
   something; the first application after which the failure appears is the
   culprit. *)
let run ~level ~engine_name ~backend_name ?test_alt ~test circuit =
  if test circuit then
    match test_alt with
    | Some test_alt ->
      if test_alt circuit then Guilty_engine engine_name
      else Guilty_backend backend_name
    | None -> Guilty_engine engine_name
  else begin
    let work = Circuit.copy circuit in
    let app = ref 0 in
    let result = ref None in
    (try
       List.iter
         (fun (stage : Pipeline.stage) ->
           let rounds = ref 0 in
           let stage_done = ref false in
           while (not !stage_done) && !rounds < stage.Pipeline.stage_max_rounds do
             let changed = ref false in
             List.iter
               (fun (p : Pass.t) ->
                 if !result = None then begin
                   let o = Pass.apply p work in
                   incr app;
                   if o.Pass.rewrites > 0 then begin
                     changed := true;
                     if test work then
                       result :=
                         Some
                           (Guilty_pass
                              { pass = p.Pass.pass_name; application = !app })
                   end
                 end)
               stage.Pipeline.stage_passes;
             Circuit.validate work;
             incr rounds;
             if (not !changed) || !result <> None then stage_done := true
           done)
         (Pipeline.plan level)
     with e ->
       result :=
         Some (Inconclusive ("bisection crashed: " ^ Printexc.to_string e)));
    match !result with
    | Some r -> r
    | None ->
      Inconclusive
        "failure did not reproduce under the linearized pipeline replay"
  end
