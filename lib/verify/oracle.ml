module Bits = Gsim_bits.Bits
module Sim = Gsim_engine.Sim
module Counters = Gsim_engine.Counters
open Gsim_ir

type action =
  | Force of { target : int; mask : Bits.t option; value : Bits.t }
  | Release of int

type step = { pokes : (int * Bits.t) list; actions : action list }

let steps_of_stimulus stimulus =
  Array.map (fun pokes -> { pokes; actions = [] }) stimulus

type mismatch = {
  at_cycle : int;
  node_id : int;
  node_name : string;
  expected : Bits.t;
  got : Bits.t;
}

type failure =
  | Mismatch of mismatch
  | Crash of string
  | Hang of float

type subject = {
  subject_name : string;
  build : Circuit.t -> Sim.t * (unit -> unit);
}

type outcome = {
  o_subject : string;
  o_failure : failure option;
  o_counters : Counters.t option;
}

let failure_kind = function
  | Mismatch _ -> "mismatch"
  | Crash _ -> "crash"
  | Hang _ -> "hang"

let same_class a b = String.equal (failure_kind a) (failure_kind b)

let failure_to_string = function
  | Mismatch m ->
    Format.asprintf "mismatch at cycle %d on %S (node %d): expected %a, got %a"
      m.at_cycle m.node_name m.node_id Bits.pp m.expected Bits.pp m.got
  | Crash msg -> Printf.sprintf "crash: %s" msg
  | Hang secs -> Printf.sprintf "hang: watchdog tripped after %.1fs" secs

let apply_step (sim : Sim.t) step =
  List.iter (fun (id, v) -> sim.Sim.poke id v) step.pokes;
  List.iter
    (function
      | Force { target; mask; value } -> sim.Sim.force ?mask target value
      | Release id -> sim.Sim.release id)
    step.actions;
  sim.Sim.step ()

(* The reference trace: the interpreter is the semantic ground truth every
   subject is compared against.  Raises if the reference itself cannot run
   the circuit (e.g. a combinational cycle) — callers treat that as "not a
   valid test case", never as an engine failure. *)
let reference_trace ?prepare circuit steps observe : Bits.t list array =
  let sim = Sim.of_reference (Reference.create (Circuit.copy circuit)) in
  (match prepare with Some f -> f sim | None -> ());
  Array.map
    (fun step ->
      apply_step sim step;
      List.map (fun id -> sim.Sim.peek id) observe)
    steps

let run_subject ~watchdog ?prepare circuit steps observe expected subject =
  match subject.build (Circuit.copy circuit) with
  | exception e ->
    { o_subject = subject.subject_name;
      o_failure = Some (Crash ("build: " ^ Printexc.to_string e));
      o_counters = None }
  | sim, cleanup ->
    Fun.protect
      ~finally:(fun () -> try cleanup () with _ -> ())
      (fun () ->
        let failure = ref None in
        (try
           (match prepare with Some f -> f sim | None -> ());
           let start = Unix.gettimeofday () in
           let i = ref 0 in
           let n = Array.length steps in
           while !failure = None && !i < n do
             apply_step sim steps.(!i);
             (* first divergent observed node wins *)
             List.iter2
               (fun id want ->
                 if !failure = None then begin
                   let got = sim.Sim.peek id in
                   if not (Bits.equal want got) then
                     failure :=
                       Some
                         (Mismatch
                            { at_cycle = !i;
                              node_id = id;
                              node_name = (Circuit.node circuit id).Circuit.name;
                              expected = want;
                              got })
                 end)
               observe expected.(!i);
             let elapsed = Unix.gettimeofday () -. start in
             if !failure = None && elapsed > watchdog then
               failure := Some (Hang elapsed);
             incr i
           done
         with e -> failure := Some (Crash (Printexc.to_string e)));
        let counters = try Some (sim.Sim.counters ()) with _ -> None in
        { o_subject = subject.subject_name;
          o_failure = !failure;
          o_counters = counters })

let default_observe circuit =
  List.map (fun (n : Circuit.node) -> n.Circuit.id) (Circuit.outputs circuit)

let run ?(watchdog = 10.0) ?observe ?prepare circuit steps subjects =
  let observe =
    match observe with Some o -> o | None -> default_observe circuit
  in
  let expected = reference_trace ?prepare circuit steps observe in
  List.map (run_subject ~watchdog ?prepare circuit steps observe expected) subjects

let run_against ?(watchdog = 10.0) ?prepare ~observe ~expected circuit steps
    subjects =
  List.map (run_subject ~watchdog ?prepare circuit steps observe expected) subjects

let first_failure outcomes =
  List.find_map
    (fun o ->
      match o.o_failure with
      | Some f -> Some (o.o_subject, f)
      | None -> None)
    outcomes
