(* The fuzz campaign's persistent corpus: one record per explored case,
   same crash-safe discipline as the fault campaign db (lib/fault/db.ml):
   an initial canonical write, flushed single-line appends while running,
   lenient reload tolerating a torn final line, and a canonical sorted
   rewrite at the end.

   fuzzdb 1
   seed <n>
   case <idx> ok
   case <idx> fail <subject> <kind> <culprit> <nodes> <cycles> <repro|->  *)

type finding = {
  f_subject : string;
  f_kind : string;        (* mismatch | crash | hang *)
  f_culprit : string;     (* Bisect.culprit_token *)
  f_nodes : int;          (* shrunk circuit size *)
  f_cycles : int;         (* shrunk stimulus length *)
  f_repro : string option; (* repro filename; None when deduplicated *)
}

type entry = Ok | Fail of finding

type t = { mutable seed : int; cases : (int, entry) Hashtbl.t }

let create ?(seed = 0) () = { seed; cases = Hashtbl.create 256 }

let bucket_of f = f.f_culprit ^ "|" ^ f.f_kind

let add t idx entry =
  match Hashtbl.find_opt t.cases idx with
  | Some existing when existing <> entry ->
    Printf.ksprintf failwith "fuzzdb: conflicting records for case %d" idx
  | Some _ -> ()
  | None -> Hashtbl.replace t.cases idx entry

let mem t idx = Hashtbl.mem t.cases idx
let find t idx = Hashtbl.find_opt t.cases idx
let count t = Hashtbl.length t.cases

let iter t f =
  Hashtbl.fold (fun k e acc -> (k, e) :: acc) t.cases []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
  |> List.iter (fun (k, e) -> f k e)

let failures t =
  let acc = ref [] in
  iter t (fun idx -> function Ok -> () | Fail f -> acc := (idx, f) :: !acc);
  List.rev !acc

type bucket_stats = {
  b_bucket : string;
  b_count : int;
  b_min_nodes : int;
  b_min_cycles : int;
  b_repro : string option;  (* the representative (first recorded) repro *)
}

let buckets t =
  let tbl = Hashtbl.create 8 in
  iter t (fun _ -> function
    | Ok -> ()
    | Fail f ->
      let key = bucket_of f in
      let cur =
        match Hashtbl.find_opt tbl key with
        | Some s -> s
        | None ->
          { b_bucket = key; b_count = 0; b_min_nodes = max_int;
            b_min_cycles = max_int; b_repro = None }
      in
      Hashtbl.replace tbl key
        { cur with
          b_count = cur.b_count + 1;
          b_min_nodes = min cur.b_min_nodes f.f_nodes;
          b_min_cycles = min cur.b_min_cycles f.f_cycles;
          b_repro = (match cur.b_repro with Some _ as r -> r | None -> f.f_repro)
        });
  Hashtbl.fold (fun _ s acc -> s :: acc) tbl []
  |> List.sort (fun a b -> compare a.b_bucket b.b_bucket)

let merge a b =
  if a.seed <> 0 && b.seed <> 0 && a.seed <> b.seed then
    Printf.ksprintf failwith "fuzzdb: seed mismatch (%d vs %d)" a.seed b.seed;
  let t = create ~seed:(max a.seed b.seed) () in
  Hashtbl.iter (fun k e -> add t k e) a.cases;
  Hashtbl.iter (fun k e -> add t k e) b.cases;
  t

(* --- Text format -------------------------------------------------------- *)

let entry_line idx = function
  | Ok -> Printf.sprintf "case %d ok\n" idx
  | Fail f ->
    Printf.sprintf "case %d fail %s %s %s %d %d %s\n" idx f.f_subject f.f_kind
      f.f_culprit f.f_nodes f.f_cycles
      (match f.f_repro with Some r -> r | None -> "-")

let to_string t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "fuzzdb 1\n";
  Buffer.add_string buf (Printf.sprintf "seed %d\n" t.seed);
  iter t (fun idx e -> Buffer.add_string buf (entry_line idx e));
  Buffer.contents buf

let equal a b = to_string a = to_string b

let parse_line t line =
  let fail () = Printf.ksprintf failwith "fuzzdb: bad line %S" line in
  let int s = match int_of_string_opt s with Some n -> n | None -> fail () in
  match String.split_on_char ' ' (String.trim line) with
  | [ "seed"; n ] -> t.seed <- int n
  | [ "case"; idx; "ok" ] -> add t (int idx) Ok
  | [ "case"; idx; "fail"; subject; kind; culprit; nodes; cycles; repro ] ->
    add t (int idx)
      (Fail
         { f_subject = subject;
           f_kind = kind;
           f_culprit = culprit;
           f_nodes = int nodes;
           f_cycles = int cycles;
           f_repro = (if repro = "-" then None else Some repro) })
  | _ -> fail ()

let of_string ?(lenient = false) s =
  let lines =
    String.split_on_char '\n' s |> List.filter (fun l -> String.trim l <> "")
  in
  match lines with
  | header :: rest when String.trim header = "fuzzdb 1" ->
    let t = create () in
    let n = List.length rest in
    List.iteri
      (fun i line ->
        try parse_line t line
        with Failure _ when lenient && i = n - 1 ->
          (* torn final append from a killed campaign; the case re-runs *)
          ())
      rest;
    t
  | _ -> failwith "fuzzdb: missing header"

let save path t =
  let oc = open_out path in
  output_string oc (to_string t);
  close_out oc

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

let load ?lenient path = of_string ?lenient (read_file path)

let init_file path t =
  let oc = open_out path in
  output_string oc (to_string t);
  close_out oc

let append_record path idx entry =
  let oc = open_out_gen [ Open_wronly; Open_append; Open_creat ] 0o644 path in
  output_string oc (entry_line idx entry);
  flush oc;
  close_out oc
