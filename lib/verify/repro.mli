(** Replayable fuzz-failure reports ([fuzz-NNN.rpt]).

    One file is written per fresh failure bucket: line-oriented metadata
    (seed, case, subject, failure signature, culprit, shrunk sizes), the
    shrunk stimulus by node {e name}, and — after a [circuit] marker —
    the exact {!Gsim_ir.Ir_text} serialization of the shrunk circuit, so
    [gsim fuzz replay] can rebuild and re-run the case bit-identically
    with no other inputs. *)

module Bits = Gsim_bits.Bits
open Gsim_ir

type poke = { p_node : string; p_value : Bits.t }

type act =
  | A_force of { f_node : string; f_mask : Bits.t option; f_value : Bits.t }
  | A_release of string

type t = {
  seed : int;
  case : int;
  subject : string;
  level : string;
  kind : string;
  at_cycle : int option;
  node : string option;
  expected : Bits.t option;
  got : Bits.t option;
  message : string;
  culprit : string;
  culprit_detail : string;
  bucket : string;
  nodes : int;
  cycles : int;
  trace : (int * poke list * act list) list;
  circuit_text : string;
}

val signature : t -> string
(** What replay must reproduce: ["mismatch:<node>@<cycle>"], ["crash"] or
    ["hang"]. *)

val of_failure :
  seed:int ->
  case:int ->
  subject:string ->
  level:string ->
  culprit:Bisect.culprit ->
  Circuit.t ->
  Oracle.step array ->
  Oracle.failure ->
  t
(** Record a (shrunk) failing case.  Node ids in [steps] and [failure]
    must refer to the given circuit. *)

val rebuild : t -> Circuit.t * Oracle.step array
(** Reconstruct the circuit and stimulus; raises [Failure] on a corrupt
    file. *)

val to_string : t -> string
val of_string : string -> t
val save : string -> t -> unit
(** Atomic: tmp + rename. *)

val load : string -> t
