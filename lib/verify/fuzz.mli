(** Differential fuzz campaigns.

    A campaign draws seeded random circuits and stimulus
    ({!Gsim_ir.Rand_circuit}), runs them through every configured engine
    preset x evaluation backend in lockstep against the reference
    interpreter ({!Oracle}), and on the first divergence per case:
    delta-debugs the circuit and stimulus to a minimal failing pair
    ({!Shrink}), bisects the pass pipeline and engine/backend matrix to
    name the culprit ({!Bisect}), and records a replayable repro report
    ({!Repro}) — one per failure bucket — plus a crash-safe corpus entry
    ({!Corpus}).

    Determinism: case [i] of seed [s] always generates the same circuit
    and stimulus ([Random.State.make [|s; i; _|]]), independent of which
    other cases ran, so interrupted campaigns resume exactly and shards
    over disjoint case ranges can be merged. *)

open Gsim_ir

type setup = {
  s_name : string;                    (** ["<engine>+<backend>"] *)
  s_engine : string;                  (** preset: verilator/arcilator/essent/gsim *)
  s_backend : Gsim_engine.Eval.backend;
  s_level : Gsim_passes.Pipeline.level;
}

val default_setups : setup list
(** All four presets x both backends (8 subjects). *)

val setup_of_name : ?level:Gsim_passes.Pipeline.level -> string -> setup
(** Parse ["gsim+bytecode"]; level defaults to the preset's. *)

val subject_of_setup :
  ?level:Gsim_passes.Pipeline.level -> ?forcible:int list -> setup -> Oracle.subject
(** An oracle subject that instantiates the setup's full pipeline+engine
    on the circuit and translates ids through the instantiation map, so
    the oracle can keep speaking original node ids. *)

type campaign = {
  seed : int;
  cases : int;                (** case indices [[start_case, start_case+cases)] *)
  start_case : int;
  seconds : float option;     (** wall-clock budget for the whole campaign *)
  cycles : int;
  gen : Rand_circuit.config;
  setups : setup list;
  watchdog : float;           (** per-subject, per-case *)
  shrink_budget : int;
  dir : string;               (** corpus + repro output directory *)
  inject_miscompile : bool;
      (** CI canary: enable {!Gsim_passes.Simplify.test_miscompile} for
          the duration of the run. *)
}

val default_campaign : campaign

val with_miscompile : bool -> (unit -> 'a) -> 'a
(** Run with the test-only Simplify miscompile enabled; always restores. *)

type diagnosis = {
  d_circuit : Circuit.t;
  d_steps : Oracle.step array;
  d_failure : Oracle.failure;
  d_culprit : Bisect.culprit;
  d_checks : int;
}

val diagnose :
  watchdog:float ->
  shrink_budget:int ->
  setup ->
  Circuit.t ->
  Oracle.step array ->
  Oracle.failure ->
  diagnosis
(** Shrink then bisect one failing (circuit, stimulus, subject) triple —
    also usable directly by tests that found a failure elsewhere. *)

type result = {
  db : Corpus.t;
  ran : int;
  skipped : int;
  out_of_time : bool;
}

val run : ?resume:bool -> ?log:(string -> unit) -> campaign -> result
(** Runs (or resumes) a campaign; maintains [<dir>/fuzz.db] crash-safely
    and writes [fuzz-NNN.rpt] for the first case of each failure bucket. *)

type replay_result = {
  rp_repro : Repro.t;
  rp_expected_signature : string;
  rp_actual : string;
  rp_reproduced : bool;
}

val replay :
  ?watchdog:float -> ?inject_miscompile:bool -> string -> replay_result
(** Rebuild a repro file and re-run its subject; reproduced when the
    recorded failure signature recurs.  Repros recorded under the canary
    need [~inject_miscompile:true]. *)

val failure_signature : Circuit.t -> Oracle.failure -> string

val report_text : Corpus.t -> string
val report_json : Corpus.t -> string
