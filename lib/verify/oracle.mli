(** The single differential-checking code path.

    Every equivalence check in the project — the fuzzer, the torture
    tests, the bytecode/closure comparison — runs a circuit and a
    stimulus through a list of {e subjects} (engine configurations) in
    lockstep against the {!Gsim_ir.Reference} interpreter and reports the
    first divergence per subject:

    - [Mismatch] — an observed node differs from the reference;
    - [Crash]    — the subject raised while building or stepping;
    - [Hang]     — the per-subject wall-clock watchdog tripped (checked
      between cycles; a single cycle cannot be preempted).

    Subjects receive a private copy of the circuit, so oracle runs never
    mutate the input and can be repeated (shrinking re-runs the same
    check hundreds of times). *)

module Bits = Gsim_bits.Bits
module Sim = Gsim_engine.Sim
module Counters = Gsim_engine.Counters
open Gsim_ir

type action =
  | Force of { target : int; mask : Bits.t option; value : Bits.t }
  | Release of int

type step = { pokes : (int * Bits.t) list; actions : action list }

val steps_of_stimulus : (int * Bits.t) list array -> step array
(** Wrap a plain poke stimulus (e.g. {!Gsim_ir.Rand_circuit.random_stimulus})
    as actionless steps. *)

type mismatch = {
  at_cycle : int;
  node_id : int;             (** in the circuit handed to {!run} *)
  node_name : string;
  expected : Bits.t;
  got : Bits.t;
}

type failure =
  | Mismatch of mismatch
  | Crash of string
  | Hang of float            (** seconds elapsed when the watchdog fired *)

val failure_kind : failure -> string
(** ["mismatch"], ["crash"] or ["hang"]. *)

val same_class : failure -> failure -> bool
(** Same {!failure_kind} — the equivalence the shrinker preserves. *)

val failure_to_string : failure -> string

type subject = {
  subject_name : string;
  build : Circuit.t -> Sim.t * (unit -> unit);
      (** Build a simulator for (a private copy of) the circuit; the
          second component is the cleanup ([Gsim.compiled.destroy]).
          Node ids in the returned [Sim.t] must be {e original} ids —
          wrap [Gsim.instantiate]'s sim through its [id_map]
          (see {!Fuzz.subject_of_setup}). *)
}

type outcome = {
  o_subject : string;
  o_failure : failure option;
  o_counters : Counters.t option;
      (** Engine counters after the run; [None] if the sim died. *)
}

val default_observe : Circuit.t -> int list
(** The circuit's output-marked nodes. *)

val run :
  ?watchdog:float ->
  ?observe:int list ->
  ?prepare:(Sim.t -> unit) ->
  Circuit.t ->
  step array ->
  subject list ->
  outcome list
(** [run c steps subjects] computes the reference trace of [observe]
    (default: the outputs) over [steps], then replays each subject in
    lockstep, stopping it at its first failure.  [prepare] runs once per
    simulator before the first step (program/memory loading).  Default
    watchdog: 10 seconds per subject.

    Raises only if the {e reference} cannot run the circuit. *)

val reference_trace :
  ?prepare:(Sim.t -> unit) ->
  Circuit.t ->
  step array ->
  int list ->
  Bits.t list array
(** The interpreter's values of the observed nodes after each step. *)

val run_against :
  ?watchdog:float ->
  ?prepare:(Sim.t -> unit) ->
  observe:int list ->
  expected:Bits.t list array ->
  Circuit.t ->
  step array ->
  subject list ->
  outcome list
(** Like {!run} but against an externally captured expected trace.  This
    is what pipeline bisection needs: a pass-transformed circuit must be
    compared against the {e original} circuit's reference trace — a
    reference re-run on the transformed circuit would faithfully execute
    the miscompiled graph and mask the bug.  [observe] ids must be valid
    in both (inputs and output-marked nodes keep their ids through the
    pipeline). *)

val first_failure : outcome list -> (string * failure) option
