module Bits = Gsim_bits.Bits
module Sim = Gsim_engine.Sim
module Eval = Gsim_engine.Eval
module Pipeline = Gsim_passes.Pipeline
module Gsim = Gsim_core.Gsim
open Gsim_ir

(* ------------------------------------------------------------------ *)
(* Setups: the engine preset x backend matrix under test               *)

type setup = {
  s_name : string;                    (* "<engine>+<backend>" *)
  s_engine : string;                  (* preset name *)
  s_backend : Eval.backend;
  s_level : Pipeline.level;
}

let preset_of_engine = function
  | "verilator" -> Gsim.verilator ()
  | "arcilator" -> Gsim.arcilator
  | "essent" -> Gsim.essent
  | "gsim" -> Gsim.gsim
  | e -> Printf.ksprintf failwith "fuzz: unknown engine preset %S" e

let setup_of_name ?level name =
  match String.split_on_char '+' name with
  | [ engine; backend ] -> (
    match Eval.of_string backend with
    | Some b ->
      let preset = preset_of_engine engine in
      { s_name = name;
        s_engine = engine;
        s_backend = b;
        s_level = Option.value level ~default:preset.Gsim.opt_level }
    | None -> Printf.ksprintf failwith "fuzz: unknown backend in %S" name)
  | _ -> Printf.ksprintf failwith "fuzz: bad setup name %S (want engine+backend)" name

(* The native backend joins the sweep only when a C compiler is present
   (two presets are enough: full-cycle covers the plan path, gsim the
   per-node activity path).  Without [cc] the matrix shrinks cleanly
   rather than filling the campaign with fallback-degraded subjects. *)
let default_setups =
  let make engine backend =
    let preset = preset_of_engine engine in
    { s_name = Printf.sprintf "%s+%s" engine (Eval.to_string backend);
      s_engine = engine;
      s_backend = backend;
      s_level = preset.Gsim.opt_level }
  in
  List.concat_map
    (fun engine -> List.map (make engine) [ `Bytecode; `Closures ])
    [ "verilator"; "arcilator"; "essent"; "gsim" ]
  @ (if Gsim_engine.Native.available () then
       [ make "verilator" `Native; make "gsim" `Native ]
     else [])

let setup_config ?level s =
  let preset = preset_of_engine s.s_engine in
  { preset with
    Gsim.config_name = s.s_name;
    backend = s.s_backend;
    opt_level = Option.value level ~default:s.s_level }

(* Engines run the optimized circuit; the oracle speaks original node
   ids.  Translate through the instantiation id map. *)
let wrap_compiled (compiled : Gsim.compiled) : Sim.t =
  let m = compiled.Gsim.id_map in
  let tr id =
    if id >= 0 && id < Array.length m && m.(id) >= 0 then m.(id)
    else Printf.ksprintf failwith "fuzz: node %d was optimized away" id
  in
  let sim = compiled.Gsim.sim in
  { sim with
    Sim.poke = (fun id v -> sim.Sim.poke (tr id) v);
    peek = (fun id -> sim.Sim.peek (tr id));
    write_reg = (fun id v -> sim.Sim.write_reg (tr id) v);
    force = (fun ?mask id v -> sim.Sim.force ?mask (tr id) v);
    release = (fun id -> sim.Sim.release (tr id)) }

let subject_of_setup ?level ?(forcible = []) s =
  { Oracle.subject_name = s.s_name;
    build =
      (fun c ->
        let compiled = Gsim.instantiate ~forcible (setup_config ?level s) c in
        (wrap_compiled compiled, compiled.Gsim.destroy)) }

(* ------------------------------------------------------------------ *)
(* Campaign configuration                                              *)

type campaign = {
  seed : int;
  cases : int;                (* case indices [start_case, start_case+cases) *)
  start_case : int;
  seconds : float option;     (* wall-clock budget for the whole campaign *)
  cycles : int;               (* stimulus length per case *)
  gen : Rand_circuit.config;
  setups : setup list;
  watchdog : float;
  shrink_budget : int;
  dir : string;
  inject_miscompile : bool;   (* test-only canary: Simplify.test_miscompile *)
}

let default_campaign =
  { seed = 1;
    cases = 200;
    start_case = 0;
    seconds = None;
    cycles = 12;
    gen = Rand_circuit.default_config;
    setups = default_setups;
    watchdog = 10.0;
    shrink_budget = 400;
    dir = "fuzz-out";
    inject_miscompile = false }

let with_miscompile enabled f =
  if not enabled then f ()
  else begin
    let saved = !Gsim_passes.Simplify.test_miscompile in
    Gsim_passes.Simplify.test_miscompile := true;
    Fun.protect
      ~finally:(fun () -> Gsim_passes.Simplify.test_miscompile := saved)
      f
  end

(* Deterministic per-case variety: cycle through circuit shapes so one
   campaign covers narrow/wide, with/without memory, small/large. *)
let vary_gen base idx =
  let sizes = [| 12; 24; 40; 64 |] in
  let widths = [| 8; 16; 33; 70 |] in
  { base with
    Rand_circuit.logic_nodes = sizes.(idx mod 4);
    num_registers = 2 + (idx mod 5);
    max_width = widths.((idx / 4) mod 4);
    with_memory = idx mod 3 <> 2 }

(* ------------------------------------------------------------------ *)
(* Diagnosis: shrink, then bisect                                      *)

type diagnosis = {
  d_circuit : Circuit.t;             (* shrunk, compacted *)
  d_steps : Oracle.step array;
  d_failure : Oracle.failure;        (* on the shrunk pair *)
  d_culprit : Bisect.culprit;
  d_checks : int;
}

let single_outcome = function
  | [ { Oracle.o_failure; _ } ] -> o_failure
  | _ -> None

let diagnose ~watchdog ~shrink_budget setup circuit steps failure =
  let subj = subject_of_setup setup in
  let check c s =
    try
      match single_outcome (Oracle.run ~watchdog c s [ subj ]) with
      | Some f -> Oracle.same_class f failure
      | None -> false
    with _ -> false
  in
  let sh = Shrink.run ~budget:shrink_budget ~check circuit steps in
  let final_failure =
    try
      match
        single_outcome (Oracle.run ~watchdog sh.Shrink.circuit sh.Shrink.steps [ subj ])
      with
      | Some f -> f
      | None -> failure
    with _ -> failure
  in
  (* Bisection tests every candidate against the ORIGINAL (shrunk,
     unoptimized) reference trace — see Oracle.run_against. *)
  let observe = Oracle.default_observe sh.Shrink.circuit in
  let expected =
    try Some (Oracle.reference_trace sh.Shrink.circuit sh.Shrink.steps observe)
    with _ -> None
  in
  let test_with s c =
    match expected with
    | None -> false
    | Some expected -> (
      try
        match
          single_outcome
            (Oracle.run_against ~watchdog ~observe ~expected c sh.Shrink.steps
               [ subject_of_setup ~level:Pipeline.O0 s ])
        with
        | Some f -> Oracle.same_class f failure
        | None -> false
      with _ -> false)
  in
  let alt_backend =
    (* The bisection's alternate must dodge the suspect layer entirely,
       so every compiled backend flips to closures. *)
    match setup.s_backend with
    | `Bytecode | `Native | `Auto -> `Closures
    | `Closures -> `Bytecode
  in
  let alt_setup =
    { setup with
      s_backend = alt_backend;
      s_name = Printf.sprintf "%s+%s" setup.s_engine (Eval.to_string alt_backend) }
  in
  let culprit =
    Bisect.run ~level:setup.s_level ~engine_name:setup.s_engine
      ~backend_name:(Eval.to_string setup.s_backend)
      ~test_alt:(test_with alt_setup) ~test:(test_with setup) sh.Shrink.circuit
  in
  { d_circuit = sh.Shrink.circuit;
    d_steps = sh.Shrink.steps;
    d_failure = final_failure;
    d_culprit = culprit;
    d_checks = sh.Shrink.checks_used }

(* ------------------------------------------------------------------ *)
(* The campaign loop                                                   *)

let level_string l = Pipeline.level_to_string l

let run_case camp idx =
  let st = Random.State.make [| camp.seed; idx; 0x5eed |] in
  let gen = vary_gen camp.gen idx in
  let circuit = Rand_circuit.generate st gen in
  let steps =
    Oracle.steps_of_stimulus
      (Rand_circuit.random_stimulus st circuit ~cycles:camp.cycles)
  in
  let subjects = List.map (fun s -> subject_of_setup s) camp.setups in
  match Oracle.run ~watchdog:camp.watchdog circuit steps subjects with
  | exception _ -> (`Ok, None) (* the reference itself rejected the case *)
  | outcomes -> (
    match Oracle.first_failure outcomes with
    | None -> (`Ok, None)
    | Some (subject_name, failure) ->
      let setup = List.find (fun s -> s.s_name = subject_name) camp.setups in
      let d =
        diagnose ~watchdog:camp.watchdog ~shrink_budget:camp.shrink_budget
          setup circuit steps failure
      in
      let repro =
        Repro.of_failure ~seed:camp.seed ~case:idx ~subject:subject_name
          ~level:(level_string setup.s_level) ~culprit:d.d_culprit d.d_circuit
          d.d_steps d.d_failure
      in
      (`Fail (subject_name, d), Some repro))

let next_repro_number dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> 1
  | entries ->
    Array.fold_left
      (fun acc name ->
        match Scanf.sscanf_opt name "fuzz-%d.rpt" (fun n -> n) with
        | Some n -> max acc (n + 1)
        | None -> acc)
      1 entries

let ensure_dir dir =
  if not (Sys.file_exists dir) then
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()

type result = {
  db : Corpus.t;
  ran : int;                  (* cases executed this invocation *)
  skipped : int;              (* already present in the corpus *)
  out_of_time : bool;
}

let run ?(resume = false) ?(log = fun _ -> ()) camp =
  ensure_dir camp.dir;
  let db_path = Filename.concat camp.dir "fuzz.db" in
  let db =
    if resume && Sys.file_exists db_path then begin
      let db = Corpus.load ~lenient:true db_path in
      if db.Corpus.seed <> 0 && db.Corpus.seed <> camp.seed then
        Printf.ksprintf failwith
          "fuzz: corpus %s was recorded with seed %d, not %d" db_path
          db.Corpus.seed camp.seed;
      db.Corpus.seed <- camp.seed;
      db
    end
    else Corpus.create ~seed:camp.seed ()
  in
  Corpus.init_file db_path db;
  let seen_buckets = Hashtbl.create 8 in
  List.iter
    (fun (_, f) -> Hashtbl.replace seen_buckets (Corpus.bucket_of f) ())
    (Corpus.failures db);
  let repro_no = ref (next_repro_number camp.dir) in
  let start = Unix.gettimeofday () in
  let deadline = Option.map (fun s -> start +. s) camp.seconds in
  let ran = ref 0 and skipped = ref 0 in
  let out_of_time = ref false in
  with_miscompile camp.inject_miscompile (fun () ->
      let idx = ref camp.start_case in
      let stop = camp.start_case + camp.cases in
      while !idx < stop && not !out_of_time do
        (match deadline with
         | Some d when Unix.gettimeofday () > d -> out_of_time := true
         | _ -> ());
        if not !out_of_time then begin
          if Corpus.mem db !idx then incr skipped
          else begin
            let outcome, repro = run_case camp !idx in
            let entry =
              match (outcome, repro) with
              | `Ok, _ -> Corpus.Ok
              | `Fail (subject_name, d), Some repro ->
                let bucket = repro.Repro.bucket in
                let filename =
                  if Hashtbl.mem seen_buckets bucket then None
                  else begin
                    Hashtbl.replace seen_buckets bucket ();
                    let name = Printf.sprintf "fuzz-%03d.rpt" !repro_no in
                    incr repro_no;
                    Repro.save (Filename.concat camp.dir name) repro;
                    Some name
                  end
                in
                log
                  (Printf.sprintf
                     "case %d: %s FAILED (%s) -> %s, shrunk to %d nodes / %d cycles%s"
                     !idx subject_name
                     (Oracle.failure_kind d.d_failure)
                     (Bisect.culprit_to_string d.d_culprit)
                     (Circuit.node_count d.d_circuit)
                     (Array.length d.d_steps)
                     (match filename with
                      | Some f -> ", repro " ^ f
                      | None -> " (duplicate bucket)"));
                Corpus.Fail
                  { Corpus.f_subject = subject_name;
                    f_kind = Oracle.failure_kind d.d_failure;
                    f_culprit = Bisect.culprit_token d.d_culprit;
                    f_nodes = Circuit.node_count d.d_circuit;
                    f_cycles = Array.length d.d_steps;
                    f_repro = filename }
              | `Fail _, None -> assert false
            in
            Corpus.add db !idx entry;
            Corpus.append_record db_path !idx entry;
            incr ran
          end;
          incr idx
        end
      done);
  Corpus.save db_path db;
  { db; ran = !ran; skipped = !skipped; out_of_time = !out_of_time }

(* ------------------------------------------------------------------ *)
(* Replay                                                              *)

let failure_signature circuit = function
  | Oracle.Mismatch m ->
    Printf.sprintf "mismatch:%s@%d"
      (Circuit.node circuit m.Oracle.node_id).Circuit.name m.Oracle.at_cycle
  | Oracle.Crash _ -> "crash"
  | Oracle.Hang _ -> "hang"

type replay_result = {
  rp_repro : Repro.t;
  rp_expected_signature : string;
  rp_actual : string;          (* signature, or "no failure" *)
  rp_reproduced : bool;
}

let replay ?(watchdog = 10.0) ?(inject_miscompile = false) path =
  let r = Repro.load path in
  let circuit, steps = Repro.rebuild r in
  let level =
    match Pipeline.level_of_string r.Repro.level with
    | Some l -> l
    | None -> Printf.ksprintf failwith "fuzz: bad level %S in repro" r.Repro.level
  in
  let setup = setup_of_name ~level r.Repro.subject in
  let subj = subject_of_setup setup in
  with_miscompile inject_miscompile (fun () ->
      let actual =
        match single_outcome (Oracle.run ~watchdog circuit steps [ subj ]) with
        | Some f -> failure_signature circuit f
        | None -> "no failure"
        | exception e -> "replay error: " ^ Printexc.to_string e
      in
      let expected = Repro.signature r in
      { rp_repro = r;
        rp_expected_signature = expected;
        rp_actual = actual;
        rp_reproduced = String.equal expected actual })

(* ------------------------------------------------------------------ *)
(* Reports                                                             *)

let report_text (db : Corpus.t) =
  let b = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  let failures = Corpus.failures db in
  add "fuzz corpus: seed %d, %d cases, %d failing\n" db.Corpus.seed
    (Corpus.count db) (List.length failures);
  let buckets = Corpus.buckets db in
  if buckets <> [] then begin
    add "buckets:\n";
    List.iter
      (fun (s : Corpus.bucket_stats) ->
        add "  %-32s %4d case(s)  min %d nodes / %d cycles  %s\n" s.Corpus.b_bucket
          s.Corpus.b_count s.Corpus.b_min_nodes s.Corpus.b_min_cycles
          (match s.Corpus.b_repro with Some r -> r | None -> "-"))
      buckets
  end;
  Buffer.contents b

let report_json (db : Corpus.t) =
  let b = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  let failures = Corpus.failures db in
  add "{\"seed\":%d,\"cases\":%d,\"failing\":%d,\"buckets\":[" db.Corpus.seed
    (Corpus.count db) (List.length failures);
  List.iteri
    (fun i (s : Corpus.bucket_stats) ->
      if i > 0 then add ",";
      add
        "{\"bucket\":%S,\"count\":%d,\"min_nodes\":%d,\"min_cycles\":%d,\"repro\":%s}"
        s.Corpus.b_bucket s.Corpus.b_count s.Corpus.b_min_nodes
        s.Corpus.b_min_cycles
        (match s.Corpus.b_repro with
         | Some r -> Printf.sprintf "%S" r
         | None -> "null"))
    (Corpus.buckets db);
  add "]}";
  Buffer.contents b
