module Pipeline = Gsim_passes.Pipeline
module Pass = Gsim_passes.Pass
module Partition = Gsim_partition.Partition
module Sim = Gsim_engine.Sim
module Activity = Gsim_engine.Activity
module Full_cycle = Gsim_engine.Full_cycle
module Parallel = Gsim_engine.Parallel
module Runtime = Gsim_engine.Runtime
module Reference = Gsim_ir.Reference
open Gsim_ir

type engine_kind =
  | Reference_engine
  | Full_cycle_engine of int
  | Essent_engine
  | Gsim_engine_kind

type config = {
  config_name : string;
  opt_level : Pipeline.level;
  engine : engine_kind;
  partition_algorithm : string;
  max_supernode : int;
  activation : Activity.activation_strategy;
  packed_exam : bool;
  backend : Gsim_engine.Eval.backend;
}

let verilator ?(threads = 1) () =
  {
    config_name = (if threads = 1 then "verilator" else Printf.sprintf "verilator-%dT" threads);
    opt_level = Pipeline.O1;
    engine = Full_cycle_engine threads;
    partition_algorithm = "none";
    max_supernode = 1;
    activation = Activity.Branch;
    packed_exam = false;
    backend = Gsim_engine.Eval.default;
  }

let arcilator =
  {
    config_name = "arcilator";
    opt_level = Pipeline.O2;
    engine = Full_cycle_engine 1;
    partition_algorithm = "none";
    max_supernode = 1;
    activation = Activity.Branch;
    packed_exam = false;
    backend = Gsim_engine.Eval.default;
  }

let essent =
  {
    config_name = "essent";
    opt_level = Pipeline.O1;
    engine = Essent_engine;
    partition_algorithm = "mffc";
    max_supernode = 20;
    activation = Activity.Branchless;
    packed_exam = false;
    backend = Gsim_engine.Eval.default;
  }

let gsim =
  (* Max supernode 8: the Fig. 9 sweep's optimum on this substrate, where
     examining an active bit is an array test rather than a
     branch-predictor-limited branch, sits at smaller sizes than the
     paper's 20-50. *)
  {
    config_name = "gsim";
    opt_level = Pipeline.O3;
    engine = Gsim_engine_kind;
    partition_algorithm = "gsim";
    max_supernode = 8;
    activation = Activity.Cost_model;
    packed_exam = true;
    backend = Gsim_engine.Eval.default;
  }

let gsim_with ?(max_supernode = 8) ?(partition_algorithm = "gsim")
    ?(opt_level = Pipeline.O3) ?(activation = Activity.Cost_model) ?(packed_exam = true)
    ?(backend = Gsim_engine.Eval.default) () =
  {
    gsim with
    config_name =
      Printf.sprintf "gsim[%s,%d,%s]" partition_algorithm max_supernode
        (Pipeline.level_to_string opt_level);
    max_supernode;
    partition_algorithm;
    opt_level;
    activation;
    packed_exam;
    backend;
  }

let reference =
  {
    config_name = "reference";
    opt_level = Pipeline.O0;
    engine = Reference_engine;
    partition_algorithm = "none";
    max_supernode = 1;
    activation = Activity.Branch;
    packed_exam = false;
    backend = Gsim_engine.Eval.default;
  }

let all_presets =
  [ reference; verilator (); verilator ~threads:2 (); verilator ~threads:4 ();
    verilator ~threads:8 (); arcilator; essent; gsim ]

type compiled = {
  sim : Sim.t;
  id_map : int array;
  outcomes : Pass.outcome list;
  supernodes : int;
  activity : Activity.t option;
  runtime : Runtime.t option;
  destroy : unit -> unit;
}

(* The compile pipeline is split in two so that its expensive front half
   (copy, output marking, acyclicity check, pass pipeline, partitioning)
   can be cached and shared — [realize_prepared] only {e reads} the
   prepared circuit, so one [prepared] can back any number of concurrent
   engine instances (the daemon's plan cache relies on this). *)
type prepared = {
  p_config : config;
  p_circuit : Circuit.t;  (* optimized private copy *)
  p_partition : Partition.t option;  (* for the activity engines *)
  p_id_map : int array;
  p_outcomes : Pass.outcome list;
  p_forcible : int list;  (* forcible ids mapped into the optimized circuit *)
}

let prepare_exn ~compact ~forcible ~keep config circuit =
  let c = Circuit.copy circuit in
  (* Fault-injection targets must survive optimization with their
     consumers still reading them: output-marked nodes are never aliased,
     inlined or dead-code eliminated, at any opt level — which is what
     keeps per-fault behaviour identical across presets.  [keep] nodes
     get the same survival guarantee without the engines' force plumbing
     (campaigns keep every register so the architectural-state compare
     sees the same state set under every preset). *)
  List.iter
    (fun id ->
      match Circuit.node_opt c id with
      | Some _ -> Circuit.mark_output c id
      | None -> ())
    (keep @ forcible);
  let original_max = Circuit.max_id c in
  (* Detect combinational loops up front, while node ids still match the
     caller's circuit (compaction would renumber the witness). *)
  Circuit.check_acyclic c;
  let outcomes = Pipeline.optimize ~level:config.opt_level c in
  let id_map =
    if compact then begin
      let map = Circuit.compact c in
      Circuit.validate c;
      map
    end
    else Array.init (Circuit.max_id c) (fun i -> i)
  in
  let id_map =
    (* Identity-extend so callers can index with original ids. *)
    Array.init original_max (fun i -> if i < Array.length id_map then id_map.(i) else -1)
  in
  let forcible_ids =
    List.filter_map
      (fun id ->
        if id >= 0 && id < Array.length id_map && id_map.(id) >= 0 then Some id_map.(id)
        else None)
      forcible
    |> List.sort_uniq compare
  in
  let partition =
    match config.engine with
    | Essent_engine | Gsim_engine_kind -> (
      match Partition.algorithm_of_string config.partition_algorithm with
      | Some algo -> Some (algo c ~max_size:config.max_supernode)
      | None ->
        invalid_arg
          (Printf.sprintf "Gsim.instantiate: unknown partition %S"
             config.partition_algorithm))
    | Reference_engine | Full_cycle_engine _ -> None
  in
  {
    p_config = config;
    p_circuit = c;
    p_partition = partition;
    p_id_map = id_map;
    p_outcomes = outcomes;
    p_forcible = forcible_ids;
  }

let realize_prepared p =
  let config = p.p_config in
  let c = p.p_circuit in
  let sim, supernodes, activity, runtime, destroy =
    match (config.engine, p.p_partition) with
    | Reference_engine, _ ->
      (Sim.of_reference (Reference.create c), 0, None, None, fun () -> ())
    | Full_cycle_engine 1, _ ->
      let t = Full_cycle.create ~backend:config.backend ~forcible:p.p_forcible c in
      (Full_cycle.sim t, 0, None, Some (Full_cycle.runtime t), fun () -> ())
    | Full_cycle_engine threads, _ ->
      let t = Parallel.create ~backend:config.backend ~forcible:p.p_forcible ~threads c in
      (Parallel.sim t, 0, None, Some (Parallel.runtime t), fun () -> Parallel.destroy t)
    | (Essent_engine | Gsim_engine_kind), Some part ->
      let t =
        Activity.create
          ~config:{ Activity.packed_exam = config.packed_exam; activation = config.activation }
          ~backend:config.backend ~forcible:p.p_forcible c part
      in
      ( Activity.sim ~name:config.config_name t,
        Array.length part.Partition.supernodes,
        Some t,
        Some (Activity.runtime t),
        fun () -> () )
    | (Essent_engine | Gsim_engine_kind), None ->
      (* prepare_exn always computes a partition for activity engines. *)
      assert false
  in
  let sim = { sim with Sim.sim_name = config.config_name } in
  { sim; id_map = p.p_id_map; outcomes = p.p_outcomes; supernodes; activity; runtime; destroy }

let instantiate_exn ~compact ~forcible ~keep config circuit =
  realize_prepared (prepare_exn ~compact ~forcible ~keep config circuit)

let instantiate ?(compact = false) ?(forcible = []) ?(keep = []) config circuit =
  (* A combinational loop surfaces as [Circuit.Combinational_cycle] from
     whichever stage first needs a topological order (passes, partitioning
     or engine construction); turn it into a [Failure] that names the
     nodes on the loop instead of escaping as a raw exception. *)
  match instantiate_exn ~compact ~forcible ~keep config circuit with
  | compiled -> compiled
  | exception Circuit.Combinational_cycle ids ->
    failwith (Circuit.cycle_diagnostic circuit ids)

let load_firrtl_string src =
  let { Gsim_firrtl.Firrtl.circuit; halt } = Gsim_firrtl.Firrtl.load_string src in
  (circuit, halt)

let load_firrtl_file path =
  let { Gsim_firrtl.Firrtl.circuit; halt } = Gsim_firrtl.Firrtl.load_file path in
  (circuit, halt)

let load_verilog_string src = Gsim_verilog.Verilog.load_string src

let load_verilog_file path = Gsim_verilog.Verilog.load_file path

let load_design_file path =
  if Filename.check_suffix path ".v" then (load_verilog_file path, None)
  else load_firrtl_file path

let config_of_names ~engine ~threads ~level ~max_supernode ~backend =
  let level =
    Option.map
      (fun l ->
        match Pipeline.level_of_string l with
        | Some l -> l
        | None -> failwith (Printf.sprintf "unknown optimization level %S" l))
      level
  in
  let backend =
    match Gsim_engine.Eval.of_string backend with
    | Some b -> b
    | None ->
      failwith
        (Printf.sprintf "unknown backend %S (%s)" backend Gsim_engine.Eval.names)
  in
  let base =
    match engine with
    | "verilator" -> verilator ~threads ()
    | "arcilator" -> arcilator
    | "essent" -> essent
    | "gsim" -> gsim_with ~max_supernode ()
    | "reference" -> reference
    | other -> failwith (Printf.sprintf "unknown engine %S" other)
  in
  let base = { base with backend } in
  match level with Some opt_level -> { base with opt_level } | None -> base

module Compile = struct
  type source = { circuit : Circuit.t; halt : int option; hash : string }

  let hash_circuit c = Digest.to_hex (Digest.string (Ir_text.to_string c))

  let of_circuit ?halt circuit = { circuit; halt; hash = hash_circuit circuit }

  let source_of_string ~filename text =
    if Filename.check_suffix filename ".v" then of_circuit (load_verilog_string text)
    else
      let circuit, halt = load_firrtl_string text in
      of_circuit ?halt circuit

  let read_file path =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))

  let source_of_file path = source_of_string ~filename:path (read_file path)

  let fingerprint (config : config) =
    let engine =
      match config.engine with
      | Reference_engine -> "reference"
      | Full_cycle_engine threads -> Printf.sprintf "full-cycle:%d" threads
      | Essent_engine -> "essent"
      | Gsim_engine_kind -> "gsim"
    in
    let activation =
      match config.activation with
      | Activity.Branch -> "branch"
      | Activity.Branchless -> "branchless"
      | Activity.Cost_model -> "cost-model"
    in
    Printf.sprintf "%s|%s|%s|%d|%s|%b|%s" engine
      (Pipeline.level_to_string config.opt_level)
      config.partition_algorithm config.max_supernode activation config.packed_exam
      (Gsim_engine.Eval.to_string config.backend)

  type plan = { plan_prepared : prepared; plan_hash : string; plan_halt : int option }

  let prepare ?(forcible = []) ?(keep = []) config source =
    match prepare_exn ~compact:false ~forcible ~keep config source.circuit with
    | p ->
      let halt =
        Option.bind source.halt (fun h ->
            if h >= 0 && h < Array.length p.p_id_map && p.p_id_map.(h) >= 0 then
              Some p.p_id_map.(h)
            else None)
      in
      { plan_prepared = p; plan_hash = source.hash; plan_halt = halt }
    | exception Circuit.Combinational_cycle ids ->
      failwith (Circuit.cycle_diagnostic source.circuit ids)

  let realize plan = realize_prepared plan.plan_prepared
  let plan_halt plan = plan.plan_halt
  let plan_hash plan = plan.plan_hash
  let plan_circuit plan = plan.plan_prepared.p_circuit
  let plan_config plan = plan.plan_prepared.p_config
  let key source config = source.hash ^ "#" ^ fingerprint config
  let plan_key plan = plan.plan_hash ^ "#" ^ fingerprint plan.plan_prepared.p_config

  let load ?forcible ?keep config path =
    let source = source_of_file path in
    let plan = prepare ?forcible ?keep config source in
    (source, realize plan)
end

let emit_cpp config circuit =
  let c = Circuit.copy circuit in
  ignore (Pipeline.optimize ~level:config.opt_level c);
  let mode =
    match config.engine with
    | Reference_engine | Full_cycle_engine _ -> Gsim_emit.Emit.Full_cycle_mode
    | Essent_engine -> Gsim_emit.Emit.Essent_mode
    | Gsim_engine_kind -> Gsim_emit.Emit.Gsim_mode
  in
  let partition =
    match config.engine with
    | Essent_engine | Gsim_engine_kind ->
      Partition.algorithm_of_string config.partition_algorithm
      |> Option.map (fun algo -> algo c ~max_size:config.max_supernode)
    | Reference_engine | Full_cycle_engine _ -> None
  in
  Gsim_emit.Emit.emit ~mode ?partition c
