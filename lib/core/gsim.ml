module Pipeline = Gsim_passes.Pipeline
module Pass = Gsim_passes.Pass
module Partition = Gsim_partition.Partition
module Sim = Gsim_engine.Sim
module Activity = Gsim_engine.Activity
module Full_cycle = Gsim_engine.Full_cycle
module Parallel = Gsim_engine.Parallel
module Reference = Gsim_ir.Reference
open Gsim_ir

type engine_kind =
  | Reference_engine
  | Full_cycle_engine of int
  | Essent_engine
  | Gsim_engine_kind

type config = {
  config_name : string;
  opt_level : Pipeline.level;
  engine : engine_kind;
  partition_algorithm : string;
  max_supernode : int;
  activation : Activity.activation_strategy;
  packed_exam : bool;
  backend : Gsim_engine.Eval.backend;
}

let verilator ?(threads = 1) () =
  {
    config_name = (if threads = 1 then "verilator" else Printf.sprintf "verilator-%dT" threads);
    opt_level = Pipeline.O1;
    engine = Full_cycle_engine threads;
    partition_algorithm = "none";
    max_supernode = 1;
    activation = Activity.Branch;
    packed_exam = false;
    backend = Gsim_engine.Eval.default;
  }

let arcilator =
  {
    config_name = "arcilator";
    opt_level = Pipeline.O2;
    engine = Full_cycle_engine 1;
    partition_algorithm = "none";
    max_supernode = 1;
    activation = Activity.Branch;
    packed_exam = false;
    backend = Gsim_engine.Eval.default;
  }

let essent =
  {
    config_name = "essent";
    opt_level = Pipeline.O1;
    engine = Essent_engine;
    partition_algorithm = "mffc";
    max_supernode = 20;
    activation = Activity.Branchless;
    packed_exam = false;
    backend = Gsim_engine.Eval.default;
  }

let gsim =
  (* Max supernode 8: the Fig. 9 sweep's optimum on this substrate, where
     examining an active bit is an array test rather than a
     branch-predictor-limited branch, sits at smaller sizes than the
     paper's 20-50. *)
  {
    config_name = "gsim";
    opt_level = Pipeline.O3;
    engine = Gsim_engine_kind;
    partition_algorithm = "gsim";
    max_supernode = 8;
    activation = Activity.Cost_model;
    packed_exam = true;
    backend = Gsim_engine.Eval.default;
  }

let gsim_with ?(max_supernode = 8) ?(partition_algorithm = "gsim")
    ?(opt_level = Pipeline.O3) ?(activation = Activity.Cost_model) ?(packed_exam = true)
    ?(backend = Gsim_engine.Eval.default) () =
  {
    gsim with
    config_name =
      Printf.sprintf "gsim[%s,%d,%s]" partition_algorithm max_supernode
        (Pipeline.level_to_string opt_level);
    max_supernode;
    partition_algorithm;
    opt_level;
    activation;
    packed_exam;
    backend;
  }

let reference =
  {
    config_name = "reference";
    opt_level = Pipeline.O0;
    engine = Reference_engine;
    partition_algorithm = "none";
    max_supernode = 1;
    activation = Activity.Branch;
    packed_exam = false;
    backend = Gsim_engine.Eval.default;
  }

let all_presets =
  [ reference; verilator (); verilator ~threads:2 (); verilator ~threads:4 ();
    verilator ~threads:8 (); arcilator; essent; gsim ]

type compiled = {
  sim : Sim.t;
  id_map : int array;
  outcomes : Pass.outcome list;
  supernodes : int;
  activity : Activity.t option;
  destroy : unit -> unit;
}

let instantiate_exn ~compact ~forcible ~keep config circuit =
  let c = Circuit.copy circuit in
  (* Fault-injection targets must survive optimization with their
     consumers still reading them: output-marked nodes are never aliased,
     inlined or dead-code eliminated, at any opt level — which is what
     keeps per-fault behaviour identical across presets.  [keep] nodes
     get the same survival guarantee without the engines' force plumbing
     (campaigns keep every register so the architectural-state compare
     sees the same state set under every preset). *)
  List.iter
    (fun id ->
      match Circuit.node_opt c id with
      | Some _ -> Circuit.mark_output c id
      | None -> ())
    (keep @ forcible);
  let original_max = Circuit.max_id c in
  (* Detect combinational loops up front, while node ids still match the
     caller's circuit (compaction would renumber the witness). *)
  Circuit.check_acyclic c;
  let outcomes = Pipeline.optimize ~level:config.opt_level c in
  let id_map =
    if compact then begin
      let map = Circuit.compact c in
      Circuit.validate c;
      map
    end
    else Array.init (Circuit.max_id c) (fun i -> i)
  in
  let id_map =
    (* Identity-extend so callers can index with original ids. *)
    Array.init original_max (fun i -> if i < Array.length id_map then id_map.(i) else -1)
  in
  let forcible_ids =
    List.filter_map
      (fun id ->
        if id >= 0 && id < Array.length id_map && id_map.(id) >= 0 then Some id_map.(id)
        else None)
      forcible
    |> List.sort_uniq compare
  in
  let partition () =
    match Partition.algorithm_of_string config.partition_algorithm with
    | Some algo -> algo c ~max_size:config.max_supernode
    | None ->
      invalid_arg
        (Printf.sprintf "Gsim.instantiate: unknown partition %S" config.partition_algorithm)
  in
  let sim, supernodes, activity, destroy =
    match config.engine with
    | Reference_engine -> (Sim.of_reference (Reference.create c), 0, None, fun () -> ())
    | Full_cycle_engine 1 ->
      ( Full_cycle.sim (Full_cycle.create ~backend:config.backend ~forcible:forcible_ids c),
        0, None, fun () -> () )
    | Full_cycle_engine threads ->
      let t = Parallel.create ~backend:config.backend ~forcible:forcible_ids ~threads c in
      (Parallel.sim t, 0, None, fun () -> Parallel.destroy t)
    | Essent_engine | Gsim_engine_kind ->
      let p = partition () in
      let t =
        Activity.create
          ~config:{ Activity.packed_exam = config.packed_exam; activation = config.activation }
          ~backend:config.backend ~forcible:forcible_ids c p
      in
      ( Activity.sim ~name:config.config_name t,
        Array.length p.Partition.supernodes,
        Some t,
        fun () -> () )
  in
  let sim = { sim with Sim.sim_name = config.config_name } in
  { sim; id_map; outcomes; supernodes; activity; destroy }

let instantiate ?(compact = false) ?(forcible = []) ?(keep = []) config circuit =
  (* A combinational loop surfaces as [Circuit.Combinational_cycle] from
     whichever stage first needs a topological order (passes, partitioning
     or engine construction); turn it into a [Failure] that names the
     nodes on the loop instead of escaping as a raw exception. *)
  match instantiate_exn ~compact ~forcible ~keep config circuit with
  | compiled -> compiled
  | exception Circuit.Combinational_cycle ids ->
    failwith (Circuit.cycle_diagnostic circuit ids)

let load_firrtl_string src =
  let { Gsim_firrtl.Firrtl.circuit; halt } = Gsim_firrtl.Firrtl.load_string src in
  (circuit, halt)

let load_firrtl_file path =
  let { Gsim_firrtl.Firrtl.circuit; halt } = Gsim_firrtl.Firrtl.load_file path in
  (circuit, halt)

let load_verilog_string src = Gsim_verilog.Verilog.load_string src

let load_verilog_file path = Gsim_verilog.Verilog.load_file path

let load_design_file path =
  if Filename.check_suffix path ".v" then (load_verilog_file path, None)
  else load_firrtl_file path

let emit_cpp config circuit =
  let c = Circuit.copy circuit in
  ignore (Pipeline.optimize ~level:config.opt_level c);
  let mode =
    match config.engine with
    | Reference_engine | Full_cycle_engine _ -> Gsim_emit.Emit.Full_cycle_mode
    | Essent_engine -> Gsim_emit.Emit.Essent_mode
    | Gsim_engine_kind -> Gsim_emit.Emit.Gsim_mode
  in
  let partition =
    match config.engine with
    | Essent_engine | Gsim_engine_kind ->
      Partition.algorithm_of_string config.partition_algorithm
      |> Option.map (fun algo -> algo c ~max_size:config.max_supernode)
    | Reference_engine | Full_cycle_engine _ -> None
  in
  Gsim_emit.Emit.emit ~mode ?partition c
