(** GSIM — top-level compilation pipeline.

    This is the library's primary entry point: load a design (FIRRTL text
    or an in-memory {!Gsim_ir.Circuit.t}), pick a simulator configuration,
    and get a runnable {!Gsim_engine.Sim.t}.

    The presets reproduce the simulator families the paper evaluates:

    - {!verilator} (optionally multi-threaded): full-cycle evaluation of
      every node with baseline expression optimization;
    - {!arcilator}: full-cycle with aggressive IR optimization;
    - {!essent}: essential-signal simulation with MFFC supernodes and
      branch-free activation;
    - {!gsim}: the paper's simulator — every node/bit-level optimization,
      correlation-aware supernodes, packed active-bit examination,
      cost-model activation, slow-path reset. *)

open Gsim_ir

type engine_kind =
  | Reference_engine
  | Full_cycle_engine of int  (** thread count; 1 = single-threaded *)
  | Essent_engine
  | Gsim_engine_kind

type config = {
  config_name : string;
  opt_level : Gsim_passes.Pipeline.level;
  engine : engine_kind;
  partition_algorithm : string;  (** "none" | "kernighan" | "mffc" | "gsim" *)
  max_supernode : int;
  activation : Gsim_engine.Activity.activation_strategy;
  packed_exam : bool;
  backend : Gsim_engine.Eval.backend;
      (** Per-node evaluation strategy (see {!Gsim_engine.Eval}): flat
          bytecode for narrow nodes ([`Bytecode], the default everywhere)
          or the original closure trees ([`Closures]).  The reference
          engine ignores it. *)
}

val verilator : ?threads:int -> unit -> config
val arcilator : config
val essent : config
val gsim : config
(** The paper's simulator: O3, gsim partitioning.  The default maximum
    supernode size (8) is this substrate's Fig. 9 optimum. *)

val gsim_with : ?max_supernode:int -> ?partition_algorithm:string ->
  ?opt_level:Gsim_passes.Pipeline.level ->
  ?activation:Gsim_engine.Activity.activation_strategy -> ?packed_exam:bool ->
  ?backend:Gsim_engine.Eval.backend ->
  unit -> config

val reference : config

val all_presets : config list

type compiled = {
  sim : Gsim_engine.Sim.t;
  id_map : int array;
      (** original node id -> id in the optimized circuit (-1 if the node
          was optimized away); identity-extended for unoptimized levels. *)
  outcomes : Gsim_passes.Pass.outcome list;
  supernodes : int;
  activity : Gsim_engine.Activity.t option;
      (** The underlying activity engine for essent/gsim configurations —
          lets observers (coverage collection) hook its change events
          instead of resampling every cycle.  [None] for full-cycle and
          reference engines. *)
  runtime : Gsim_engine.Runtime.t option;
      (** The engine's shared value arena — the hook for dirty-memory
          write tracking and bulk checkpoint capture ({!Gsim_engine.Checkpoint}).
          [None] only for the reference interpreter, which keeps its own
          state representation. *)
  destroy : unit -> unit;
      (** Joins worker domains for multi-threaded engines; otherwise a
          no-op. *)
}

val instantiate :
  ?compact:bool -> ?forcible:int list -> ?keep:int list -> config -> Circuit.t -> compiled
(** Runs the configured pass pipeline on (a private copy of) the circuit,
    partitions it, and builds the engine.  Inputs and output-marked nodes
    always survive; look them up through [id_map].

    [forcible] (node ids in the {e original} circuit) declares
    fault-injection targets for [sim.force]/[sim.release]: they are
    output-marked before optimization so they survive at every level, and
    the engines route them around bytecode fusion and guard their latches.
    Ids that do not exist are ignored (the campaign layer reports them as
    uninjectable).

    [keep] (also original node ids) get the same survive-optimization
    guarantee without any engine-level force support — fault campaigns
    keep every register so the architectural state a checkpoint captures
    is the same set under every preset and fault subset.

    A combinational loop in the design raises [Failure] with a diagnostic
    naming the nodes on the loop. *)

val load_firrtl_string : string -> Circuit.t * int option
(** Circuit and optional ["$halt"] node (see {!Gsim_firrtl.Firrtl}). *)

val load_firrtl_file : string -> Circuit.t * int option

val load_verilog_string : string -> Circuit.t
(** Synthesizable-subset Verilog (see {!Gsim_verilog.Verilog}). *)

val load_verilog_file : string -> Circuit.t

val load_design_file : string -> Circuit.t * int option
(** Dispatches on the extension: [.v] Verilog, anything else FIRRTL. *)

val config_of_names : engine:string -> threads:int -> level:string option ->
  max_supernode:int -> backend:string -> config
(** Build a configuration from command-line-style strings: [engine] is a
    preset name (gsim/essent/verilator/arcilator/reference), [threads]
    applies to verilator, [level] optionally overrides the preset's
    optimization level ("O0".."O3"), [backend] is "auto", "native",
    "bytecode", or "closures".  Raises [Failure] on unknown names —
    shared by the CLI and the daemon so both reject inputs
    identically. *)

(** The compile pipeline split into cacheable halves.

    {!Compile.prepare} runs everything that depends only on the design
    and the configuration — frontend output copy, output marking,
    acyclicity check, pass pipeline, partitioning — and {!Compile.realize}
    builds an engine instance from the result.  A {!Compile.plan} is
    immutable once built: [realize] only reads it, so one plan can back
    any number of concurrent simulator instances (each [realize] call
    allocates its own runtime arena).  This is what the daemon's
    compiled-plan cache stores, keyed by {!Compile.key} — the digest of
    the circuit's canonical {!Gsim_ir.Ir_text} form plus the config
    {!Compile.fingerprint}. *)
module Compile : sig
  type source = {
    circuit : Circuit.t;
    halt : int option;  (** ["$halt"] node id in [circuit], if any *)
    hash : string;      (** digest of the canonical IR text *)
  }

  val of_circuit : ?halt:int -> Circuit.t -> source
  val source_of_string : filename:string -> string -> source
  (** [filename] only selects the frontend ([.v] Verilog, else FIRRTL). *)

  val source_of_file : string -> source

  type plan

  val prepare : ?forcible:int list -> ?keep:int list -> config -> source -> plan
  (** The expensive front half; same guarantees as {!instantiate}
      (including the combinational-loop [Failure] diagnostic). *)

  val realize : plan -> compiled
  (** The cheap back half: engine construction only.  Thread-safe with
      respect to other [realize] calls on the same plan. *)

  val plan_halt : plan -> int option
  (** The source's halt node mapped through the plan's id map. *)

  val plan_hash : plan -> string
  val plan_circuit : plan -> Circuit.t
  (** The optimized circuit (original node ids; not compacted). *)

  val plan_config : plan -> config
  val fingerprint : config -> string
  (** Every config field that changes compilation output. *)

  val key : source -> config -> string
  (** [hash ^ "#" ^ fingerprint] — the plan-cache key. *)

  val plan_key : plan -> string

  val load : ?forcible:int list -> ?keep:int list -> config -> string -> source * compiled
  (** [source_of_file] + [prepare] + [realize] — the one-shot CLI path. *)
end

val emit_cpp : config -> Circuit.t -> Gsim_emit.Emit.result
(** Optimize per the config and emit C++ in the matching mode. *)
