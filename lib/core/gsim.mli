(** GSIM — top-level compilation pipeline.

    This is the library's primary entry point: load a design (FIRRTL text
    or an in-memory {!Gsim_ir.Circuit.t}), pick a simulator configuration,
    and get a runnable {!Gsim_engine.Sim.t}.

    The presets reproduce the simulator families the paper evaluates:

    - {!verilator} (optionally multi-threaded): full-cycle evaluation of
      every node with baseline expression optimization;
    - {!arcilator}: full-cycle with aggressive IR optimization;
    - {!essent}: essential-signal simulation with MFFC supernodes and
      branch-free activation;
    - {!gsim}: the paper's simulator — every node/bit-level optimization,
      correlation-aware supernodes, packed active-bit examination,
      cost-model activation, slow-path reset. *)

open Gsim_ir

type engine_kind =
  | Reference_engine
  | Full_cycle_engine of int  (** thread count; 1 = single-threaded *)
  | Essent_engine
  | Gsim_engine_kind

type config = {
  config_name : string;
  opt_level : Gsim_passes.Pipeline.level;
  engine : engine_kind;
  partition_algorithm : string;  (** "none" | "kernighan" | "mffc" | "gsim" *)
  max_supernode : int;
  activation : Gsim_engine.Activity.activation_strategy;
  packed_exam : bool;
  backend : Gsim_engine.Eval.backend;
      (** Per-node evaluation strategy (see {!Gsim_engine.Eval}): flat
          bytecode for narrow nodes ([`Bytecode], the default everywhere)
          or the original closure trees ([`Closures]).  The reference
          engine ignores it. *)
}

val verilator : ?threads:int -> unit -> config
val arcilator : config
val essent : config
val gsim : config
(** The paper's simulator: O3, gsim partitioning.  The default maximum
    supernode size (8) is this substrate's Fig. 9 optimum. *)

val gsim_with : ?max_supernode:int -> ?partition_algorithm:string ->
  ?opt_level:Gsim_passes.Pipeline.level ->
  ?activation:Gsim_engine.Activity.activation_strategy -> ?packed_exam:bool ->
  ?backend:Gsim_engine.Eval.backend ->
  unit -> config

val reference : config

val all_presets : config list

type compiled = {
  sim : Gsim_engine.Sim.t;
  id_map : int array;
      (** original node id -> id in the optimized circuit (-1 if the node
          was optimized away); identity-extended for unoptimized levels. *)
  outcomes : Gsim_passes.Pass.outcome list;
  supernodes : int;
  activity : Gsim_engine.Activity.t option;
      (** The underlying activity engine for essent/gsim configurations —
          lets observers (coverage collection) hook its change events
          instead of resampling every cycle.  [None] for full-cycle and
          reference engines. *)
  destroy : unit -> unit;
      (** Joins worker domains for multi-threaded engines; otherwise a
          no-op. *)
}

val instantiate :
  ?compact:bool -> ?forcible:int list -> ?keep:int list -> config -> Circuit.t -> compiled
(** Runs the configured pass pipeline on (a private copy of) the circuit,
    partitions it, and builds the engine.  Inputs and output-marked nodes
    always survive; look them up through [id_map].

    [forcible] (node ids in the {e original} circuit) declares
    fault-injection targets for [sim.force]/[sim.release]: they are
    output-marked before optimization so they survive at every level, and
    the engines route them around bytecode fusion and guard their latches.
    Ids that do not exist are ignored (the campaign layer reports them as
    uninjectable).

    [keep] (also original node ids) get the same survive-optimization
    guarantee without any engine-level force support — fault campaigns
    keep every register so the architectural state a checkpoint captures
    is the same set under every preset and fault subset.

    A combinational loop in the design raises [Failure] with a diagnostic
    naming the nodes on the loop. *)

val load_firrtl_string : string -> Circuit.t * int option
(** Circuit and optional ["$halt"] node (see {!Gsim_firrtl.Firrtl}). *)

val load_firrtl_file : string -> Circuit.t * int option

val load_verilog_string : string -> Circuit.t
(** Synthesizable-subset Verilog (see {!Gsim_verilog.Verilog}). *)

val load_verilog_file : string -> Circuit.t

val load_design_file : string -> Circuit.t * int option
(** Dispatches on the extension: [.v] Verilog, anything else FIRRTL. *)

val emit_cpp : config -> Circuit.t -> Gsim_emit.Emit.result
(** Optimize per the config and emit C++ in the matching mode. *)
