(* gsim — command-line driver.

   Subcommands:
     stats   show IR statistics of a FIRRTL design, before and after opts
     emit    compile a FIRRTL design and emit C++ simulation code
     sim     simulate a FIRRTL design with pokes from the command line
     run     run a built-in workload on a built-in processor design     *)

open Cmdliner
module Bits = Gsim_bits.Bits
module Circuit = Gsim_ir.Circuit
module Sim = Gsim_engine.Sim
module Counters = Gsim_engine.Counters
module Pipeline = Gsim_passes.Pipeline
module Designs = Gsim_designs.Designs
module Stu_core = Gsim_designs.Stu_core
module Programs = Gsim_designs.Programs
module Gsim = Gsim_core.Gsim
module Emit = Gsim_emit.Emit
module Cov_db = Gsim_coverage.Db
module Cov_collect = Gsim_coverage.Collect
module Cov_report = Gsim_coverage.Report
module Fault = Gsim_fault.Fault
module Fault_db = Gsim_fault.Db
module Campaign = Gsim_fault.Campaign
module Fault_report = Gsim_fault.Report
module Session = Gsim_resilience.Session
module Incident = Gsim_resilience.Incident
module Fuzz = Gsim_verify.Fuzz
module Fuzz_corpus = Gsim_verify.Corpus
module Compile = Gsim_core.Gsim.Compile
module Server_protocol = Gsim_server.Protocol
module Server_client = Gsim_server.Client
module Daemon = Gsim_server.Daemon

exception Usage of string

let config_of_engine name threads max_supernode level backend =
  Gsim.config_of_names ~engine:name ~threads ~level ~max_supernode ~backend

(* One load path for every subcommand (and the daemon): frontend dispatch
   by extension, canonical circuit hash for plan caching. *)
let load_source file = Compile.source_of_file file

(* Wrap a compiled simulator with a coverage collector when requested.
   Activity engines (essent/gsim) use the change-event fast path; everything
   else falls back to per-cycle resampling.  [finish] writes the database,
   merging into [path] if it already holds coverage from earlier runs. *)
let attach_coverage coverage_path (compiled : Gsim.compiled) =
  match coverage_path with
  | None -> (compiled.Gsim.sim, fun () -> ())
  | Some path ->
    let cov, sim =
      match compiled.Gsim.activity with
      | Some engine ->
        Cov_collect.of_activity ~name:compiled.Gsim.sim.Sim.sim_name engine
      | None -> Cov_collect.create compiled.Gsim.sim
    in
    let finish () =
      let db = Cov_collect.db cov in
      let db = if Sys.file_exists path then Cov_db.merge (Cov_db.load path) db else db in
      Cov_db.save path db;
      let s = Cov_db.summary db in
      Printf.printf "coverage: %.1f%% -> %s (%d run(s))\n" (Cov_db.total_percent s) path
        db.Cov_db.runs
    in
    (sim, finish)

(* --- common arguments --------------------------------------------------- *)

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.fir|FILE.v" ~doc:"FIRRTL or Verilog input file")

let engine_arg =
  Arg.(
    value
    & opt string "gsim"
    & info [ "engine"; "e" ] ~docv:"ENGINE"
        ~doc:"Simulator: gsim, essent, verilator, arcilator, reference")

let threads_arg =
  Arg.(value & opt int 1 & info [ "threads"; "j" ] ~doc:"Threads for the verilator engine")

let level_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "opt"; "O" ] ~docv:"LEVEL" ~doc:"Override optimization level (O0..O3)")

let supernode_arg =
  Arg.(
    value & opt int 8
    & info [ "max-supernode" ] ~doc:"Maximum supernode size (the paper's knob)")

let backend_arg =
  Arg.(
    value
    & opt string (Gsim_engine.Eval.to_string Gsim_engine.Eval.default)
    & info [ "backend" ] ~docv:"BACKEND"
        ~doc:
          "Per-node evaluation backend: auto (the default — native when a C compiler \
           is available and the design is big enough to amortize it, otherwise the \
           best interpreted backend for the design size), native (ahead-of-time C \
           compiled to a cached .so), bytecode (flat instruction streams for narrow \
           signals), or closures (the original closure trees)")

let coverage_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "coverage" ] ~docv:"FILE.cov"
        ~doc:"Collect toggle/node/condition coverage; merges into FILE.cov if it exists")

let json_arg =
  Arg.(value & flag & info [ "json" ] ~doc:"Machine-readable JSON output")

let parse_pokes circuit specs =
  List.map
    (fun spec ->
      match String.split_on_char '=' spec with
      | [ name; value ] -> (
        match Circuit.find_node circuit name with
        | Some n -> (n.Circuit.id, Bits.of_int ~width:n.Circuit.width (int_of_string value))
        | None -> failwith (Printf.sprintf "no input named %S" name))
      | _ -> failwith (Printf.sprintf "bad poke %S (want name=value)" spec))
    specs

(* --- resilience ----------------------------------------------------------
   The flags shared by `sim` and `run` that route execution through a
   resilient session (lib/resilience): crash-safe periodic checkpoints,
   shadow lockstep verification, wall-clock watchdog, and graceful
   degradation onto the reference engine. *)

let ck_every_arg =
  Arg.(value & opt (some int) None
       & info [ "checkpoint-every" ] ~docv:"N"
           ~doc:"Persist a crash-safe checkpoint every N cycles (needs --checkpoint-dir)")

let ck_dir_arg =
  Arg.(value & opt (some string) None
       & info [ "checkpoint-dir" ] ~docv:"DIR"
           ~doc:"Directory for the checkpoint ring (and incident reports)")

let ck_ring_arg =
  Arg.(value & opt int 3
       & info [ "checkpoint-ring" ] ~docv:"K"
           ~doc:"Checkpoint generations to keep (0 keeps everything)")

let keyframe_arg =
  Arg.(value & opt int 16
       & info [ "keyframe-every" ] ~docv:"K"
           ~doc:"Write a full keyframe after at most K delta checkpoints (0 writes \
                 every checkpoint full; default 16)")

let resume_arg =
  Arg.(value & flag
       & info [ "resume" ]
           ~doc:"Restore the newest valid checkpoint from --checkpoint-dir before running")

let shadow_arg =
  Arg.(value & opt (some int) None
       & info [ "shadow-stride" ] ~docv:"N"
           ~doc:"Every N cycles, re-execute the window on the reference engine and \
                 compare architectural state; divergences are bisected to a minimal \
                 replayable incident and the session degrades onto the reference engine")

let shadow_window_arg =
  Arg.(value & opt (some int) None
       & info [ "shadow-window" ] ~docv:"W"
           ~doc:"Sampled verification: re-execute only the last W cycles of each \
                 shadow stride (default: the whole stride)")

let watchdog_arg =
  Arg.(value & opt (some float) None
       & info [ "watchdog" ] ~docv:"SECONDS"
           ~doc:"Wall-clock budget per step batch on the primary engine; a trip rolls \
                 back to the last verified checkpoint and degrades")

let inject_arg =
  Arg.(value & opt_all string []
       & info [ "inject" ] ~docv:"KEY"
           ~doc:"Seed a primary-only fault (same KEY syntax as fault campaigns, e.g. \
                 r#stuck1:0+100\\@50) — exercises detection and degradation")

let incident_dir_arg =
  Arg.(value & opt (some string) None
       & info [ "incident-dir" ] ~docv:"DIR"
           ~doc:"Where incident reports are written (default: --checkpoint-dir)")

let session_config ck_every ck_dir ring keyframe_every resume shadow_stride
    shadow_window watchdog incident_dir injects =
  let wants =
    ck_every <> None || ck_dir <> None || resume || shadow_stride <> None
    || watchdog <> None || incident_dir <> None || injects <> []
  in
  if not wants then None
  else begin
    if resume && ck_dir = None then raise (Usage "--resume requires --checkpoint-dir");
    if ck_every <> None && ck_dir = None then
      raise (Usage "--checkpoint-every requires --checkpoint-dir");
    (match ck_every with
     | Some n when n <= 0 -> raise (Usage "--checkpoint-every must be positive")
     | _ -> ());
    if keyframe_every < 0 then raise (Usage "--keyframe-every must be >= 0");
    (match shadow_stride with
     | Some n when n <= 0 -> raise (Usage "--shadow-stride must be positive")
     | _ -> ());
    (match shadow_window with
     | Some n when n <= 0 -> raise (Usage "--shadow-window must be positive")
     | Some _ when shadow_stride = None ->
       raise (Usage "--shadow-window requires --shadow-stride")
     | _ -> ());
    Some
      {
        Session.checkpoint_every = ck_every;
        checkpoint_dir = ck_dir;
        ring;
        keyframe_every;
        shadow_stride;
        shadow_window;
        watchdog_seconds = watchdog;
        incident_dir;
      }
  end

let resolve_injections circuit keys =
  List.map
    (fun key ->
      let f = Fault.of_key key in
      match Circuit.find_node circuit f.Fault.target with
      | Some n -> (f, n)
      | None -> failwith (Printf.sprintf "inject: no node named %S" f.Fault.target))
    keys

(* Injections run on the primary sim only (a degraded session leaves its
   faults behind): registers latch the flipped value, everything else
   goes through the engine's force/release override layer. *)
let schedule_injections circuit t resolved =
  List.iter
    (fun ((f : Fault.t), (n : Circuit.node)) ->
      let id = n.Circuit.id in
      let width = n.Circuit.width in
      let onehot b =
        if b < 0 || b >= width then
          failwith (Printf.sprintf "inject %s: bit %d out of range" (Fault.key f) b)
        else Bits.resize_unsigned (Bits.shift_left (Bits.one 1) b) ~width
      in
      let is_register = Circuit.register_of_node circuit id <> None in
      let c = f.Fault.cycle in
      match f.Fault.model with
      | Fault.Seu b when is_register ->
        Session.inject_at t ~cycle:c (fun sim ->
            sim.Sim.write_reg id (Bits.logxor (sim.Sim.peek id) (onehot b));
            sim.Sim.invalidate ())
      | Fault.Seu b ->
        Session.inject_at t ~cycle:c (fun sim ->
            sim.Sim.force ~mask:(onehot b) id (Bits.logxor (sim.Sim.peek id) (onehot b)));
        Session.inject_at t ~cycle:(c + 1) (fun sim -> sim.Sim.release id)
      | Fault.Stuck (v, b, d) ->
        Session.inject_at t ~cycle:c (fun sim ->
            let m = onehot b in
            sim.Sim.force ~mask:m id (if v then m else Bits.zero width));
        Session.inject_at t ~cycle:(c + d) (fun sim -> sim.Sim.release id)
      | Fault.Word_force (v, d) ->
        Session.inject_at t ~cycle:c (fun sim -> sim.Sim.force id v);
        Session.inject_at t ~cycle:(c + d) (fun sim -> sim.Sim.release id))
    resolved

let print_session_summary t (o : Session.outcome) =
  if o.Session.checkpoints_written > 0 then
    Printf.printf "checkpoints: %d written\n" o.Session.checkpoints_written;
  if o.Session.windows_verified > 0 then
    Printf.printf "shadow: %d window(s) verified\n" o.Session.windows_verified;
  List.iter
    (fun inc -> Printf.printf "incident: %s\n" (Incident.summary inc))
    o.Session.incidents;
  if o.Session.degraded then
    Printf.printf "degraded: session completed on %s\n" (Session.active_name t)

let session_json_fields _t (o : Session.outcome) resumed =
  Printf.sprintf
    "\"resumed_at\":%s,\"final_cycle\":%d,\"checkpoints\":%d,\"windows_verified\":%d,\"incidents\":%d,\"degraded\":%b"
    (match resumed with Some (c, _) -> string_of_int c | None -> "null")
    o.Session.final_cycle o.Session.checkpoints_written o.Session.windows_verified
    (List.length o.Session.incidents)
    o.Session.degraded

(* --- stats --------------------------------------------------------------- *)

let stats_cmd =
  let run file =
    let src = load_source file in
    let circuit, halt = (src.Compile.circuit, src.Compile.halt) in
    let s = Circuit.stats circuit in
    Printf.printf "design   : %s\n" (Circuit.name circuit);
    Printf.printf "unoptimized: %s\n" (Format.asprintf "%a" Circuit.pp_stats s);
    let c = Circuit.copy circuit in
    ignore (Pipeline.optimize ~level:Pipeline.O3 c);
    ignore (Circuit.compact c);
    Printf.printf "after -O3  : %s\n" (Format.asprintf "%a" Circuit.pp_stats (Circuit.stats c));
    if halt <> None then print_endline "design contains stop(): $halt output synthesized"
  in
  Cmd.v (Cmd.info "stats" ~doc:"Show IR statistics before and after optimization")
    Term.(const run $ file_arg)

(* --- emit ---------------------------------------------------------------- *)

let emit_cmd =
  let run file engine threads level max_supernode backend output =
    let circuit = (load_source file).Compile.circuit in
    let config = config_of_engine engine threads max_supernode level backend in
    let r = Gsim.emit_cpp config circuit in
    (match output with
     | Some path ->
       let oc = open_out path in
       output_string oc r.Emit.source;
       close_out oc;
       Printf.printf "wrote %s\n" path
     | None -> print_string r.Emit.source);
    Printf.eprintf "emission: %.3fs, code %d B, data %d B, memories %d B\n"
      r.Emit.emission_seconds r.Emit.code_bytes r.Emit.data_bytes r.Emit.mem_bytes
  in
  let output =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE.cpp")
  in
  Cmd.v (Cmd.info "emit" ~doc:"Emit C++ simulation code")
    Term.(const run $ file_arg $ engine_arg $ threads_arg $ level_arg $ supernode_arg
          $ backend_arg $ output)

(* --- emit-firrtl ----------------------------------------------------------- *)

let emit_fir_cmd =
  let run file level output =
    let circuit = (load_source file).Compile.circuit in
    (match Option.map Pipeline.level_of_string level with
     | Some (Some l) -> ignore (Pipeline.optimize ~level:l circuit)
     | Some None -> failwith "unknown optimization level"
     | None -> ());
    let r = Gsim_firrtl.Firrtl_emit.emit circuit in
    (match output with
     | Some path ->
       let oc = open_out path in
       output_string oc r.Gsim_firrtl.Firrtl_emit.text;
       close_out oc;
       Printf.printf "wrote %s\n" path
     | None -> print_string r.Gsim_firrtl.Firrtl_emit.text);
    List.iter
      (Printf.eprintf "warning: register %s lost its nonzero initial value\n")
      r.Gsim_firrtl.Firrtl_emit.lossy_inits
  in
  let output = Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE.fir") in
  Cmd.v
    (Cmd.info "emit-firrtl" ~doc:"Re-emit a design as flat FIRRTL (optionally optimized)")
    Term.(const run $ file_arg $ level_arg $ output)

(* --- sim ----------------------------------------------------------------- *)

let sim_cmd =
  (* The resilient path: the whole run goes through a Session, which owns
     instantiation (primary and fallback must share the kept-register
     set), periodic persistence, shadow verification, and degradation. *)
  let run_resilient circuit halt config scfg resume injects cycles pokes save_ck json =
    let resolved = resolve_injections circuit injects in
    let forcible = List.map (fun (_, (n : Circuit.node)) -> n.Circuit.id) resolved in
    let t = Session.create ~forcible scfg config circuit in
    Fun.protect ~finally:(fun () -> Session.destroy t) @@ fun () ->
    schedule_injections circuit t resolved;
    let resumed = if resume then Session.resume t else None in
    (match resumed with
     | Some (c, path) -> if not json then Printf.printf "resumed at cycle %d from %s\n" c path
     | None -> if resume && not json then print_endline "no checkpoint to resume from");
    let const_pokes = parse_pokes circuit pokes in
    let stimulus _cycle = const_pokes in
    let o = Session.run ~stimulus ?halt t cycles in
    let sim = Session.sim t in
    if json then begin
      let outputs =
        Circuit.outputs circuit
        |> List.map (fun (n : Circuit.node) ->
               Printf.sprintf "\"%s\":\"%s\"" n.Circuit.name
                 (Format.asprintf "%a" Bits.pp (sim.Sim.peek n.Circuit.id)))
        |> String.concat ","
      in
      Printf.printf "{\"engine\":\"%s\",\"cycles\":%d,\"outputs\":{%s},%s}\n"
        (Session.active_name t) o.Session.final_cycle outputs
        (session_json_fields t o resumed)
    end
    else begin
      if o.Session.halted then Printf.printf "$halt asserted at cycle %d\n" o.Session.final_cycle;
      Printf.printf "ran %d cycles (to cycle %d) on %s\n" o.Session.ran
        o.Session.final_cycle (Session.active_name t);
      List.iter
        (fun (n : Circuit.node) ->
          Printf.printf "  %-24s = %s\n" n.Circuit.name
            (Format.asprintf "%a" Bits.pp (sim.Sim.peek n.Circuit.id)))
        (Circuit.outputs circuit);
      print_session_summary t o
    end;
    match save_ck with
    | Some path ->
      Gsim_engine.Checkpoint.save path (Session.checkpoint t);
      if not json then Printf.printf "checkpoint written to %s\n" path
    | None -> ()
  in
  let run file engine threads level max_supernode backend cycles pokes vcd_path save_ck
      restore_ck coverage json ck_every ck_dir ring keyframe_every resume shadow_stride
      shadow_window watchdog incident_dir injects =
    let src = load_source file in
    let circuit, halt = (src.Compile.circuit, src.Compile.halt) in
    let config = config_of_engine engine threads max_supernode level backend in
    match
      session_config ck_every ck_dir ring keyframe_every resume shadow_stride
        shadow_window watchdog incident_dir injects
    with
    | Some scfg ->
      if coverage <> None || vcd_path <> None || restore_ck <> None then
        raise
          (Usage
             "--coverage/--vcd/--restore-checkpoint cannot be combined with resilience \
              options (use --checkpoint-dir/--resume instead)");
      run_resilient circuit halt config scfg resume injects cycles pokes save_ck json
    | None ->
    let compiled = Compile.realize (Compile.prepare config src) in
    let sim, finish_coverage = attach_coverage coverage compiled in
    let sim, close_vcd =
      match vcd_path with
      | Some path -> Gsim_engine.Vcd.to_file path sim
      | None -> (sim, fun () -> ())
    in
    (match restore_ck with
     | Some path -> Gsim_engine.Checkpoint.restore sim (Gsim_engine.Checkpoint.load path)
     | None -> ());
    List.iter
      (fun spec ->
        match String.split_on_char '=' spec with
        | [ name; value ] -> (
            match Circuit.find_node circuit name with
            | Some n ->
              sim.Sim.poke n.Circuit.id
                (Bits.of_int ~width:n.Circuit.width (int_of_string value))
            | None -> failwith (Printf.sprintf "no input named %S" name))
        | _ -> failwith (Printf.sprintf "bad poke %S (want name=value)" spec))
      pokes;
    let ran = ref 0 in
    (try
       for i = 1 to cycles do
         sim.Sim.step ();
         ran := i;
         match halt with
         | Some h when not (Bits.is_zero (sim.Sim.peek h)) -> raise Exit
         | _ -> ()
       done
     with Exit -> if not json then Printf.printf "$halt asserted at cycle %d\n" !ran);
    if json then begin
      let outputs =
        Circuit.outputs circuit
        |> List.map (fun (n : Circuit.node) ->
               Printf.sprintf "\"%s\":\"%s\"" n.Circuit.name
                 (Format.asprintf "%a" Bits.pp (sim.Sim.peek n.Circuit.id)))
        |> String.concat ","
      in
      Printf.printf "{\"engine\":\"%s\",\"cycles\":%d,\"outputs\":{%s},\"counters\":%s}\n"
        config.Gsim.config_name !ran outputs
        (Counters.to_json (sim.Sim.counters ()))
    end
    else begin
      Printf.printf "ran %d cycles on %s\n" !ran config.Gsim.config_name;
      List.iter
        (fun (n : Circuit.node) ->
          Printf.printf "  %-24s = %s\n" n.Circuit.name
            (Format.asprintf "%a" Bits.pp (sim.Sim.peek n.Circuit.id)))
        (Circuit.outputs circuit);
      Printf.printf "counters: %s\n"
        (Format.asprintf "%a" Counters.pp (sim.Sim.counters ()))
    end;
    finish_coverage ();
    (match save_ck with
     | Some path ->
       Gsim_engine.Checkpoint.save path (Gsim_engine.Checkpoint.capture sim);
       Printf.printf "checkpoint written to %s\n" path
     | None -> ());
    close_vcd ();
    compiled.Gsim.destroy ()
  in
  let cycles = Arg.(value & opt int 100 & info [ "cycles"; "n" ] ~doc:"Cycles to run") in
  let pokes =
    Arg.(value & opt_all string [] & info [ "poke"; "p" ] ~docv:"NAME=VAL" ~doc:"Drive an input")
  in
  let vcd =
    Arg.(value & opt (some string) None & info [ "vcd" ] ~docv:"FILE.vcd" ~doc:"Dump waveforms")
  in
  let save_ck =
    Arg.(value & opt (some string) None
         & info [ "save-checkpoint" ] ~docv:"FILE" ~doc:"Write final state as a checkpoint")
  in
  let restore_ck =
    Arg.(value & opt (some string) None
         & info [ "restore-checkpoint" ] ~docv:"FILE" ~doc:"Start from a checkpoint")
  in
  Cmd.v (Cmd.info "sim" ~doc:"Simulate a FIRRTL design")
    Term.(const run $ file_arg $ engine_arg $ threads_arg $ level_arg $ supernode_arg
          $ backend_arg $ cycles $ pokes $ vcd $ save_ck $ restore_ck $ coverage_arg
          $ json_arg $ ck_every_arg $ ck_dir_arg $ ck_ring_arg $ keyframe_arg
          $ resume_arg $ shadow_arg $ shadow_window_arg $ watchdog_arg
          $ incident_dir_arg $ inject_arg)

(* --- run ----------------------------------------------------------------- *)

let run_cmd =
  let run_resilient core prog design _workload config scfg resume injects max_cycles json =
    let circuit = core.Stu_core.circuit in
    let resolved = resolve_injections circuit injects in
    let forcible = List.map (fun (_, (n : Circuit.node)) -> n.Circuit.id) resolved in
    let t = Session.create ~forcible scfg config circuit in
    Fun.protect ~finally:(fun () -> Session.destroy t) @@ fun () ->
    schedule_injections circuit t resolved;
    let resumed = if resume then Session.resume t else None in
    (match resumed with
     | Some (c, path) -> if not json then Printf.printf "resumed at cycle %d from %s\n" c path
     | None ->
       (* A fresh session loads the program; a resumed one gets its memory
          image (and any stores the program already did) from the
          checkpoint. *)
       Designs.load_program (Session.sim t) core.Stu_core.h prog);
    let t0 = Unix.gettimeofday () in
    let o = Session.run ~halt:core.Stu_core.h.Stu_core.halt t max_cycles in
    let dt = Unix.gettimeofday () -. t0 in
    let sim = Session.sim t in
    if json then
      Printf.printf
        "{\"design\":\"%s\",\"workload\":\"%s\",\"engine\":\"%s\",\"cycles\":%d,\"instructions\":%d,\"seconds\":%.6f,%s}\n"
        design prog.Gsim_designs.Isa.prog_name (Session.active_name t)
        o.Session.final_cycle
        (Sim.peek_int sim core.Stu_core.h.Stu_core.instret)
        dt
        (session_json_fields t o resumed)
    else begin
      Printf.printf "%s on %s: %s at cycle %d, %d instructions in %.3fs\n"
        prog.Gsim_designs.Isa.prog_name (Session.active_name t)
        (if o.Session.halted then "halted" else "cycle budget exhausted")
        o.Session.final_cycle
        (Sim.peek_int sim core.Stu_core.h.Stu_core.instret)
        dt;
      print_session_summary t o
    end
  in
  let run design workload engine threads level max_supernode backend max_cycles coverage
      json ck_every ck_dir ring keyframe_every resume shadow_stride shadow_window
      watchdog incident_dir injects =
    let d =
      match Designs.by_name design with
      | Some d -> d
      | None ->
        failwith
          (Printf.sprintf "unknown design %S (one of: %s)" design
             (String.concat ", " (List.map (fun d -> d.Designs.design_name) Designs.all)))
    in
    let prog =
      match Programs.by_name workload with
      | Some mk -> mk ()
      | None ->
        failwith
          (Printf.sprintf "unknown workload %S (one of: %s)" workload
             (String.concat ", " Programs.names))
    in
    let core = d.Designs.build () in
    if not json then Printf.printf "%s\n" (Designs.stats_line core.Stu_core.circuit);
    let config = config_of_engine engine threads max_supernode level backend in
    match
      session_config ck_every ck_dir ring keyframe_every resume shadow_stride
        shadow_window watchdog incident_dir injects
    with
    | Some scfg ->
      if coverage <> None then
        raise (Usage "--coverage cannot be combined with resilience options");
      run_resilient core prog design workload config scfg resume injects max_cycles json
    | None ->
    let compiled = Gsim.instantiate config core.Stu_core.circuit in
    let sim, finish_coverage = attach_coverage coverage compiled in
    Designs.load_program sim core.Stu_core.h prog;
    (* Write coverage even when the workload exhausts its cycle budget. *)
    Fun.protect ~finally:finish_coverage @@ fun () ->
    let t0 = Unix.gettimeofday () in
    let cycles = Designs.run_program ~max_cycles sim core.Stu_core.h in
    let dt = Unix.gettimeofday () -. t0 in
    let ctr = sim.Sim.counters () in
    let af =
      Counters.activity_factor ctr ~total_nodes:(Circuit.node_count core.Stu_core.circuit)
    in
    if json then
      Printf.printf
        "{\"design\":\"%s\",\"workload\":\"%s\",\"engine\":\"%s\",\"cycles\":%d,\"instructions\":%d,\"seconds\":%.6f,\"hz\":%.0f,\"activity_factor\":%.6f,\"counters\":%s}\n"
        design prog.Gsim_designs.Isa.prog_name config.Gsim.config_name cycles
        (Sim.peek_int sim core.Stu_core.h.Stu_core.instret)
        dt
        (float_of_int cycles /. dt)
        af (Counters.to_json ctr)
    else
      Printf.printf "%s on %s: %d cycles, %d instructions in %.3fs (%.0f Hz, af %.2f%%)\n"
        prog.Gsim_designs.Isa.prog_name config.Gsim.config_name cycles
        (Sim.peek_int sim core.Stu_core.h.Stu_core.instret)
        dt
        (float_of_int cycles /. dt)
        (100. *. af);
    compiled.Gsim.destroy ()
  in
  let design =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"DESIGN" ~doc:"stucore|rocket|boom|xiangshan")
  in
  let workload =
    Arg.(value & pos 1 string "coremark" & info [] ~docv:"WORKLOAD" ~doc:"Program name")
  in
  let max_cycles =
    Arg.(value & opt int 2_000_000 & info [ "max-cycles" ] ~doc:"Abort if no halt")
  in
  Cmd.v (Cmd.info "run" ~doc:"Run a built-in workload on a built-in design")
    Term.(const run $ design $ workload $ engine_arg $ threads_arg $ level_arg $ supernode_arg
          $ backend_arg $ max_cycles $ coverage_arg $ json_arg $ ck_every_arg $ ck_dir_arg
          $ ck_ring_arg $ keyframe_arg $ resume_arg $ shadow_arg $ shadow_window_arg
          $ watchdog_arg $ incident_dir_arg $ inject_arg)

(* --- cov ----------------------------------------------------------------- *)

(* gsim cov collect TARGET [WORKLOAD] -o FILE.cov
   TARGET is either a design file (.fir/.v) driven with --poke for a fixed
   cycle count, or a built-in design name running a built-in workload. *)
let cov_collect_cmd =
  let run target workload engine threads level max_supernode backend cycles pokes out =
    let config = config_of_engine engine threads max_supernode level backend in
    if Sys.file_exists target then begin
      let src = load_source target in
      let circuit, halt = (src.Compile.circuit, src.Compile.halt) in
      let compiled = Compile.realize (Compile.prepare config src) in
      let sim, finish = attach_coverage (Some out) compiled in
      List.iter
        (fun spec ->
          match String.split_on_char '=' spec with
          | [ name; value ] -> (
              match Circuit.find_node circuit name with
              | Some n ->
                sim.Sim.poke n.Circuit.id
                  (Bits.of_int ~width:n.Circuit.width (int_of_string value))
              | None -> failwith (Printf.sprintf "no input named %S" name))
          | _ -> failwith (Printf.sprintf "bad poke %S (want name=value)" spec))
        pokes;
      (try
         for _ = 1 to cycles do
           sim.Sim.step ();
           match halt with
           | Some h when not (Bits.is_zero (sim.Sim.peek h)) -> raise Exit
           | _ -> ()
         done
       with Exit -> ());
      finish ();
      compiled.Gsim.destroy ()
    end
    else begin
      let d =
        match Designs.by_name target with
        | Some d -> d
        | None ->
          failwith
            (Printf.sprintf "%S is neither a file nor a built-in design (one of: %s)" target
               (String.concat ", " (List.map (fun d -> d.Designs.design_name) Designs.all)))
      in
      let prog =
        match Programs.by_name workload with
        | Some mk -> mk ()
        | None ->
          failwith
            (Printf.sprintf "unknown workload %S (one of: %s)" workload
               (String.concat ", " Programs.names))
      in
      let core = d.Designs.build () in
      let compiled = Gsim.instantiate config core.Stu_core.circuit in
      let sim, finish = attach_coverage (Some out) compiled in
      Designs.load_program sim core.Stu_core.h prog;
      (* An exhausted cycle budget still yields valid coverage. *)
      (try ignore (Designs.run_program ~max_cycles:cycles sim core.Stu_core.h)
       with Failure _ -> ());
      finish ();
      compiled.Gsim.destroy ()
    end
  in
  let target =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"DESIGN|FILE.fir" ~doc:"Built-in design name or design file")
  in
  let workload = Arg.(value & pos 1 string "coremark" & info [] ~docv:"WORKLOAD") in
  let cycles =
    Arg.(value & opt int 100_000 & info [ "cycles"; "n" ] ~doc:"Cycle budget")
  in
  let pokes =
    Arg.(value & opt_all string [] & info [ "poke"; "p" ] ~docv:"NAME=VAL" ~doc:"Drive an input")
  in
  let out =
    Arg.(value & opt string "gsim.cov"
         & info [ "o"; "output" ] ~docv:"FILE.cov" ~doc:"Coverage database (merged into if present)")
  in
  Cmd.v
    (Cmd.info "collect" ~doc:"Run a design and collect coverage into a database file")
    Term.(const run $ target $ workload $ engine_arg $ threads_arg $ level_arg $ supernode_arg
          $ backend_arg $ cycles $ pokes $ out)

let cov_merge_cmd =
  let run out inputs =
    match List.map Cov_db.load inputs with
    | [] -> failwith "nothing to merge"
    | first :: rest ->
      let merged = List.fold_left Cov_db.merge first rest in
      Cov_db.save out merged;
      let s = Cov_db.summary merged in
      Printf.printf "merged %d database(s): %d run(s), %d cycles, %.1f%% -> %s\n"
        (List.length inputs) merged.Cov_db.runs merged.Cov_db.total_cycles
        (Cov_db.total_percent s) out
  in
  let out =
    Arg.(required & opt (some string) None
         & info [ "o"; "output" ] ~docv:"FILE.cov" ~doc:"Merged output database")
  in
  let inputs =
    Arg.(non_empty & pos_all file [] & info [] ~docv:"FILE.cov" ~doc:"Input databases")
  in
  Cmd.v
    (Cmd.info "merge" ~doc:"Merge coverage databases from independent runs")
    Term.(const run $ out $ inputs)

let cov_report_cmd =
  let run file json uncovered =
    let db = Cov_db.load file in
    if json then print_endline (Cov_report.to_json ~uncovered:(uncovered > 0) db)
    else print_string (Cov_report.to_string ~uncovered db)
  in
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.cov" ~doc:"Coverage database")
  in
  let uncovered =
    Arg.(value & opt int 0
         & info [ "uncovered"; "u" ] ~docv:"N" ~doc:"List up to N uncovered points (text mode)")
  in
  Cmd.v
    (Cmd.info "report" ~doc:"Render a coverage database as a hierarchical report")
    Term.(const run $ file $ json_arg $ uncovered)

let cov_cmd =
  Cmd.group
    (Cmd.info "cov" ~doc:"Coverage: collect from runs, merge databases, render reports")
    [ cov_collect_cmd; cov_merge_cmd; cov_report_cmd ]

(* --- fault --------------------------------------------------------------- *)

let fault_campaign_cmd =
  let run file engine threads level max_supernode backend horizon budget nfaults seed models
      duration fault_keys pokes db_path resume stop_after latent golden_dir json =
    let circuit = (load_source file).Compile.circuit in
    let config = config_of_engine engine threads max_supernode level backend in
    let cfg = { Campaign.horizon; budget } in
    let models =
      Option.map
        (fun s ->
          List.map
            (function
              | "seu" -> `Seu
              | "stuck0" -> `Stuck0
              | "stuck1" -> `Stuck1
              | "word" -> `Word
              | other ->
                failwith
                  (Printf.sprintf "unknown fault model %S (seu, stuck0, stuck1, word)" other))
            (String.split_on_char ',' s))
        models
    in
    let faults =
      List.map Fault.of_key fault_keys
      @ (if nfaults > 0 then Fault.random ?models ~duration ~seed ~count:nfaults ~horizon circuit
         else [])
    in
    if faults = [] then failwith "no faults to inject: give --faults N and/or --fault KEY";
    let const_pokes = parse_pokes circuit pokes in
    let stimulus _cycle = const_pokes in
    (* The on-disk database is the crash-safety mechanism: records are
       appended (and flushed) as they are produced, so a killed campaign
       leaves a loadable prefix that --resume skips. *)
    let partial =
      if resume && Sys.file_exists db_path then Fault_db.load ~lenient:true db_path
      else Fault_db.create ~design:(Circuit.name circuit) ~horizon ()
    in
    Fault_db.init_file db_path partial;
    let skip k = Fault_db.mem partial k in
    let total = List.length faults in
    let progress d _ =
      if not json then Printf.eprintf "\r[%d/%d]%!" (d + Fault_db.count partial) total
    in
    let fresh =
      Campaign.run ~skip
        ~on_record:(Fault_db.append_record db_path)
        ~progress ?stop_after ~stimulus ?golden_dir cfg config circuit faults
    in
    if not json then Printf.eprintf "\r%!";
    let db = Fault_db.merge partial fresh in
    (* Canonical sorted rewrite: an interrupted-then-resumed campaign ends
       with a byte-identical database to an uninterrupted one. *)
    Fault_db.save db_path db;
    if json then print_endline (Fault_report.to_json db)
    else begin
      print_string (Fault_report.to_string ~latent db);
      Printf.printf "database: %s (%d of %d fault(s) done)\n" db_path (Fault_db.count db) total
    end
  in
  let horizon =
    Arg.(value & opt int Campaign.default_config.Campaign.horizon
         & info [ "cycles"; "n" ] ~docv:"N" ~doc:"Golden-run horizon in cycles")
  in
  let budget =
    Arg.(value & opt int Campaign.default_config.Campaign.budget
         & info [ "budget" ] ~docv:"N" ~doc:"Observation window per fault (watchdog)")
  in
  let nfaults =
    Arg.(value & opt int 0
         & info [ "faults" ] ~docv:"N" ~doc:"Draw N random faults over the design's signals")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Random fault-list seed") in
  let models =
    Arg.(value & opt (some string) None
         & info [ "models" ] ~docv:"M,M" ~doc:"Restrict random faults: seu, stuck0, stuck1, word")
  in
  let duration =
    Arg.(value & opt int 1 & info [ "duration" ] ~doc:"Duration of random stuck/word faults")
  in
  let fault_keys =
    Arg.(value & opt_all string []
         & info [ "fault"; "f" ] ~docv:"KEY"
             ~doc:"Inject a specific fault, e.g. cpu.pc#seu:3\\@120 (repeatable)")
  in
  let pokes =
    Arg.(value & opt_all string []
         & info [ "poke"; "p" ] ~docv:"NAME=VAL"
             ~doc:"Drive an input every cycle (golden and faulty runs alike)")
  in
  let db_path =
    Arg.(value & opt string "gsim.fdb"
         & info [ "db"; "o" ] ~docv:"FILE.fdb" ~doc:"Campaign database (appended as faults finish)")
  in
  let resume =
    Arg.(value & flag
         & info [ "resume" ] ~doc:"Skip faults already classified in the database")
  in
  let stop_after =
    Arg.(value & opt (some int) None
         & info [ "stop-after" ] ~docv:"N" ~doc:"Classify at most N faults, then exit (sharding)")
  in
  let latent =
    Arg.(value & opt int 0
         & info [ "latent" ] ~docv:"N" ~doc:"List up to N latent faults in the text report")
  in
  let golden_dir =
    Arg.(value & opt (some string) None
         & info [ "checkpoint-dir" ] ~docv:"DIR"
             ~doc:"Persist the golden run's checkpoints, output trace and SEU samples \
                   here (crash-safe); a resumed campaign reuses them instead of \
                   re-simulating the golden pass")
  in
  Cmd.v
    (Cmd.info "campaign"
       ~doc:"Run a fault-injection campaign against a golden run of the design")
    Term.(const run $ file_arg $ engine_arg $ threads_arg $ level_arg $ supernode_arg
          $ backend_arg $ horizon $ budget $ nfaults $ seed $ models $ duration $ fault_keys
          $ pokes $ db_path $ resume $ stop_after $ latent $ golden_dir $ json_arg)

let fault_merge_cmd =
  let run out inputs =
    match List.map (fun p -> Fault_db.load p) inputs with
    | [] -> failwith "nothing to merge"
    | first :: rest ->
      let merged = List.fold_left Fault_db.merge first rest in
      Fault_db.save out merged;
      let s = Fault_db.summary merged in
      Printf.printf "merged %d shard(s): %d fault(s), %.1f%% coverage -> %s\n"
        (List.length inputs) s.Fault_db.total (Fault_db.coverage_percent s) out
  in
  let out =
    Arg.(required & opt (some string) None
         & info [ "o"; "output" ] ~docv:"FILE.fdb" ~doc:"Merged output database")
  in
  let inputs =
    Arg.(non_empty & pos_all file [] & info [] ~docv:"FILE.fdb" ~doc:"Shard databases")
  in
  Cmd.v
    (Cmd.info "merge" ~doc:"Merge fault-campaign shards over disjoint fault lists")
    Term.(const run $ out $ inputs)

let fault_report_cmd =
  let run file json latent per_fault =
    let db = Fault_db.load file in
    if json then print_endline (Fault_report.to_json ~faults:per_fault db)
    else print_string (Fault_report.to_string ~latent db)
  in
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.fdb" ~doc:"Campaign database")
  in
  let latent =
    Arg.(value & opt int 0
         & info [ "latent" ] ~docv:"N" ~doc:"List up to N latent faults (text mode)")
  in
  let per_fault =
    Arg.(value & flag & info [ "faults" ] ~doc:"Include the per-fault array (JSON mode)")
  in
  Cmd.v
    (Cmd.info "report" ~doc:"Render a fault-campaign database")
    Term.(const run $ file $ json_arg $ latent $ per_fault)

let fault_cmd =
  Cmd.group
    (Cmd.info "fault"
       ~doc:"Fault injection: run campaigns, merge shards, render reports")
    [ fault_campaign_cmd; fault_merge_cmd; fault_report_cmd ]

(* --- fuzz ---------------------------------------------------------------- *)

let fuzz_dir_arg =
  Arg.(value & opt string "fuzz-out"
       & info [ "dir"; "d" ] ~docv:"DIR"
           ~doc:"Campaign directory: fuzz.db corpus plus fuzz-NNN.rpt repros")

let fuzz_inject_arg =
  Arg.(value & flag
       & info [ "inject-miscompile" ]
           ~doc:"CI canary: enable the test-only Simplify constant-folding \
                 miscompile; the campaign must catch, shrink and bisect it")

let fuzz_run_cmd =
  let run dir seed cases from seconds cycles setups watchdog shrink_checks
      resume inject fail_on_find json =
    let setups =
      match setups with
      | None -> Fuzz.default_setups
      | Some s ->
        List.map Fuzz.setup_of_name (String.split_on_char ',' s)
    in
    let campaign =
      { Fuzz.default_campaign with
        Fuzz.seed;
        cases;
        start_case = from;
        seconds;
        cycles;
        setups;
        watchdog;
        shrink_budget = shrink_checks;
        dir;
        inject_miscompile = inject }
    in
    let result = Fuzz.run ~resume ~log:print_endline campaign in
    if json then print_endline (Fuzz.report_json result.Fuzz.db)
    else begin
      print_string (Fuzz.report_text result.Fuzz.db);
      Printf.printf "this run: %d case(s) executed, %d skipped%s\n"
        result.Fuzz.ran result.Fuzz.skipped
        (if result.Fuzz.out_of_time then " (time budget reached)" else "")
    end;
    if fail_on_find && Fuzz_corpus.failures result.Fuzz.db <> [] then exit 1
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Campaign seed; same seed, same cases and repro buckets") in
  let cases =
    Arg.(value & opt int 200
         & info [ "cases"; "n" ] ~docv:"N" ~doc:"Number of case indices to explore")
  in
  let from =
    Arg.(value & opt int 0
         & info [ "from" ] ~docv:"I" ~doc:"First case index (sharding: disjoint ranges, then fuzz merge)")
  in
  let seconds =
    Arg.(value & opt (some float) None
         & info [ "seconds" ] ~docv:"S" ~doc:"Wall-clock budget; stop early when exceeded")
  in
  let cycles =
    Arg.(value & opt int Fuzz.default_campaign.Fuzz.cycles
         & info [ "cycles" ] ~docv:"N" ~doc:"Stimulus length per case")
  in
  let setups =
    Arg.(value & opt (some string) None
         & info [ "setups" ] ~docv:"S,S"
             ~doc:"Comma-separated engine+backend subjects (e.g. gsim+bytecode,essent+closures); \
                   default: all four presets with both interpreted backends, plus \
                   native subjects when a C compiler is available")
  in
  let watchdog =
    Arg.(value & opt float Fuzz.default_campaign.Fuzz.watchdog
         & info [ "watchdog" ] ~docv:"S" ~doc:"Per-subject hang watchdog, seconds")
  in
  let shrink_checks =
    Arg.(value & opt int Fuzz.default_campaign.Fuzz.shrink_budget
         & info [ "shrink-checks" ] ~docv:"N" ~doc:"Re-validation budget for the delta-debugging shrinker")
  in
  let resume =
    Arg.(value & flag & info [ "resume" ] ~doc:"Skip cases already recorded in DIR/fuzz.db")
  in
  let fail_on_find =
    Arg.(value & flag
         & info [ "fail-on-find" ] ~doc:"Exit 1 if the corpus holds any failure (CI gate)")
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:"Run a differential fuzz campaign over the engine/backend matrix")
    Term.(const run $ fuzz_dir_arg $ seed $ cases $ from $ seconds $ cycles
          $ setups $ watchdog $ shrink_checks $ resume $ fuzz_inject_arg
          $ fail_on_find $ json_arg)

let fuzz_replay_cmd =
  let run file inject watchdog =
    let r = Fuzz.replay ~watchdog ~inject_miscompile:inject file in
    let repro = r.Fuzz.rp_repro in
    Printf.printf "repro:    %s (seed %d case %d, %s, %s)\n" file
      repro.Gsim_verify.Repro.seed repro.Gsim_verify.Repro.case
      repro.Gsim_verify.Repro.subject repro.Gsim_verify.Repro.culprit_detail;
    Printf.printf "expected: %s\n" r.Fuzz.rp_expected_signature;
    Printf.printf "actual:   %s\n" r.Fuzz.rp_actual;
    if r.Fuzz.rp_reproduced then print_endline "REPRODUCED"
    else begin
      print_endline "NOT REPRODUCED";
      exit 1
    end
  in
  let file =
    Arg.(required & pos 0 (some file) None
         & info [] ~docv:"FUZZ-NNN.RPT" ~doc:"Repro report to replay")
  in
  let watchdog =
    Arg.(value & opt float 10.0 & info [ "watchdog" ] ~docv:"S")
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:"Rebuild a recorded repro and check that its failure signature recurs")
    Term.(const run $ file $ fuzz_inject_arg $ watchdog)

let fuzz_report_cmd =
  let run path json =
    let path =
      if Sys.is_directory path then Filename.concat path "fuzz.db" else path
    in
    let db = Fuzz_corpus.load ~lenient:true path in
    if json then print_endline (Fuzz.report_json db)
    else print_string (Fuzz.report_text db)
  in
  let path =
    Arg.(required & pos 0 (some file) None
         & info [] ~docv:"DIR|FUZZ.DB" ~doc:"Campaign directory or corpus file")
  in
  Cmd.v
    (Cmd.info "report" ~doc:"Render a fuzz corpus")
    Term.(const run $ path $ json_arg)

let fuzz_merge_cmd =
  let run out inputs =
    match List.map (fun p -> Fuzz_corpus.load p) inputs with
    | [] -> failwith "nothing to merge"
    | first :: rest ->
      let merged = List.fold_left Fuzz_corpus.merge first rest in
      Fuzz_corpus.save out merged;
      Printf.printf "merged %d shard(s): %d case(s), %d failing -> %s\n"
        (List.length inputs) (Fuzz_corpus.count merged)
        (List.length (Fuzz_corpus.failures merged)) out
  in
  let out =
    Arg.(required & opt (some string) None
         & info [ "o"; "output" ] ~docv:"FUZZ.DB" ~doc:"Merged output corpus")
  in
  let inputs =
    Arg.(non_empty & pos_all file [] & info [] ~docv:"FUZZ.DB" ~doc:"Shard corpora (same seed, disjoint case ranges)")
  in
  Cmd.v
    (Cmd.info "merge" ~doc:"Merge fuzz-campaign shards over disjoint case ranges")
    Term.(const run $ out $ inputs)

let fuzz_cmd =
  Cmd.group
    (Cmd.info "fuzz"
       ~doc:"Differential fuzzing: campaigns with delta-debugging shrinking and \
             pass-pipeline bisection, replayable repros, crash-safe corpus")
    [ fuzz_run_cmd; fuzz_replay_cmd; fuzz_report_cmd; fuzz_merge_cmd ]

(* --- equiv --------------------------------------------------------------- *)

let equiv_cmd =
  let run file_a file_b cycles seed =
    let ca = (load_source file_a).Compile.circuit in
    let cb = (load_source file_b).Compile.circuit in
    (* Interfaces must match by name. *)
    let names c =
      List.map (fun (n : Circuit.node) -> (n.Circuit.name, n.Circuit.width)) (Circuit.inputs c)
      |> List.sort compare
    in
    if names ca <> names cb then failwith "designs have different input interfaces";
    let common_observed =
      let of_c c =
        Circuit.fold_nodes c ~init:[] ~f:(fun acc n ->
            if n.Circuit.is_output then (n.Circuit.name, n.Circuit.width) :: acc else acc)
        |> List.sort compare
      in
      let a = of_c ca and b = of_c cb in
      List.filter (fun x -> List.mem x b) a
    in
    if common_observed = [] then failwith "no common outputs to compare";
    let st = Random.State.make [| seed |] in
    let stimulus =
      Array.init cycles (fun _ ->
          List.map
            (fun (name, w) -> (name, Bits.random st ~width:w))
            (names ca))
    in
    let trace c =
      let compiled = Gsim.instantiate Gsim.gsim c in
      let sim = compiled.Gsim.sim in
      let id name = (Option.get (Circuit.find_node c name)).Circuit.id in
      let out =
        Array.map
          (fun pokes ->
            List.iter (fun (name, v) -> sim.Sim.poke (id name) v) pokes;
            sim.Sim.step ();
            List.map (fun (name, _) -> sim.Sim.peek (id name)) common_observed)
          stimulus
      in
      compiled.Gsim.destroy ();
      out
    in
    let ta = trace ca and tb = trace cb in
    let diverged = ref None in
    Array.iteri
      (fun i row ->
        if !diverged = None && not (List.equal Bits.equal row tb.(i)) then diverged := Some i)
      ta;
    (match !diverged with
     | None ->
       Printf.printf "EQUIVALENT over %d random cycles on %d shared outputs (%s)\n" cycles
         (List.length common_observed)
         (String.concat ", " (List.map fst common_observed))
     | Some cycle ->
       Printf.printf "DIVERGED at cycle %d:\n" cycle;
       List.iteri
         (fun k (name, _) ->
           let va = List.nth ta.(cycle) k and vb = List.nth tb.(cycle) k in
           if not (Bits.equal va vb) then
             Printf.printf "  %-20s %s vs %s\n" name
               (Format.asprintf "%a" Bits.pp va)
               (Format.asprintf "%a" Bits.pp vb))
         common_observed;
       exit 1)
  in
  let file_a = Arg.(required & pos 0 (some file) None & info [] ~docv:"A.fir|A.v") in
  let file_b = Arg.(required & pos 1 (some file) None & info [] ~docv:"B.fir|B.v") in
  let cycles = Arg.(value & opt int 1000 & info [ "cycles"; "n" ]) in
  let seed = Arg.(value & opt int 42 & info [ "seed" ]) in
  Cmd.v
    (Cmd.info "equiv"
       ~doc:"Random-stimulus equivalence check of two designs (by shared port names)")
    Term.(const run $ file_a $ file_b $ cycles $ seed)

(* --- profile ------------------------------------------------------------- *)

let profile_cmd =
  let run design workload level max_supernode cycles top =
    let d =
      match Designs.by_name design with
      | Some d -> d
      | None -> failwith (Printf.sprintf "unknown design %S" design)
    in
    let prog =
      match Programs.by_name workload with
      | Some mk -> mk ()
      | None -> failwith (Printf.sprintf "unknown workload %S" workload)
    in
    let core = d.Designs.build () in
    let level =
      match Option.map Pipeline.level_of_string level with
      | Some (Some l) -> l
      | Some None -> failwith "unknown optimization level"
      | None -> Pipeline.O3
    in
    ignore (Pipeline.optimize ~level core.Stu_core.circuit);
    let part = Gsim_partition.Partition.gsim core.Stu_core.circuit ~max_size:max_supernode in
    let engine = Gsim_engine.Activity.create core.Stu_core.circuit part in
    let sim = Gsim_engine.Activity.sim engine in
    Designs.load_program sim core.Stu_core.h prog;
    Designs.run_cycles sim cycles;
    let report = Gsim_engine.Profile.analyze ~top core.Stu_core.circuit part engine in
    Format.printf "%a" Gsim_engine.Profile.pp report
  in
  let design =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"DESIGN")
  in
  let workload = Arg.(value & pos 1 string "coremark" & info [] ~docv:"WORKLOAD") in
  let cycles = Arg.(value & opt int 5000 & info [ "cycles"; "n" ]) in
  let top = Arg.(value & opt int 20 & info [ "top" ] ~doc:"Entries to show") in
  Cmd.v
    (Cmd.info "profile" ~doc:"Report the hottest supernodes for a design/workload pair")
    Term.(const run $ design $ workload $ level_arg $ supernode_arg $ cycles $ top)

(* --- serve / remote ------------------------------------------------------ *)

module SP = Server_protocol

let read_text_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let to_arg =
  Arg.(value & opt string "gsimd.sock"
       & info [ "to" ] ~docv:"ADDR"
           ~doc:"Server address: a Unix socket path, or host:port for TCP")

let priority_arg default =
  Arg.(value & opt string default
       & info [ "priority" ] ~docv:"P"
           ~doc:"Scheduling class: interactive (preempts batch work) or batch")

let engine_opts_of engine threads level max_supernode backend =
  (* Validate locally so a typo fails before the job ships. *)
  ignore (config_of_engine engine threads max_supernode level backend);
  { SP.eo_engine = engine; eo_backend = backend; eo_level = level;
    eo_max_supernode = max_supernode; eo_threads = threads }

let remote_call ?(timeout = 0.) ?(retries = 0) ?token address request =
  (* Auto-mint an idempotency token whenever retries could resubmit a
     job-bearing request, so a retry after a torn response can never run
     the job twice. *)
  let token =
    match (token, request) with
    | (Some tok, _) when tok <> "" -> Some tok
    | _, (SP.Status | SP.Shutdown) -> None
    | _ when retries > 0 ->
      Some (Printf.sprintf "cli-%d-%.6f" (Unix.getpid ()) (Unix.gettimeofday ()))
    | _ -> None
  in
  try Server_client.call_robust ~timeout ~retries ?token (SP.address_of_string address) request
  with
  | Server_client.Timeout _ ->
    failwith
      (Printf.sprintf
         "no response from gsimd at %s within %gs — raise --timeout, check 'gsim remote \
          status', or restart the daemon"
         address timeout)
  | Unix.Unix_error (e, _, _) ->
    failwith
      (Printf.sprintf "cannot reach gsimd at %s: %s (is the daemon running?)" address
         (Unix.error_message e))

let check_error = function
  | SP.Error_resp e ->
    let attempts =
      if e.SP.ei_attempts > 1 then Printf.sprintf " (after %d attempts)" e.SP.ei_attempts
      else ""
    in
    let retry_hint =
      if e.SP.ei_retry_after > 0. then
        Printf.sprintf " — server suggests retrying in %.0f s" e.SP.ei_retry_after
      else ""
    in
    failwith
      (Printf.sprintf "server: [%s] %s%s%s"
         (SP.error_code_to_string e.SP.ei_code)
         e.SP.ei_message attempts retry_hint)
  | r -> r

let timeout_arg =
  Arg.(value & opt float 0.
       & info [ "timeout" ] ~docv:"SECONDS"
           ~doc:"Give up on a connect or response after this long (0 waits forever)")

let retries_arg =
  Arg.(value & opt int 2
       & info [ "retries" ] ~docv:"N"
           ~doc:"Reconnect and resubmit up to N times on timeouts and torn connections; \
                 resubmissions carry an idempotency token so the job never runs twice")

let token_arg =
  Arg.(value & opt string ""
       & info [ "token" ] ~docv:"TOKEN"
           ~doc:"Idempotency token for resubmission (default: auto-generated when \
                 --retries > 0)")

let tenant_arg =
  Arg.(value & opt string ""
       & info [ "tenant" ] ~docv:"NAME"
           ~doc:"Tenant id for fair scheduling, quotas and per-tenant accounting \
                 (default: a per-connection id assigned by the server)")

let deadline_arg =
  Arg.(value & opt float 0.
       & info [ "deadline" ] ~docv:"SECONDS"
           ~doc:"End-to-end deadline: the server stops working on the job this long \
                 after admitting it and answers deadline-exceeded (0 = none)")

let tenant_of s = if s = "" then None else Some s

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* --- ckpt ----------------------------------------------------------------
   Inspect a checkpoint store: materialize the newest intact generation
   (walking its delta chain) and print it in the full-keyframe text
   format — what a resume would restore, byte-comparable across runs
   regardless of where each run's keyframe/delta boundaries fell. *)
let ckpt_cmd =
  let module Store = Gsim_resilience.Store in
  let run dir lenient list =
    let store = Store.create ~ring:0 dir in
    if list then
      List.iter
        (fun (cycle, path, kind) ->
          Printf.printf "%-5s %12d %s\n"
            (match kind with `Full -> "full" | `Delta -> "delta")
            cycle path)
        (Store.generations store)
    else
      match Store.latest ~lenient store with
      | Some (ck, _) -> print_string (Gsim_engine.Checkpoint.to_string ck)
      | None -> failwith (Printf.sprintf "no recoverable generation in %s" dir)
  in
  let dir =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"DIR" ~doc:"Checkpoint store directory")
  in
  let lenient =
    Arg.(value & flag
         & info [ "lenient" ]
             ~doc:"Fall back to last-complete-section recovery of the newest keyframe \
                   when every generation fails validation")
  in
  let list =
    Arg.(value & flag
         & info [ "list" ] ~doc:"List every generation (cycle, kind, path) instead")
  in
  Cmd.v
    (Cmd.info "ckpt"
       ~doc:"Materialize and print the newest recoverable checkpoint generation")
    Term.(const run $ dir $ lenient $ list)

let serve_cmd =
  let run listen workers queue cache stride spool logfile chaos hang_timeout max_retries
      budget high_water backlog_seconds tenant_quota spool_quota =
    let address = SP.address_of_string listen in
    let chaos =
      match Gsim_server.Chaos.spec_of_string chaos with
      | spec -> spec
      | exception Failure msg -> raise (Usage msg)
    in
    let budgets =
      match Gsim_server.Admission.budgets_of_string budget with
      | b -> b
      | exception Failure msg -> raise (Usage msg)
    in
    let log, close_log =
      match logfile with
      | Some path ->
        let oc = open_out path in
        (oc, fun () -> close_out_noerr oc)
      | None -> (stderr, fun () -> ())
    in
    let dflt = Daemon.default_config address in
    let cfg =
      {
        dflt with
        Daemon.workers = (if workers > 0 then workers else dflt.Daemon.workers);
        queue_capacity = queue;
        cache_capacity = cache;
        preempt_stride = stride;
        spool;
        log;
        chaos;
        supervision =
          {
            dflt.Daemon.supervision with
            Gsim_server.Supervisor.hang_timeout;
            max_retries;
          };
        budgets;
        high_water;
        max_backlog_seconds = backlog_seconds;
        tenant_quota;
        spool_quota_mb = spool_quota;
      }
    in
    Fun.protect ~finally:close_log (fun () -> Daemon.serve cfg)
  in
  let listen =
    Arg.(value & opt string "gsimd.sock"
         & info [ "listen"; "l" ] ~docv:"ADDR"
             ~doc:"Listen address: a Unix socket path, or host:port for TCP")
  in
  let workers =
    Arg.(value & opt int 0
         & info [ "workers"; "j" ] ~docv:"N"
             ~doc:"Worker domains (default: cores - 2, at least 2)")
  in
  let queue =
    Arg.(value & opt int 64
         & info [ "queue" ] ~docv:"N" ~doc:"Job-queue bound; submissions beyond it are refused")
  in
  let cache =
    Arg.(value & opt int 16
         & info [ "cache" ] ~docv:"N" ~doc:"Compiled-plan LRU entries (0 disables)")
  in
  let stride =
    Arg.(value & opt int 10_000
         & info [ "preempt-stride" ] ~docv:"N"
             ~doc:"Cycles a batch sim job runs between preemption checks (0 disables)")
  in
  let spool =
    Arg.(value & opt (some string) None
         & info [ "spool" ] ~docv:"DIR"
             ~doc:"Scratch root for checkpoints, golden traces and fuzz shards")
  in
  let logfile =
    Arg.(value & opt (some string) None
         & info [ "log" ] ~docv:"FILE" ~doc:"Append the server log here instead of stderr")
  in
  let chaos =
    Arg.(value & opt string ""
         & info [ "chaos" ] ~docv:"SPEC"
             ~doc:"Seeded fault injection, e.g. \
                   'seed=42,crash=0.1,hang=0.05,torn=0.02,slow=0.02,slow-ms=50,poison=MARK' \
                   (testing only)")
  in
  let hang_timeout =
    Arg.(value & opt float Gsim_server.Supervisor.default_policy.Gsim_server.Supervisor.hang_timeout
         & info [ "hang-timeout" ] ~docv:"SECONDS"
             ~doc:"Seconds without a worker heartbeat before a sim job is presumed hung, \
                   cancelled and retried")
  in
  let max_retries =
    Arg.(value & opt int Gsim_server.Supervisor.default_policy.Gsim_server.Supervisor.max_retries
         & info [ "max-retries" ] ~docv:"N"
             ~doc:"Retries per job after a worker loss before it fails with a structured \
                   error")
  in
  let budget =
    Arg.(value & opt string ""
         & info [ "budget" ] ~docv:"SPEC"
             ~doc:"Admission budgets, e.g. 'nodes=200000,width=4096,mem-mb=256,arena-mb=512,\
                   native-nodes=100000'; over-budget designs are refused before queueing \
                   (empty = unlimited)")
  in
  let high_water =
    Arg.(value & opt float 0.9
         & info [ "high-water" ] ~docv:"FRAC"
             ~doc:"Brownout threshold: shed new batch work once the batch band holds this \
                   fraction of --queue (0 disables)")
  in
  let backlog_seconds =
    Arg.(value & opt float 0.
         & info [ "backlog-seconds" ] ~docv:"SECONDS"
             ~doc:"Shed new batch work once the estimated backlog exceeds this many \
                   seconds (0 disables)")
  in
  let tenant_quota =
    Arg.(value & opt int 0
         & info [ "tenant-quota" ] ~docv:"N"
             ~doc:"Max queued jobs per tenant; past it the tenant is refused with a \
                   retry-after hint while others proceed (0 = unlimited)")
  in
  let spool_quota =
    Arg.(value & opt int 0
         & info [ "spool-quota-mb" ] ~docv:"MB"
             ~doc:"Disk budget for cached golden traces under --spool, evicted \
                   oldest-first (0 = unlimited)")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the gsimd job daemon (graceful drain on SIGTERM/SIGINT or 'remote shutdown')")
    Term.(const run $ listen $ workers $ queue $ cache $ stride $ spool $ logfile $ chaos
          $ hang_timeout $ max_retries $ budget $ high_water $ backlog_seconds
          $ tenant_quota $ spool_quota)

let remote_sim_cmd =
  let run to_ file engine threads level max_supernode backend cycles pokes priority json
      timeout retries token tenant deadline =
    let job =
      {
        SP.sj_filename = Filename.basename file;
        sj_design = read_text_file file;
        sj_opts = engine_opts_of engine threads level max_supernode backend;
        sj_cycles = cycles;
        sj_pokes = pokes;
        sj_token = None;
        sj_tenant = tenant_of tenant;
        sj_deadline = deadline;
      }
    in
    let req = SP.Sim (SP.priority_of_string priority, job) in
    match check_error (remote_call ~timeout ~retries ~token to_ req) with
    | SP.Sim_done r ->
      if json then begin
        let outputs =
          r.SP.sr_outputs
          |> List.map (fun (n, v) -> Printf.sprintf "\"%s\":\"%s\"" n v)
          |> String.concat ","
        in
        Printf.printf
          "{\"engine\":\"%s\",\"cycles\":%d,\"outputs\":{%s},\"cache_hit\":%b,\"compile_seconds\":%.6f,\"preemptions\":%d}\n"
          r.SP.sr_engine r.SP.sr_cycles outputs r.SP.sr_cache_hit r.SP.sr_compile_seconds
          r.SP.sr_preemptions
      end
      else begin
        if r.SP.sr_halted then Printf.printf "$halt asserted at cycle %d\n" r.SP.sr_cycles;
        Printf.printf "ran %d cycles on %s (remote%s)\n" r.SP.sr_cycles r.SP.sr_engine
          (if r.SP.sr_cache_hit then ", plan cache hit" else "");
        List.iter (fun (n, v) -> Printf.printf "  %-24s = %s\n" n v) r.SP.sr_outputs;
        if r.SP.sr_preemptions > 0 then
          Printf.printf "preempted %d time(s); resumed from checkpoint\n" r.SP.sr_preemptions
      end
    | _ -> failwith "unexpected response to sim request"
  in
  let cycles = Arg.(value & opt int 100 & info [ "cycles"; "n" ] ~doc:"Cycles to run") in
  let pokes =
    Arg.(value & opt_all string [] & info [ "poke"; "p" ] ~docv:"NAME=VAL" ~doc:"Drive an input")
  in
  Cmd.v
    (Cmd.info "sim" ~doc:"Run a simulation job on a gsimd server")
    Term.(const run $ to_arg $ file_arg $ engine_arg $ threads_arg $ level_arg
          $ supernode_arg $ backend_arg $ cycles $ pokes $ priority_arg "interactive"
          $ json_arg $ timeout_arg $ retries_arg $ token_arg $ tenant_arg $ deadline_arg)

let save_db_result ~out (r : SP.db_result) json =
  Gsim_resilience.Store.write_atomic out r.SP.dr_text;
  if json then
    Printf.printf
      "{\"kind\":\"%s\",\"summary\":\"%s\",\"database\":\"%s\",\"cache_hit\":%b,\"seconds\":%.3f}\n"
      r.SP.dr_kind (json_escape r.SP.dr_summary) (json_escape out) r.SP.dr_cache_hit
      r.SP.dr_seconds
  else begin
    Printf.printf "%s (%.3fs server-side%s)\n" r.SP.dr_summary r.SP.dr_seconds
      (if r.SP.dr_cache_hit then ", golden/plan cache hit" else "");
    Printf.printf "database: %s\n" out
  end

let remote_campaign_cmd =
  let run to_ file engine threads level max_supernode backend horizon budget nfaults seed
      models duration fault_keys pokes out priority json timeout retries token tenant
      deadline =
    let job =
      {
        SP.cj_filename = Filename.basename file;
        cj_design = read_text_file file;
        cj_opts = engine_opts_of engine threads level max_supernode backend;
        cj_horizon = horizon;
        cj_budget = budget;
        cj_faults = fault_keys;
        cj_random = nfaults;
        cj_seed = seed;
        cj_duration = duration;
        cj_models = models;
        cj_pokes = pokes;
        cj_token = None;
        cj_tenant = tenant_of tenant;
        cj_deadline = deadline;
      }
    in
    let req = SP.Campaign (SP.priority_of_string priority, job) in
    match check_error (remote_call ~timeout ~retries ~token to_ req) with
    | SP.Db_done r -> save_db_result ~out r json
    | _ -> failwith "unexpected response to campaign request"
  in
  let horizon =
    Arg.(value & opt int Campaign.default_config.Campaign.horizon
         & info [ "cycles"; "n" ] ~docv:"N" ~doc:"Golden-run horizon in cycles")
  in
  let budget =
    Arg.(value & opt int Campaign.default_config.Campaign.budget
         & info [ "budget" ] ~docv:"N" ~doc:"Observation window per fault (watchdog)")
  in
  let nfaults =
    Arg.(value & opt int 0
         & info [ "faults" ] ~docv:"N" ~doc:"Draw N random faults over the design's signals")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Random fault-list seed") in
  let models =
    Arg.(value & opt (some string) None
         & info [ "models" ] ~docv:"M,M" ~doc:"Restrict random faults: seu, stuck0, stuck1, word")
  in
  let duration =
    Arg.(value & opt int 1 & info [ "duration" ] ~doc:"Duration of random stuck/word faults")
  in
  let fault_keys =
    Arg.(value & opt_all string []
         & info [ "fault"; "f" ] ~docv:"KEY" ~doc:"Inject a specific fault (repeatable)")
  in
  let pokes =
    Arg.(value & opt_all string []
         & info [ "poke"; "p" ] ~docv:"NAME=VAL" ~doc:"Drive an input every cycle")
  in
  let out =
    Arg.(value & opt string "gsim.fdb"
         & info [ "o"; "output" ] ~docv:"FILE.fdb" ~doc:"Where to write the returned shard database")
  in
  Cmd.v
    (Cmd.info "campaign" ~doc:"Run a fault-campaign shard on a gsimd server")
    Term.(const run $ to_arg $ file_arg $ engine_arg $ threads_arg $ level_arg
          $ supernode_arg $ backend_arg $ horizon $ budget $ nfaults $ seed $ models
          $ duration $ fault_keys $ pokes $ out $ priority_arg "batch" $ json_arg
          $ timeout_arg $ retries_arg $ token_arg $ tenant_arg $ deadline_arg)

let remote_fuzz_cmd =
  let run to_ seed cases from cycles setups out priority json timeout retries token tenant
      deadline =
    let job = { SP.fj_seed = seed; fj_cases = cases; fj_from = from; fj_cycles = cycles;
                fj_setups = setups; fj_token = None; fj_tenant = tenant_of tenant;
                fj_deadline = deadline }
    in
    let req = SP.Fuzz (SP.priority_of_string priority, job) in
    match check_error (remote_call ~timeout ~retries ~token to_ req) with
    | SP.Db_done r -> save_db_result ~out r json
    | _ -> failwith "unexpected response to fuzz request"
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Campaign seed") in
  let cases =
    Arg.(value & opt int 50 & info [ "cases"; "n" ] ~docv:"N" ~doc:"Case indices to explore")
  in
  let from =
    Arg.(value & opt int 0
         & info [ "from" ] ~docv:"I" ~doc:"First case index (disjoint shards merge with 'gsim fuzz merge')")
  in
  let cycles =
    Arg.(value & opt int Fuzz.default_campaign.Fuzz.cycles
         & info [ "cycles" ] ~docv:"N" ~doc:"Stimulus length per case")
  in
  let setups =
    Arg.(value & opt (some string) None
         & info [ "setups" ] ~docv:"S,S" ~doc:"Engine+backend subjects (default: all)")
  in
  let out =
    Arg.(value & opt string "fuzz-remote.db"
         & info [ "o"; "output" ] ~docv:"FILE.db" ~doc:"Where to write the returned corpus shard")
  in
  Cmd.v
    (Cmd.info "fuzz" ~doc:"Run a differential-fuzz shard on a gsimd server")
    Term.(const run $ to_arg $ seed $ cases $ from $ cycles $ setups $ out
          $ priority_arg "batch" $ json_arg $ timeout_arg $ retries_arg $ token_arg
          $ tenant_arg $ deadline_arg)

let remote_cov_cmd =
  let run to_ file engine threads level max_supernode backend cycles pokes out priority
      json timeout retries token tenant deadline =
    let job =
      {
        SP.vj_filename = Filename.basename file;
        vj_design = read_text_file file;
        vj_opts = engine_opts_of engine threads level max_supernode backend;
        vj_cycles = cycles;
        vj_pokes = pokes;
        vj_token = None;
        vj_tenant = tenant_of tenant;
        vj_deadline = deadline;
      }
    in
    let req = SP.Coverage (SP.priority_of_string priority, job) in
    match check_error (remote_call ~timeout ~retries ~token to_ req) with
    | SP.Db_done r -> save_db_result ~out r json
    | _ -> failwith "unexpected response to coverage request"
  in
  let cycles = Arg.(value & opt int 100 & info [ "cycles"; "n" ] ~doc:"Cycles to run") in
  let pokes =
    Arg.(value & opt_all string [] & info [ "poke"; "p" ] ~docv:"NAME=VAL" ~doc:"Drive an input")
  in
  let out =
    Arg.(value & opt string "gsim.cov"
         & info [ "o"; "output" ] ~docv:"FILE.cov" ~doc:"Where to write the returned coverage database")
  in
  Cmd.v
    (Cmd.info "cov" ~doc:"Run a coverage-collection job on a gsimd server")
    Term.(const run $ to_arg $ file_arg $ engine_arg $ threads_arg $ level_arg
          $ supernode_arg $ backend_arg $ cycles $ pokes $ out $ priority_arg "interactive"
          $ json_arg $ timeout_arg $ retries_arg $ token_arg $ tenant_arg $ deadline_arg)

let remote_status_cmd =
  let run to_ json timeout =
    match check_error (remote_call ~timeout to_ SP.Status) with
    | SP.Status_ok s ->
      if json then begin
        let tenants =
          String.concat ","
            (List.map
               (fun t ->
                 Printf.sprintf
                   "{\"tenant\":\"%s\",\"submitted\":%d,\"completed\":%d,\"shed\":%d,\"expired\":%d,\"inflight\":%d}"
                   (json_escape t.SP.tn_tenant) t.SP.tn_submitted t.SP.tn_completed
                   t.SP.tn_shed t.SP.tn_expired t.SP.tn_inflight)
               s.SP.st_tenants)
        in
        Printf.printf
          "{\"workers\":%d,\"queued\":%d,\"running\":%d,\"completed\":%d,\"rejected\":%d,\"shed\":%d,\"over_budget\":%d,\"deadline_expired\":%d,\"cache\":{\"entries\":%d,\"capacity\":%d,\"hits\":%d,\"misses\":%d,\"evictions\":%d},\"golden\":{\"hits\":%d,\"misses\":%d},\"preemptions\":%d,\"supervision\":{\"retries\":%d,\"hangs\":%d,\"worker_crashes\":%d,\"worker_restarts\":%d,\"gave_up\":%d},\"quarantine\":{\"open\":%d,\"trips\":%d},\"chaos_injected\":%d,\"tenants\":[%s],\"uptime\":%.3f,\"draining\":%b}\n"
          s.SP.st_workers s.SP.st_queued s.SP.st_running s.SP.st_completed s.SP.st_rejected
          s.SP.st_shed s.SP.st_over_budget s.SP.st_deadline_expired
          s.SP.st_cache_entries s.SP.st_cache_capacity s.SP.st_cache_hits
          s.SP.st_cache_misses s.SP.st_cache_evictions s.SP.st_golden_hits
          s.SP.st_golden_misses s.SP.st_preemptions s.SP.st_retries s.SP.st_hangs
          s.SP.st_worker_crashes s.SP.st_worker_restarts s.SP.st_gave_up
          s.SP.st_quarantined s.SP.st_quarantine_trips s.SP.st_chaos_injected tenants
          s.SP.st_uptime s.SP.st_draining
      end
      else begin
        Printf.printf "workers    : %d (%d running, %d queued)\n" s.SP.st_workers
          s.SP.st_running s.SP.st_queued;
        Printf.printf "jobs       : %d completed, %d rejected\n" s.SP.st_completed
          s.SP.st_rejected;
        if s.SP.st_shed > 0 || s.SP.st_over_budget > 0 || s.SP.st_deadline_expired > 0 then
          Printf.printf "overload   : %d shed, %d over budget, %d deadline expired\n"
            s.SP.st_shed s.SP.st_over_budget s.SP.st_deadline_expired;
        Printf.printf "plan cache : %d/%d entries, %d hit(s), %d miss(es), %d eviction(s)\n"
          s.SP.st_cache_entries s.SP.st_cache_capacity s.SP.st_cache_hits
          s.SP.st_cache_misses s.SP.st_cache_evictions;
        Printf.printf "golden     : %d hit(s), %d miss(es)\n" s.SP.st_golden_hits
          s.SP.st_golden_misses;
        Printf.printf "preemptions: %d\n" s.SP.st_preemptions;
        Printf.printf
          "supervision: %d retry(ies), %d hang(s), %d worker crash(es), %d restart(s), %d \
           gave up\n"
          s.SP.st_retries s.SP.st_hangs s.SP.st_worker_crashes s.SP.st_worker_restarts
          s.SP.st_gave_up;
        Printf.printf "quarantine : %d design(s) quarantined, %d trip(s)\n"
          s.SP.st_quarantined s.SP.st_quarantine_trips;
        if s.SP.st_chaos_injected > 0 then
          Printf.printf "chaos      : %d fault(s) injected\n" s.SP.st_chaos_injected;
        List.iter
          (fun t ->
            Printf.printf
              "tenant %-12s: %d submitted, %d completed, %d shed, %d expired, %d in flight\n"
              t.SP.tn_tenant t.SP.tn_submitted t.SP.tn_completed t.SP.tn_shed
              t.SP.tn_expired t.SP.tn_inflight)
          s.SP.st_tenants;
        Printf.printf "uptime     : %.1fs%s\n" s.SP.st_uptime
          (if s.SP.st_draining then " (draining)" else "")
      end
    | _ -> failwith "unexpected response to status request"
  in
  Cmd.v
    (Cmd.info "status" ~doc:"Query a gsimd server's queue, cache and worker counters")
    Term.(const run $ to_arg $ json_arg $ timeout_arg)

let remote_shutdown_cmd =
  let run to_ timeout =
    match check_error (remote_call ~timeout to_ SP.Shutdown) with
    | SP.Shutting_down -> print_endline "server draining: queued jobs will finish, then it exits"
    | _ -> failwith "unexpected response to shutdown request"
  in
  Cmd.v
    (Cmd.info "shutdown" ~doc:"Ask a gsimd server to drain and exit")
    Term.(const run $ to_arg $ timeout_arg)

let remote_cmd =
  Cmd.group
    (Cmd.info "remote" ~doc:"Submit jobs to a gsimd server (see 'gsim serve')")
    [ remote_sim_cmd; remote_campaign_cmd; remote_fuzz_cmd; remote_cov_cmd;
      remote_status_cmd; remote_shutdown_cmd ]

let () =
  let doc = "GSIM: an activity-driven compiled RTL simulator" in
  let info = Cmd.info "gsim" ~version:"1.0.0" ~doc in
  let group =
    Cmd.group info
      [ stats_cmd; emit_cmd; emit_fir_cmd; sim_cmd; run_cmd; cov_cmd; fault_cmd; fuzz_cmd;
        profile_cmd; equiv_cmd; ckpt_cmd; serve_cmd; remote_cmd ]
  in
  (* Ctrl-C raises Sys.Break instead of killing the process outright, so
     at_exit handlers (partial-checkpoint temp-file cleanup) still run
     and the conventional interrupt code is reported. *)
  Sys.catch_break true;
  (* Every error reaches the user as one line on stderr, never a
     backtrace: 2 for usage errors (cmdliner has already printed those),
     1 for runtime failures, 130 for an interrupt. *)
  exit
    (try
       match Cmd.eval_value ~catch:false group with
       | Ok (`Ok ()) | Ok `Help | Ok `Version -> 0
       | Error (`Parse | `Term) -> 2
       | Error `Exn -> 1
     with
     | Usage msg ->
       Printf.eprintf "gsim: %s\n" msg;
       2
     | Sys.Break ->
       prerr_endline "gsim: interrupted";
       130
     | Failure msg
     | Sys_error msg
     | Gsim_firrtl.Firrtl.Error msg
     | Gsim_verilog.Verilog.Error msg ->
       Printf.eprintf "gsim: %s\n" msg;
       1
     | e ->
       Printf.eprintf "gsim: %s\n" (Printexc.to_string e);
       1)
