(* Paper-reproduction benchmark harness.

   Each subcommand regenerates one table or figure of "GSIM: Accelerating
   RTL Simulation for Large-Scale Designs" (DAC 2025) on this repository's
   substrate; run without arguments to produce everything.

     main.exe [--quick] [table1|fig6|fig7|fig8|fig9|table3|table4|
               ablation|model|coverage|fault|backend|resilience|serve|
               chaos|overload|native|micro|all]  *)

module Bits = Gsim_bits.Bits
module Circuit = Gsim_ir.Circuit
module Partition = Gsim_partition.Partition
module Counters = Gsim_engine.Counters
module Pipeline = Gsim_passes.Pipeline
module Activity = Gsim_engine.Activity
module Designs = Gsim_designs.Designs
module Stu_core = Gsim_designs.Stu_core
module Gsim = Gsim_core.Gsim
module Emit = Gsim_emit.Emit
open Harness

(* ------------------------------------------------------------------ *)
(* Table I: single-thread full-cycle speed vs design scale              *)
(* ------------------------------------------------------------------ *)

let table1 () =
  header "Table I - Verilator-style (single thread) speed vs design scale (linux_boot)";
  Printf.printf "%-10s %12s %12s %12s\n" "design" "IR nodes" "IR edges" "speed";
  let prog = linux_long () in
  List.iter
    (fun d ->
      let core = build_design d in
      let s = Circuit.stats core.Stu_core.circuit in
      let m = measure (Gsim.verilator ()) d prog in
      Printf.printf "%-10s %12s %12s %12s\n" d.Designs.design_name
        (kseparated s.Circuit.ir_nodes) (kseparated s.Circuit.ir_edges) (pp_hz m.hz))
    Designs.all

(* ------------------------------------------------------------------ *)
(* Fig. 6: overall speedup over single-threaded Verilator               *)
(* ------------------------------------------------------------------ *)

let fig6_configs () =
  [
    Gsim.verilator ();
    Gsim.verilator ~threads:2 ();
    Gsim.verilator ~threads:4 ();
    Gsim.verilator ~threads:8 ();
    Gsim.arcilator;
    Gsim.essent;
    Gsim.gsim;
  ]

let fig6 () =
  header "Fig. 6 - Overall performance (speedup vs verilator single-thread)";
  let workloads = [ ("coremark", coremark_long ()); ("linux_boot", linux_long ()) ] in
  List.iter
    (fun (wname, prog) ->
      sub wname;
      Printf.printf "%-10s" "design";
      List.iter (fun c -> Printf.printf " %13s" c.Gsim.config_name) (fig6_configs ());
      print_newline ();
      List.iter
        (fun d ->
          let base = measure (Gsim.verilator ()) d prog in
          Printf.printf "%-10s" d.Designs.design_name;
          List.iter
            (fun config ->
              let m =
                if config.Gsim.config_name = "verilator" then base
                else measure config d prog
              in
              Printf.printf " %12.2fx" (m.hz /. base.hz))
            (fig6_configs ());
          Printf.printf "   (base %s)\n%!" (pp_hz base.hz))
        Designs.all)
    workloads

(* ------------------------------------------------------------------ *)
(* Fig. 7: SPEC-like checkpoints on the largest design                  *)
(* ------------------------------------------------------------------ *)

let fig7 () =
  header "Fig. 7 - SPEC CPU2006-like checkpoints on XiangShan-like";
  let d = Designs.xiangshan_like in
  Printf.printf "%-14s %12s %12s %14s %14s\n" "checkpoint" "verilator" "gsim" "gsim/v1T"
    "gsim/v8T";
  let speed1 = ref [] and speed8 = ref [] in
  List.iter
    (fun name ->
      let prog = spec_long name in
      let v1 = measure (Gsim.verilator ()) d prog in
      let v8 = measure (Gsim.verilator ~threads:8 ()) d prog in
      let g = measure Gsim.gsim d prog in
      speed1 := (g.hz /. v1.hz) :: !speed1;
      speed8 := (g.hz /. v8.hz) :: !speed8;
      Printf.printf "%-14s %12s %12s %13.2fx %13.2fx\n%!" name (pp_hz v1.hz) (pp_hz g.hz)
        (g.hz /. v1.hz) (g.hz /. v8.hz))
    spec_names;
  Printf.printf "%-14s %12s %12s %13.2fx %13.2fx\n" "geomean" "" "" (geomean !speed1)
    (geomean !speed8)

(* ------------------------------------------------------------------ *)
(* Fig. 8: per-technique breakdown                                      *)
(* ------------------------------------------------------------------ *)

(* Techniques applied incrementally, starting from an unoptimized
   per-node-active-bit baseline (the paper's P0). *)
let fig8_steps =
  [
    ( "baseline",
      Gsim.
        {
          (gsim_with ~opt_level:Pipeline.O0 ~partition_algorithm:"none" ~packed_exam:false
             ~activation:Activity.Branch ())
          with config_name = "baseline";
        } );
    ( "+supernode",
      Gsim.
        {
          (gsim_with ~opt_level:Pipeline.O0 ~partition_algorithm:"gsim" ~packed_exam:true ())
          with config_name = "+supernode";
        } );
    ( "+node-simplify",
      Gsim.{ (gsim_with ~opt_level:Pipeline.O1 ()) with config_name = "+node-simplify" } );
    ( "+cost-models+reset",
      Gsim.{ (gsim_with ~opt_level:Pipeline.O2 ()) with config_name = "+cost+reset" } );
    ("+bit-split", Gsim.{ (gsim_with ~opt_level:Pipeline.O3 ()) with config_name = "+bitsplit" });
  ]

let fig8 () =
  header "Fig. 8 - Performance breakdown per technique (log10 of incremental speedup)";
  Printf.printf "%-10s" "design";
  List.iter (fun (n, _) -> Printf.printf " %18s" n) (List.tl fig8_steps);
  print_newline ();
  let prog = coremark_long () in
  List.iter
    (fun d ->
      let speeds =
        List.map (fun (_, config) -> (measure config d prog).hz) fig8_steps
      in
      Printf.printf "%-10s" d.Designs.design_name;
      let rec pairs = function
        | a :: (b :: _ as rest) ->
          Printf.printf " %11.3f (%4.2fx)" (log10 (b /. a)) (b /. a);
          pairs rest
        | [ _ ] | [] -> ()
      in
      pairs speeds;
      (match (speeds, List.rev speeds) with
       | base :: _, final :: _ ->
         Printf.printf "   total %.2fx\n%!" (final /. base)
       | _ -> print_newline ()))
    Designs.all

(* ------------------------------------------------------------------ *)
(* Fig. 9: maximum supernode size sweep                                 *)
(* ------------------------------------------------------------------ *)

let fig9_sizes = [ 2; 4; 8; 16; 32; 64; 128 ]

let fig9 () =
  header "Fig. 9 - Performance vs maximum supernode size (coremark)";
  Printf.printf "%-10s" "design";
  List.iter (fun s -> Printf.printf " %9d" s) fig9_sizes;
  Printf.printf "   (normalized to size 8)\n";
  let prog = coremark_long () in
  List.iter
    (fun d ->
      let speeds =
        List.map
          (fun size -> (measure (Gsim.gsim_with ~max_supernode:size ()) d prog).hz)
          fig9_sizes
      in
      let baseline = List.nth speeds 2 in
      Printf.printf "%-10s" d.Designs.design_name;
      List.iter (fun hz -> Printf.printf " %8.2fx" (hz /. baseline)) speeds;
      print_newline ();
      flush stdout)
    Designs.all

(* ------------------------------------------------------------------ *)
(* Table III: partitioning algorithms                                   *)
(* ------------------------------------------------------------------ *)

let table3 () =
  header "Table III - Partitioning algorithms (coremark on BOOM-like, other opts off)";
  Printf.printf "%-14s %10s %11s %14s %14s %12s\n" "algorithm" "part(s)" "supernodes"
    "activations" "active-node" "speed";
  let d = Designs.boom_like in
  let core = build_design d in
  let prog = coremark_long () in
  (* Like the paper, each algorithm runs under its own optimal parameter:
     a small sweep picks the best-performing maximum size. *)
  let best_size algo =
    if algo = "none" then 1
    else begin
      let candidates = if !Harness.quick then [ 4; 20 ] else [ 2; 4; 8; 20; 32 ] in
      let best = ref (0., 4) in
      List.iter
        (fun size ->
          let config =
            Gsim.
              {
                (gsim_with ~opt_level:Pipeline.O0 ~partition_algorithm:algo
                   ~max_supernode:size ())
                with config_name = algo;
              }
          in
          let m = measure ~cycles_override:800 config d prog in
          if m.hz > fst !best then best := (m.hz, size))
        candidates;
      snd !best
    end
  in
  let rows =
    List.map (fun algo -> (algo, best_size algo)) [ "none"; "kernighan"; "mffc"; "gsim" ]
  in
  List.iter
    (fun (algo, size) ->
      let label = Printf.sprintf "%s(%d)" algo size in
      (* Partition time measured on the unoptimized graph, like the paper's
         standalone partitioning step. *)
      let t0 = now () in
      let p =
        (Option.get (Partition.algorithm_of_string algo)) core.Stu_core.circuit
          ~max_size:size
      in
      let pt = now () -. t0 in
      let config =
        Gsim.
          {
            (gsim_with ~opt_level:Pipeline.O0 ~partition_algorithm:algo ~max_supernode:size ())
            with config_name = label;
          }
      in
      let m = measure config d prog in
      Printf.printf "%-14s %10.3f %11s %14s %14s %12s\n%!" label pt
        (kseparated (Array.length p.Partition.supernodes))
        (kseparated (m.counters.Counters.activations / m.cycles))
        (kseparated (m.counters.Counters.evals / m.cycles))
        (pp_hz m.hz))
    rows

(* ------------------------------------------------------------------ *)
(* Table IV: resource usage                                             *)
(* ------------------------------------------------------------------ *)

let table4 () =
  header "Table IV - Resources: emission time, code size, data size";
  Printf.printf "%-10s %-11s %12s %12s %12s\n" "design" "simulator" "emission(s)" "code(B)"
    "data(B)";
  let configs = [ Gsim.verilator (); Gsim.essent; Gsim.arcilator; Gsim.gsim ] in
  List.iter
    (fun d ->
      let core = build_design d in
      List.iter
        (fun config ->
          let r = Gsim.emit_cpp config core.Stu_core.circuit in
          Printf.printf "%-10s %-11s %12.3f %12s %12s\n%!" d.Designs.design_name
            config.Gsim.config_name r.Emit.emission_seconds (kseparated r.Emit.code_bytes)
            (kseparated r.Emit.data_bytes))
        configs)
    Designs.all

(* ------------------------------------------------------------------ *)
(* Ablations beyond the paper's figures                                 *)
(* ------------------------------------------------------------------ *)

let repcut_ablation () =
  header "Ablation A3 - RepCut-style replication-aided threading (BOOM-like, coremark)";
  Printf.printf "  (the paper's future-work direction; this host has %d core(s))\n"
    (try
       let ic = Unix.open_process_in "nproc 2>/dev/null" in
       let n = int_of_string (String.trim (input_line ic)) in
       ignore (Unix.close_process_in ic);
       n
     with _ -> 1);
  let core = build_design Designs.boom_like in
  let prog = coremark_long () in
  List.iter
    (fun threads ->
      let t = Gsim_engine.Repcut.create ~threads core.Stu_core.circuit in
      let sim = Gsim_engine.Repcut.sim t in
      Designs.load_program sim core.Stu_core.h prog;
      Designs.run_cycles sim 64;
      let cycles = if !Harness.quick then 200 else 800 in
      let t0 = now () in
      Designs.run_cycles sim cycles;
      let dt = now () -. t0 in
      Printf.printf "  %d thread(s): %10s  replication factor %.2f  cones %s\n%!" threads
        (pp_hz (float_of_int cycles /. dt))
        (Gsim_engine.Repcut.replication_factor t)
        (String.concat "/"
           (Array.to_list (Array.map string_of_int (Gsim_engine.Repcut.cone_sizes t))));
      Gsim_engine.Repcut.destroy t)
    [ 1; 2; 4 ]

let ablation () =
  header "Ablation A1 - activation strategy cost model (coremark on BOOM-like)";
  List.iter
    (fun (label, strategy) ->
      let config =
        Gsim.{ (gsim_with ~activation:strategy ()) with config_name = label }
      in
      let m = measure config Designs.boom_like (coremark_long ()) in
      Printf.printf "  %-12s %12s  (activations/cycle %s)\n%!" label (pp_hz m.hz)
        (kseparated (m.counters.Counters.activations / m.cycles)))
    [
      ("branch", Activity.Branch);
      ("branchless", Activity.Branchless);
      ("cost-model", Activity.Cost_model);
    ];
  header "Ablation A2 - packed active-word fast path (linux_boot on XiangShan-like)";
  List.iter
    (fun (label, packed) ->
      let config = Gsim.{ (gsim_with ~packed_exam:packed ()) with config_name = label } in
      let m = measure config Designs.xiangshan_like (linux_long ()) in
      Printf.printf "  %-12s %12s  (exams/cycle %s)\n%!" label (pp_hz m.hz)
        (kseparated (m.counters.Counters.exams / m.cycles)))
    [ ("unpacked", false); ("packed", true) ];
  repcut_ablation ()

(* ------------------------------------------------------------------ *)
(* §II-B model statistics                                               *)
(* ------------------------------------------------------------------ *)

let model () =
  header "Model (SII-B) - activity factor and examination share";
  let m = measure Gsim.gsim Designs.xiangshan_like (coremark_long ()) in
  Printf.printf "  activity factor af (gsim)      = %.2f%% (paper: ~4.61%%)\n"
    (100. *. m.activity);
  (* The 82%% figure motivates the work: with one active bit per node, the
     examination branches dominate.  Measure it on that baseline. *)
  let baseline =
    Gsim.
      {
        (gsim_with ~opt_level:Pipeline.O0 ~partition_algorithm:"none" ~packed_exam:false
           ~activation:Activity.Branch ())
        with config_name = "per-node";
      }
  in
  let mb = measure baseline Designs.xiangshan_like (coremark_long ()) in
  let cb = mb.counters in
  let events =
    cb.Counters.evals + cb.Counters.exams + cb.Counters.activations
    + cb.Counters.reg_commits
  in
  Printf.printf "  exam share, per-node baseline  = %.1f%% of engine events (paper: 82.26%% of branches)\n"
    (100. *. float_of_int cb.Counters.exams /. float_of_int events);
  let c = m.counters in
  Printf.printf "  exam share, gsim supernodes    = %.1f%%\n"
    (100. *. float_of_int c.Counters.exams
     /. float_of_int
          (c.Counters.evals + c.Counters.exams + c.Counters.activations
           + c.Counters.reg_commits));
  Printf.printf "  supernodes                     = %s\n" (kseparated m.supernodes);
  Printf.printf "  gsim per-cycle: evals=%d exams=%d activations=%d commits=%d\n"
    (c.Counters.evals / m.cycles) (c.Counters.exams / m.cycles)
    (c.Counters.activations / m.cycles)
    (c.Counters.reg_commits / m.cycles)

(* ------------------------------------------------------------------ *)
(* Coverage collection overhead                                         *)
(* ------------------------------------------------------------------ *)

(* The point of the activity fast path: collection cost should follow the
   activity factor, not the design size.  Compare the gsim engine with no
   coverage, with change-event coverage, and with naive per-cycle
   resampling, plus full-cycle resampling as the conventional baseline. *)
let coverage () =
  header "Coverage - collection overhead: change-event fast path vs full resampling";
  Printf.printf "%-10s %-22s %12s %10s\n" "design" "collector" "speed" "overhead";
  let prog = coremark_long () in
  let designs = [ Designs.stu_core; Designs.rocket_like ] in
  List.iter
    (fun d ->
      let core = build_design d in
      let h = core.Stu_core.h in
      let nodes = Circuit.node_count core.Stu_core.circuit in
      let cycles = budget_for nodes in
      let run config wrap =
        let pre = optimized_circuit d config.Gsim.opt_level in
        let compiled =
          Gsim.instantiate { config with Gsim.opt_level = Pipeline.O0 } pre
        in
        let sim = wrap compiled in
        Designs.load_program sim h prog;
        let warmup = max 8 (cycles / 20) in
        Designs.run_cycles sim warmup;
        let t0 = now () in
        Designs.run_cycles sim cycles;
        let dt = now () -. t0 in
        compiled.Gsim.destroy ();
        float_of_int cycles /. dt
      in
      let plain c = c.Gsim.sim in
      let fast c =
        snd (Gsim_coverage.Collect.of_activity (Option.get c.Gsim.activity))
      in
      let resample c = snd (Gsim_coverage.Collect.create c.Gsim.sim) in
      let g_plain = run Gsim.gsim plain in
      let g_fast = run Gsim.gsim fast in
      let g_resample = run Gsim.gsim resample in
      let v_plain = run (Gsim.verilator ()) plain in
      let v_resample = run (Gsim.verilator ()) resample in
      let row label hz base =
        Printf.printf "%-10s %-22s %12s %+9.1f%%\n%!" d.Designs.design_name label
          (pp_hz hz)
          (100. *. ((base /. hz) -. 1.))
      in
      row "gsim, none" g_plain g_plain;
      row "gsim, change-event" g_fast g_plain;
      row "gsim, resample-all" g_resample g_plain;
      row "full-cycle, none" v_plain v_plain;
      row "full-cycle, resample" v_resample v_plain;
      let fast_cost = (g_plain /. g_fast) -. 1. in
      let resample_cost = (g_plain /. g_resample) -. 1. in
      Printf.printf
        "%-10s   -> fast path costs %.1f%% vs %.1f%% for resampling (%s)\n%!"
        d.Designs.design_name (100. *. fast_cost) (100. *. resample_cost)
        (if fast_cost < resample_cost then "fast path wins" else "resampling wins"))
    designs

(* ------------------------------------------------------------------ *)
(* Fault-injection campaign throughput                                  *)
(* ------------------------------------------------------------------ *)

(* Faults/sec per engine x backend on a real core, with the same fault
   list everywhere.  The run FAILS unless every configuration classifies
   every fault identically — the campaign's portability guarantee. *)
let fault () =
  header "Fault - campaign throughput (faults/sec) per engine x backend";
  let module Fault = Gsim_fault.Fault in
  let module Fdb = Gsim_fault.Db in
  let module Campaign = Gsim_fault.Campaign in
  let core = build_design Designs.stu_core in
  let circuit = core.Stu_core.circuit in
  let horizon = if !Harness.quick then 40 else 120 in
  let count = if !Harness.quick then 12 else 60 in
  let cfg = { Campaign.horizon; budget = (if !Harness.quick then 15 else 40) } in
  let faults = Fault.random ~seed:7 ~count ~horizon circuit in
  let configs =
    List.concat_map
      (fun (name, mk) ->
        List.map
          (fun be ->
            (name, Gsim_engine.Eval.to_string be, (mk be : Gsim.config)))
          [ `Closures; `Bytecode ])
      [
        ("full-cycle", fun be -> { (Gsim.verilator ()) with Gsim.backend = be });
        ("essent", fun be -> { Gsim.essent with Gsim.backend = be });
        ("gsim", fun be -> { Gsim.gsim with Gsim.backend = be });
      ]
  in
  Printf.printf "%-12s %-10s %8s %10s   %s\n" "engine" "backend" "secs" "faults/s"
    "det/lat/mask/hang/unin";
  let baseline = ref None in
  List.iter
    (fun (ename, bname, config) ->
      let t0 = now () in
      let db = Campaign.run cfg config circuit faults in
      let dt = now () -. t0 in
      let s = Fdb.summary db in
      Printf.printf "%-12s %-10s %8.2f %10.1f   %d/%d/%d/%d/%d\n%!" ename bname dt
        (float_of_int s.Fdb.total /. dt)
        s.Fdb.detected s.Fdb.latent s.Fdb.masked s.Fdb.hangs s.Fdb.uninjectable;
      match !baseline with
      | None -> baseline := Some db
      | Some b ->
        if not (Fdb.equal b db) then
          failwith
            (Printf.sprintf "fault classification differs between configurations (%s/%s)"
               ename bname))
    configs;
  Printf.printf "  -> all %d configurations agree on every fault\n%!" (List.length configs)

(* ------------------------------------------------------------------ *)
(* Differential fuzzing throughput                                     *)
(* ------------------------------------------------------------------ *)

(* Cases/sec through the differential oracle per subject matrix — the
   cost of a clean campaign (generation + reference trace + subjects).
   The run FAILS if any case actually diverges: a healthy tree fuzzes
   clean, so a finding here is a real bug, not a bench artifact. *)
let fuzz () =
  header "Fuzz - differential campaign throughput (cases/sec)";
  let module Fuzz = Gsim_verify.Fuzz in
  let module Corpus = Gsim_verify.Corpus in
  let cases = if !Harness.quick then 8 else 40 in
  let matrices =
    [
      ("gsim+bytecode", [ Fuzz.setup_of_name "gsim+bytecode" ]);
      ( "gsim, both backends",
        [ Fuzz.setup_of_name "gsim+bytecode"; Fuzz.setup_of_name "gsim+closures" ] );
      ("full matrix", Fuzz.default_setups);
    ]
  in
  Printf.printf "%-22s %9s %8s %10s\n" "subjects" "#subjects" "secs" "cases/s";
  List.iter
    (fun (name, setups) ->
      let dir = Filename.temp_file "gsim_fuzz_bench" "" in
      Sys.remove dir;
      let camp = { Fuzz.default_campaign with Fuzz.seed = 5; cases; setups; dir } in
      let t0 = now () in
      let r = Fuzz.run camp in
      let dt = now () -. t0 in
      let failing = List.length (Corpus.failures r.Fuzz.db) in
      Printf.printf "%-22s %9d %8.2f %10.1f\n%!" name (List.length setups) dt
        (float_of_int r.Fuzz.ran /. dt);
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
      Unix.rmdir dir;
      if failing > 0 then
        failwith
          (Printf.sprintf "fuzz bench found %d real divergence(s) under %s" failing name))
    matrices;
  Printf.printf "  -> all matrices fuzz clean\n%!"

(* ------------------------------------------------------------------ *)
(* Evaluation-backend comparison: closures vs bytecode vs native        *)
(* ------------------------------------------------------------------ *)

(* One short deterministic run whose folded node values certify that all
   backends computed identical simulations, plus the speed comparison
   the backends exist for.  The native column appears when a C compiler
   is on PATH (or GSIM_CC names one).  Results also land in
   BENCH_backends.json so CI can archive them. *)
let backend_checksum config d prog =
  let core = build_design d in
  let pre = optimized_circuit d config.Gsim.opt_level in
  let compiled =
    Gsim.instantiate { config with Gsim.opt_level = Pipeline.O0 } pre
  in
  let sim = compiled.Gsim.sim in
  Designs.load_program sim core.Stu_core.h prog;
  Designs.run_cycles sim (if !Harness.quick then 100 else 500);
  let c = sim.Gsim_engine.Sim.circuit in
  let acc = ref 0 in
  Circuit.iter_nodes c (fun nd ->
      let v = sim.Gsim_engine.Sim.peek nd.Circuit.id in
      (* 63-bit mixing fold; to_packed is exact for narrow nodes and
         to_int_trunc truncates wide ones deterministically. *)
      let x =
        if Bits.width v <= 62 then Bits.to_packed v else Bits.to_int_trunc v
      in
      acc := ((!acc * 1099511628211) + x + nd.Circuit.id) land max_int);
  let changed = (sim.Gsim_engine.Sim.counters ()).Counters.changed in
  compiled.Gsim.destroy ();
  (!acc, changed)

let backend_configs () =
  [
    ("full-cycle", fun be -> { (Gsim.verilator ()) with Gsim.backend = be });
    ("gsim", fun be -> { Gsim.gsim with Gsim.backend = be });
  ]

let backend () =
  header "Backend - closures vs flat bytecode vs AOT native (narrow hot path)";
  let have_native = Gsim_engine.Native.available () in
  if not have_native then
    Printf.printf "  (no C compiler found - native column skipped; set GSIM_CC to override)\n";
  Printf.printf "%-10s %-11s %10s %10s %10s %8s %8s %8s %8s %8s\n" "design" "engine"
    "closures" "bytecode" "native" "ns/ev(c)" "ns/ev(b)" "ns/ev(n)" "byte/clo"
    "nat/clo";
  let prog = coremark_long () in
  let rows = ref [] in
  List.iter
    (fun d ->
      List.iter
        (fun (ename, mk) ->
          let mc = measure (mk `Closures) d prog in
          let mb = measure (mk `Bytecode) d prog in
          let mn = if have_native then Some (measure (mk `Native) d prog) else None in
          let ns m =
            m.seconds *. 1e9 /. float_of_int (max m.counters.Counters.evals 1)
          in
          let kc, chc = backend_checksum (mk `Closures) d prog in
          let kb, chb = backend_checksum (mk `Bytecode) d prog in
          if kc <> kb || chc <> chb then
            failwith
              (Printf.sprintf "backend mismatch on %s/%s: %x/%d vs %x/%d"
                 d.Designs.design_name ename kc chc kb chb);
          if have_native then begin
            let kn, chn = backend_checksum (mk `Native) d prog in
            if kn <> kc || chn <> chc then
              failwith
                (Printf.sprintf "native backend mismatch on %s/%s: %x/%d vs %x/%d"
                   d.Designs.design_name ename kc chc kn chn)
          end;
          let speedup = mb.hz /. mc.hz in
          let native_speedup =
            match mn with Some m -> m.hz /. mc.hz | None -> 0.
          in
          Printf.printf
            "%-10s %-11s %10s %10s %10s %8.1f %8.1f %8s %7.2fx %8s  (checksums agree)\n%!"
            d.Designs.design_name ename (pp_hz mc.hz) (pp_hz mb.hz)
            (match mn with Some m -> pp_hz m.hz | None -> "-")
            (ns mc) (ns mb)
            (match mn with Some m -> Printf.sprintf "%.1f" (ns m) | None -> "-")
            speedup
            (match mn with
             | Some _ -> Printf.sprintf "%7.2fx" native_speedup
             | None -> "-");
          let native_fields =
            match mn with
            | None -> ""
            | Some m ->
              Printf.sprintf
                ",\"native_hz\":%.1f,\"ns_per_eval_native\":%.2f,\"native_speedup\":%.3f"
                m.hz (ns m) native_speedup
          in
          rows :=
            Printf.sprintf
              "    {\"design\":%S,\"engine\":%S,\"closures_hz\":%.1f,\"bytecode_hz\":%.1f,\"ns_per_eval_closures\":%.2f,\"ns_per_eval_bytecode\":%.2f,\"speedup\":%.3f%s,\"instrs_per_cycle\":%d,\"checksum\":%d}"
              d.Designs.design_name ename mc.hz mb.hz (ns mc) (ns mb) speedup
              native_fields
              (mb.counters.Counters.instrs / max mb.cycles 1)
              kb
            :: !rows)
        (backend_configs ()))
    Designs.all;
  let oc = open_out "BENCH_backends.json" in
  Printf.fprintf oc "{\n  \"bench\": \"backend\",\n  \"native\": %b,\n  \"rows\": [\n%s\n  ]\n}\n"
    have_native
    (String.concat ",\n" (List.rev !rows));
  close_out oc;
  Printf.printf "  [wrote BENCH_backends.json]\n"

(* ------------------------------------------------------------------ *)
(* Resilience: checkpoint + shadow-verification overhead                *)
(* ------------------------------------------------------------------ *)

(* What a long-running session pays for crash safety and for lockstep
   verification, against the same workload run bare.  Delta checkpoints
   should be noise (a keyframe is a full state dump; a delta is the
   scalar diff plus the write barrier's dirty memory words); full-frame
   checkpointing ([checkpoints-full]) is the old cost, kept as a column
   for comparison.  Full-stride shadow verification costs about one
   reference-engine replay of every window — the price of the guarantee,
   reported rather than hidden; the sampled [checkpoints+shadow] recipe
   replays only the tail of each window.

   Individual runs are tens of milliseconds, well inside scheduler
   noise, so each variant is measured in interleaved rounds against the
   same round's bare baseline and the median overhead is reported. *)
let resilience () =
  let module Session = Gsim_resilience.Session in
  header "Resilience - checkpoint ring and shadow lockstep overhead (stuCore, coremark)";
  let d = Designs.stu_core in
  let prog = coremark_long () in
  (* A resilient session's natural regime is long runs, and short ones
     drown in scheduler noise and fixed costs (the anchor capture, the
     chain's startup keyframe) — so [--quick] trims rounds, not
     cycles. *)
  let cycles = 100_000 in
  let stride = cycles / 10 in
  let rounds = if !quick then 3 else 5 in
  (* Store rings live on tmpfs when the platform has one: the bench
     measures the checkpointing mechanism, and a 250-byte delta costs
     ~10x more in ext4 create+rename journaling than in compute. *)
  let scratch_root =
    if Sys.file_exists "/dev/shm" && Sys.is_directory "/dev/shm" then "/dev/shm"
    else Filename.get_temp_dir_name ()
  in
  let tmp_dir tag =
    let dir =
      Filename.concat scratch_root
        (Printf.sprintf "gsim-bench-res-%d-%s" (Unix.getpid ()) tag)
    in
    Gsim_resilience.Store.ensure_dir dir;
    dir
  in
  let clear_dir dir =
    Array.iter
      (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
      (try Sys.readdir dir with Sys_error _ -> [||])
  in
  let variants =
    [
      ("bare", None, None);
      ("session", Some Session.default, None);
      ( "checkpoints",
        Some
          { Session.default with
            Session.checkpoint_every = Some stride;
            checkpoint_dir = Some (tmp_dir "ck") },
        Some (tmp_dir "ck") );
      ( "checkpoints-full",
        Some
          { Session.default with
            Session.checkpoint_every = Some stride;
            checkpoint_dir = Some (tmp_dir "ckfull");
            keyframe_every = 0 },
        Some (tmp_dir "ckfull") );
      ("shadow", Some { Session.default with Session.shadow_stride = Some stride }, None);
      ( "checkpoints+shadow",
        Some
          { Session.default with
            Session.checkpoint_every = Some stride;
            checkpoint_dir = Some (tmp_dir "both");
            shadow_stride = Some stride;
            shadow_window = Some (stride / 8) },
        Some (tmp_dir "both") );
    ]
  in
  let run_variant config cfg store_dir =
    Option.iter clear_dir store_dir;
    match cfg with
    | None ->
      let core = build_design d in
      let compiled = Gsim.instantiate config core.Stu_core.circuit in
      let sim = compiled.Gsim.sim in
      Designs.load_program sim core.Stu_core.h prog;
      let t0 = now () in
      Designs.run_cycles sim cycles;
      let dt = now () -. t0 in
      compiled.Gsim.destroy ();
      (dt, (0, 0, 0))
    | Some cfg ->
      let core = build_design d in
      let t = Session.create cfg config core.Stu_core.circuit in
      Designs.load_program (Session.sim t) core.Stu_core.h prog;
      let t0 = now () in
      let o = Session.run t cycles in
      let dt = now () -. t0 in
      Session.destroy t;
      (dt, (o.Session.keyframes_written, o.Session.deltas_written, o.Session.windows_verified))
  in
  (* Mean on-disk bytes per generation kind, from the ring left behind. *)
  let store_bytes = function
    | None -> (0, 0)
    | Some dir ->
      let mean = function
        | [] -> 0
        | l -> List.fold_left ( + ) 0 l / List.length l
      in
      let sizes suffix =
        Sys.readdir dir |> Array.to_list
        |> List.filter (fun f -> Filename.check_suffix f suffix)
        |> List.map (fun f -> (Unix.stat (Filename.concat dir f)).Unix.st_size)
      in
      (mean (sizes ".gck"), mean (sizes ".gcd"))
  in
  let median l =
    let a = List.sort compare l in
    List.nth a (List.length a / 2)
  in
  Printf.printf "%-11s %-19s %12s %9s %5s %6s %9s %9s %8s\n" "engine" "variant" "speed"
    "overhead" "kf" "deltas" "kf-bytes" "d-bytes" "windows";
  let rows = ref [] in
  let gate_failures = ref [] in
  List.iter
    (fun (ename, config) ->
      let samples = Hashtbl.create 8 in
      let counts = Hashtbl.create 8 in
      for _ = 1 to rounds do
        let base = ref nan in
        List.iter
          (fun (vname, cfg, store_dir) ->
            let dt, c = run_variant config cfg store_dir in
            if cfg = None then base := dt;
            let overhead = (dt /. !base -. 1.) *. 100. in
            Hashtbl.replace samples vname
              ((dt, overhead) :: (try Hashtbl.find samples vname with Not_found -> []));
            Hashtbl.replace counts vname (c, store_bytes store_dir))
          variants
      done;
      List.iter
        (fun (vname, _, _) ->
          let s = Hashtbl.find samples vname in
          let dt = median (List.map fst s) in
          let overhead = median (List.map snd s) in
          let (kf, deltas, windows), (kf_bytes, d_bytes) = Hashtbl.find counts vname in
          let hz = float_of_int cycles /. dt in
          Printf.printf "%-11s %-19s %12s %8.1f%% %5d %6d %9d %9d %8d\n%!" ename vname
            (pp_hz hz) overhead kf deltas kf_bytes d_bytes windows;
          if !quick && vname = "checkpoints" && overhead > 25. then
            gate_failures := Printf.sprintf "%s checkpoints %.1f%%" ename overhead
                             :: !gate_failures;
          rows :=
            Printf.sprintf
              "    \
               {\"engine\":%S,\"variant\":%S,\"hz\":%.1f,\"overhead_pct\":%.2f,\"keyframes\":%d,\"deltas\":%d,\"keyframe_bytes\":%d,\"delta_bytes\":%d,\"windows_verified\":%d,\"cycles\":%d,\"rounds\":%d}"
              ename vname hz overhead kf deltas kf_bytes d_bytes windows cycles rounds
            :: !rows)
        variants)
    [ ("gsim", Gsim.gsim); ("full-cycle", Gsim.verilator ()) ];
  let oc = open_out "BENCH_resilience.json" in
  Printf.fprintf oc "{\n  \"bench\": \"resilience\",\n  \"rows\": [\n%s\n  ]\n}\n"
    (String.concat ",\n" (List.rev !rows));
  close_out oc;
  Printf.printf "  [wrote BENCH_resilience.json]\n";
  match !gate_failures with
  | [] -> ()
  | fails ->
    Printf.printf "  GATE FAILED: delta checkpoint overhead above 25%%: %s\n"
      (String.concat ", " fails);
    exit 1

(* ------------------------------------------------------------------ *)
(* gsimd saturation: jobs/sec and latency, warm vs cold plan cache      *)
(* ------------------------------------------------------------------ *)

(* A parametric register chain big enough that compiling it (parse +
   passes + partition) dominates a short simulation — exactly the regime
   the compiled-plan cache exists for.  Generated as FIRRTL text so every
   job exercises the real wire protocol and frontend. *)
let serve_design ?(salt = 0) stages =
  let b = Buffer.create (stages * 80) in
  Buffer.add_string b "circuit Chain :\n  module Chain :\n";
  Buffer.add_string b "    input clock : Clock\n";
  Buffer.add_string b "    input reset : UInt<1>\n";
  Buffer.add_string b "    input in : UInt<32>\n";
  Buffer.add_string b "    output out : UInt<32>\n\n";
  for i = 0 to stages - 1 do
    Buffer.add_string b
      (Printf.sprintf "    reg r%d : UInt<32>, clock with : (reset => (reset, UInt<32>(%d)))\n"
         i ((i + salt) land 0xffff));
    let src = if i = 0 then "in" else Printf.sprintf "r%d" (i - 1) in
    Buffer.add_string b
      (Printf.sprintf "    r%d <= xor(%s, shr(r%d, 1))\n" i src i)
  done;
  Buffer.add_string b (Printf.sprintf "    out <= r%d\n" (stages - 1));
  Buffer.contents b

let serve () =
  let module SP = Gsim_server.Protocol in
  let module Client = Gsim_server.Client in
  let module Daemon = Gsim_server.Daemon in
  header "Serve - gsimd saturation: jobs/sec and latency, warm vs cold plan cache";
  let stages = if !Harness.quick then 150 else 600 in
  let clients = 4 in
  let jobs_per_client = if !Harness.quick then 5 else 12 in
  let cycles = 100 in
  let design = serve_design stages in
  let job =
    {
      SP.sj_filename = "chain.fir";
      sj_design = design;
      sj_opts = SP.default_engine_opts;
      sj_cycles = cycles;
      sj_pokes = [ "in=12345" ];
      sj_token = None;
      sj_tenant = None;
      sj_deadline = 0.;
    }
  in
  let total = clients * jobs_per_client in
  let run_phase label cache_capacity =
    let sock =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "gsimd-bench-%d-%s.sock" (Unix.getpid ()) label)
    in
    let spool =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "gsimd-bench-%d-%s" (Unix.getpid ()) label)
    in
    let address = SP.Unix_sock sock in
    let devnull = open_out "/dev/null" in
    let cfg =
      {
        (Daemon.default_config address) with
        Daemon.workers = 4;
        cache_capacity;
        spool = Some spool;
        log = devnull;
      }
    in
    let server = Thread.create (fun () -> Daemon.serve cfg) () in
    let rec wait_ready n =
      if not (Sys.file_exists sock) then
        if n = 0 then failwith "gsimd did not start"
        else begin
          Unix.sleepf 0.01;
          wait_ready (n - 1)
        end
    in
    wait_ready 500;
    let latencies = Array.make total 0. in
    let t0 = now () in
    let client ci () =
      Client.with_connection address (fun c ->
          for j = 0 to jobs_per_client - 1 do
            let t = now () in
            (match Client.call c (SP.Sim (SP.Batch, job)) with
             | SP.Sim_done _ -> ()
             | SP.Error_resp e -> failwith ("serve bench job failed: " ^ e.SP.ei_message)
             | _ -> failwith "unexpected response");
            latencies.((ci * jobs_per_client) + j) <- now () -. t
          done)
    in
    let threads = List.init clients (fun ci -> Thread.create (client ci) ()) in
    List.iter Thread.join threads;
    let dt = now () -. t0 in
    let st =
      match Client.with_connection address (fun c -> Client.call c SP.Status) with
      | SP.Status_ok s -> s
      | _ -> failwith "status failed"
    in
    (match Client.with_connection address (fun c -> Client.call c SP.Shutdown) with
     | SP.Shutting_down -> ()
     | _ -> failwith "shutdown failed");
    Thread.join server;
    close_out devnull;
    Array.sort compare latencies;
    let pct p = latencies.(min (total - 1) (int_of_float (p *. float_of_int total))) in
    let jobs_per_sec = float_of_int total /. dt in
    Printf.printf
      "%-6s %3d jobs %2d clients %8.2fs %9.2f jobs/s  p50 %6.0fms p99 %6.0fms  cache %d hit / %d miss\n%!"
      label total clients dt jobs_per_sec
      (pct 0.50 *. 1000.) (pct 0.99 *. 1000.) st.SP.st_cache_hits st.SP.st_cache_misses;
    (jobs_per_sec, pct 0.50, pct 0.99, st.SP.st_cache_hits, st.SP.st_cache_misses)
  in
  Printf.printf "  design: %d-stage register chain, %d cycles per job\n%!" stages cycles;
  let c_jps, c_p50, c_p99, c_hits, c_misses = run_phase "cold" 0 in
  let w_jps, w_p50, w_p99, w_hits, w_misses = run_phase "warm" 16 in
  let ratio = w_jps /. c_jps in
  Printf.printf "  -> warm cache is %.2fx cold (plan compiled %d time(s) warm vs %d cold)\n%!"
    ratio w_misses c_misses;
  let oc = open_out "BENCH_serve.json" in
  Printf.fprintf oc
    "{\n  \"bench\": \"serve\",\n  \"stages\": %d,\n  \"cycles\": %d,\n  \"clients\": %d,\n  \"jobs\": %d,\n  \"rows\": [\n    {\"phase\":\"cold\",\"jobs_per_sec\":%.3f,\"p50_ms\":%.1f,\"p99_ms\":%.1f,\"cache_hits\":%d,\"cache_misses\":%d},\n    {\"phase\":\"warm\",\"jobs_per_sec\":%.3f,\"p50_ms\":%.1f,\"p99_ms\":%.1f,\"cache_hits\":%d,\"cache_misses\":%d}\n  ],\n  \"warm_over_cold\": %.3f\n}\n"
    stages cycles clients total c_jps (c_p50 *. 1000.) (c_p99 *. 1000.) c_hits c_misses
    w_jps (w_p50 *. 1000.) (w_p99 *. 1000.) w_hits w_misses ratio;
  close_out oc;
  Printf.printf "  [wrote BENCH_serve.json]\n"

(* ------------------------------------------------------------------ *)
(* gsimd under chaos: throughput and p99 with injected worker failure   *)
(* ------------------------------------------------------------------ *)

(* What supervision costs: the same batch workload runs against a calm
   daemon and against one whose workers crash at ~10% of jobs (seeded
   Chaos injection at eval ticks).  Every job must still complete —
   crashes are recovered from the per-stride spool, so the price is
   respawn + backoff latency, not lost work.  The --quick variant gates
   CI at <= 2x p99 inflation. *)
let chaos_bench () =
  let module SP = Gsim_server.Protocol in
  let module Client = Gsim_server.Client in
  let module Daemon = Gsim_server.Daemon in
  let module Chaos = Gsim_server.Chaos in
  let module Supervisor = Gsim_server.Supervisor in
  header "Chaos - gsimd jobs/sec and p99 under ~10% injected worker failure";
  let stages = if !Harness.quick then 120 else 400 in
  let clients = 4 in
  let jobs_per_client = if !Harness.quick then 6 else 12 in
  let cycles = 200 in
  let design = serve_design stages in
  let job =
    {
      SP.sj_filename = "chain.fir";
      sj_design = design;
      sj_opts = SP.default_engine_opts;
      sj_cycles = cycles;
      sj_pokes = [ "in=12345" ];
      sj_token = None;
      sj_tenant = None;
      sj_deadline = 0.;
    }
  in
  let total = clients * jobs_per_client in
  (* Two eval ticks per job (stride 100, 200 cycles): crash=0.05 per
     tick ~= 10% of jobs lose their worker at least once. *)
  let chaos_spec = Chaos.spec_of_string "seed=7,crash=0.05" in
  let run_phase label spec =
    let sock =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "gsimd-chaos-%d-%s.sock" (Unix.getpid ()) label)
    in
    let spool =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "gsimd-chaos-%d-%s" (Unix.getpid ()) label)
    in
    let address = SP.Unix_sock sock in
    let devnull = open_out "/dev/null" in
    let dflt = Daemon.default_config address in
    let cfg =
      {
        dflt with
        Daemon.workers = 4;
        cache_capacity = 16;
        preempt_stride = 100;
        spool = Some spool;
        log = devnull;
        chaos = spec;
        supervision =
          { dflt.Daemon.supervision with Supervisor.backoff_base = 0.02; backoff_max = 0.2 };
      }
    in
    let server = Thread.create (fun () -> Daemon.serve cfg) () in
    let rec wait_ready n =
      if not (Sys.file_exists sock) then
        if n = 0 then failwith "gsimd did not start"
        else begin
          Unix.sleepf 0.01;
          wait_ready (n - 1)
        end
    in
    wait_ready 500;
    let latencies = Array.make total 0. in
    let t0 = now () in
    let client ci () =
      Client.with_connection address (fun c ->
          for j = 0 to jobs_per_client - 1 do
            let t = now () in
            (match Client.call c (SP.Sim (SP.Batch, job)) with
             | SP.Sim_done r ->
               if r.SP.sr_cycles <> cycles then
                 failwith "chaos bench job finished with wrong cycle count"
             | SP.Error_resp e -> failwith ("chaos bench job failed: " ^ e.SP.ei_message)
             | _ -> failwith "unexpected response");
            latencies.((ci * jobs_per_client) + j) <- now () -. t
          done)
    in
    let threads = List.init clients (fun ci -> Thread.create (client ci) ()) in
    List.iter Thread.join threads;
    let dt = now () -. t0 in
    let st =
      match Client.with_connection address (fun c -> Client.call c SP.Status) with
      | SP.Status_ok s -> s
      | _ -> failwith "status failed"
    in
    (match Client.with_connection address (fun c -> Client.call c SP.Shutdown) with
     | SP.Shutting_down -> ()
     | _ -> failwith "shutdown failed");
    Thread.join server;
    close_out devnull;
    Array.sort compare latencies;
    let pct p = latencies.(min (total - 1) (int_of_float (p *. float_of_int total))) in
    let jobs_per_sec = float_of_int total /. dt in
    Printf.printf
      "%-9s %3d jobs %8.2fs %9.2f jobs/s  p50 %6.0fms p99 %6.0fms  crashes %2d retries %2d restarts %2d\n%!"
      label total dt jobs_per_sec (pct 0.50 *. 1000.) (pct 0.99 *. 1000.)
      st.SP.st_worker_crashes st.SP.st_retries st.SP.st_worker_restarts;
    (jobs_per_sec, pct 0.50, pct 0.99, st)
  in
  Printf.printf "  design: %d-stage register chain, %d cycles per job, stride 100\n%!"
    stages cycles;
  let b_jps, b_p50, b_p99, _ = run_phase "baseline" Chaos.none in
  let c_jps, c_p50, c_p99, c_st = run_phase "chaos" chaos_spec in
  if c_st.SP.st_worker_crashes = 0 then
    failwith "chaos phase injected no worker crashes (seed/stride drifted?)";
  if c_st.SP.st_gave_up > 0 then
    failwith (Printf.sprintf "chaos phase lost %d job(s)" c_st.SP.st_gave_up);
  let inflation = c_p99 /. b_p99 in
  Printf.printf
    "  -> chaos throughput %.2fx baseline, p99 inflation %.2fx (%d crash(es) recovered)\n%!"
    (c_jps /. b_jps) inflation c_st.SP.st_worker_crashes;
  let oc = open_out "BENCH_chaos.json" in
  Printf.fprintf oc
    "{\n  \"bench\": \"chaos\",\n  \"stages\": %d,\n  \"cycles\": %d,\n  \"clients\": %d,\n  \"jobs\": %d,\n  \"spec\": %S,\n  \"rows\": [\n    {\"phase\":\"baseline\",\"jobs_per_sec\":%.3f,\"p50_ms\":%.1f,\"p99_ms\":%.1f},\n    {\"phase\":\"chaos\",\"jobs_per_sec\":%.3f,\"p50_ms\":%.1f,\"p99_ms\":%.1f,\"worker_crashes\":%d,\"retries\":%d,\"worker_restarts\":%d,\"gave_up\":%d}\n  ],\n  \"p99_inflation\": %.3f\n}\n"
    stages cycles clients total (Chaos.spec_to_string chaos_spec) b_jps (b_p50 *. 1000.)
    (b_p99 *. 1000.) c_jps (c_p50 *. 1000.) (c_p99 *. 1000.) c_st.SP.st_worker_crashes
    c_st.SP.st_retries c_st.SP.st_worker_restarts c_st.SP.st_gave_up inflation;
  close_out oc;
  Printf.printf "  [wrote BENCH_chaos.json]\n";
  if !Harness.quick && inflation > 2.0 then begin
    Printf.printf "  GATE FAILED: chaos p99 is %.2fx baseline (budget 2.0x)\n" inflation;
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* gsimd brownout: interactive latency while batch tenants flood 4x     *)
(* ------------------------------------------------------------------ *)

(* What overload protection buys: an interactive tenant runs the same
   serial workload against an unloaded daemon and against one flooded
   with ~4x its batch service rate by two greedy tenants.  The daemon
   must shed batch work (brownout + retry-after) rather than let the
   queue grow without bound, split what it does accept ~evenly between
   the greedy tenants (DRR), and keep the interactive p99 bounded.  The
   --quick variant gates CI at <= 2x interactive p99 inflation. *)
let overload_bench () =
  let module SP = Gsim_server.Protocol in
  let module Client = Gsim_server.Client in
  let module Daemon = Gsim_server.Daemon in
  let module Chaos = Gsim_server.Chaos in
  header "Overload - gsimd interactive p99 and shed rate under 4x batch flood";
  let stages = if !Harness.quick then 100 else 300 in
  let cycles = 200 in
  let inter_jobs = if !Harness.quick then 8 else 20 in
  let flood_threads_per_tenant = 4 in
  let design = serve_design stages in
  let job ?tenant prio =
    ( prio,
      {
        SP.sj_filename = "chain.fir";
        sj_design = design;
        sj_opts = SP.default_engine_opts;
        sj_cycles = cycles;
        sj_pokes = [ "in=12345" ];
        sj_token = None;
        sj_tenant = tenant;
        sj_deadline = 0.;
      } )
  in
  (* Workers stall 20 ms at each 100-cycle stride tick, so the batch
     service rate is known and small — the flood reliably outruns it. *)
  let chaos_spec = Chaos.spec_of_string "seed=5,busy=1.0,busy-ms=20" in
  let with_daemon label f =
    let sock =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "gsimd-over-%d-%s.sock" (Unix.getpid ()) label)
    in
    let spool =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "gsimd-over-%d-%s" (Unix.getpid ()) label)
    in
    let address = SP.Unix_sock sock in
    let devnull = open_out "/dev/null" in
    let cfg =
      {
        (Daemon.default_config address) with
        Daemon.workers = 2;
        queue_capacity = 8;
        cache_capacity = 16;
        preempt_stride = 100;
        spool = Some spool;
        log = devnull;
        chaos = chaos_spec;
        high_water = 0.5;
      }
    in
    let server = Thread.create (fun () -> Daemon.serve cfg) () in
    let rec wait_ready n =
      if not (Sys.file_exists sock) then
        if n = 0 then failwith "gsimd did not start"
        else begin
          Unix.sleepf 0.01;
          wait_ready (n - 1)
        end
    in
    wait_ready 500;
    let r = f address in
    let st =
      match Client.with_connection address (fun c -> Client.call c SP.Status) with
      | SP.Status_ok s -> s
      | _ -> failwith "status failed"
    in
    (match Client.with_connection address (fun c -> Client.call c SP.Shutdown) with
     | SP.Shutting_down -> ()
     | _ -> failwith "shutdown failed");
    Thread.join server;
    close_out devnull;
    (r, st)
  in
  let interactive_pass address =
    let lat = Array.make inter_jobs 0. in
    Client.with_connection address (fun c ->
        for j = 0 to inter_jobs - 1 do
          let t = now () in
          let prio, sj = job ~tenant:"vip" SP.Interactive in
          (match Client.call c (SP.Sim (prio, sj)) with
           | SP.Sim_done _ -> ()
           | SP.Error_resp e -> failwith ("interactive job refused: " ^ e.SP.ei_message)
           | _ -> failwith "unexpected response");
          lat.(j) <- now () -. t
        done);
    Array.sort compare lat;
    let pct p = lat.(min (inter_jobs - 1) (int_of_float (p *. float_of_int inter_jobs))) in
    (pct 0.50, pct 0.99)
  in
  Printf.printf "  design: %d-stage chain, %d cycles/job, 2 stalled workers, queue 8\n%!"
    stages cycles;
  let (u_p50, u_p99), _ = with_daemon "calm" interactive_pass in
  Printf.printf "%-9s p50 %6.0fms p99 %6.0fms\n%!" "unloaded" (u_p50 *. 1000.)
    (u_p99 *. 1000.);
  (* Overloaded phase: two greedy tenants, two flooding threads each. *)
  let done_a = Atomic.make 0 and done_b = Atomic.make 0 in
  let shed = Atomic.make 0 and retry_hinted = Atomic.make 0 in
  let stop = Atomic.make false in
  let (o_p50, o_p99), o_st =
    with_daemon "flood" (fun address ->
        (* Flooders offer work continuously — a shed job is immediately
           followed by the next attempt, a true open firehose — until
           the interactive measurement finishes. *)
        let flooder tenant counter () =
          Client.with_connection address (fun c ->
              while not (Atomic.get stop) do
                let prio, sj = job ~tenant SP.Batch in
                match Client.call c (SP.Sim (prio, sj)) with
                | SP.Sim_done _ -> Atomic.incr counter
                | SP.Error_resp e ->
                  Atomic.incr shed;
                  if e.SP.ei_retry_after > 0. then Atomic.incr retry_hinted;
                  Unix.sleepf 0.005
                | _ -> failwith "unexpected response"
              done)
        in
        let threads =
          List.concat_map
            (fun (tenant, counter) ->
              List.init flood_threads_per_tenant (fun _ ->
                  Thread.create (flooder tenant counter) ()))
            [ ("greedy-a", done_a); ("greedy-b", done_b) ]
        in
        Unix.sleepf 0.2 (* let the flood saturate the queue first *);
        let r = interactive_pass address in
        Atomic.set stop true;
        List.iter Thread.join threads;
        r)
  in
  let offered = Atomic.get done_a + Atomic.get done_b + Atomic.get shed in
  let shed_n = Atomic.get shed in
  let a = Atomic.get done_a and b = Atomic.get done_b in
  let shed_rate = float_of_int shed_n /. float_of_int offered in
  let fairness =
    if max a b = 0 then 1.0 else float_of_int (min a b) /. float_of_int (max a b)
  in
  let inflation = o_p99 /. u_p99 in
  Printf.printf
    "%-9s p50 %6.0fms p99 %6.0fms  shed %d/%d (%.0f%%)  greedy split %d/%d (fairness %.2f)\n%!"
    "overload" (o_p50 *. 1000.) (o_p99 *. 1000.) shed_n offered (shed_rate *. 100.) a b
    fairness;
  Printf.printf
    "  -> interactive p99 inflation %.2fx under a 4x batch flood (%d shed with retry-after)\n%!"
    inflation (Atomic.get retry_hinted);
  if shed_n = 0 then failwith "overload bench shed nothing (flood never saturated?)";
  if shed_n <> Atomic.get retry_hinted then
    failwith "some shed responses carried no retry-after hint";
  let oc = open_out "BENCH_serve_overload.json" in
  Printf.fprintf oc
    "{\n  \"bench\": \"serve-overload\",\n  \"stages\": %d,\n  \"cycles\": %d,\n  \"interactive_jobs\": %d,\n  \"batch_offered\": %d,\n  \"rows\": [\n    {\"phase\":\"unloaded\",\"p50_ms\":%.1f,\"p99_ms\":%.1f},\n    {\"phase\":\"overload\",\"p50_ms\":%.1f,\"p99_ms\":%.1f,\"shed\":%d,\"shed_rate\":%.3f,\"greedy_a\":%d,\"greedy_b\":%d,\"fairness\":%.3f,\"daemon_shed\":%d}\n  ],\n  \"interactive_p99_inflation\": %.3f\n}\n"
    stages cycles inter_jobs offered (u_p50 *. 1000.) (u_p99 *. 1000.) (o_p50 *. 1000.)
    (o_p99 *. 1000.) shed_n shed_rate a b fairness o_st.SP.st_shed inflation;
  close_out oc;
  Printf.printf "  [wrote BENCH_serve_overload.json]\n";
  if !Harness.quick && inflation > 2.0 then begin
    Printf.printf "  GATE FAILED: interactive p99 is %.2fx unloaded (budget 2.0x)\n"
      inflation;
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Native backend on the daemon: warm .so cache vs cold cc runs         *)
(* ------------------------------------------------------------------ *)

(* What the on-disk/in-process .so cache is worth under daemon load.
   Both phases run with the plan cache OFF so the only cache in play is
   the native one: the cold phase gives every job a distinct design
   (unique IR digest, so every job pays a full cc run), the warm phase
   repeats one design (one compile, then memo hits).  The native stats
   counters certify which regime each phase actually ran in. *)
let native () =
  let module SP = Gsim_server.Protocol in
  let module Client = Gsim_server.Client in
  let module Daemon = Gsim_server.Daemon in
  let module Native = Gsim_engine.Native in
  header "Native - daemon jobs/sec: warm .so cache vs cold compiles";
  if not (Native.available ()) then begin
    Printf.printf "  no C compiler found - skipping (set GSIM_CC to override)\n";
    let oc = open_out "BENCH_native.json" in
    Printf.fprintf oc "{\n  \"bench\": \"native\",\n  \"available\": false\n}\n";
    close_out oc;
    Printf.printf "  [wrote BENCH_native.json]\n"
  end
  else begin
    (* A fresh cache dir per run so the cold phase genuinely compiles. *)
    let cache_dir =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "gsim-bench-native-%d" (Unix.getpid ()))
    in
    Unix.putenv "GSIM_NATIVE_CACHE" cache_dir;
    let stages = if !Harness.quick then 80 else 300 in
    let clients = 4 in
    let jobs_per_client = if !Harness.quick then 3 else 6 in
    let cycles = 200 in
    let total = clients * jobs_per_client in
    let job_of salt =
      {
        SP.sj_filename = "chain.fir";
        sj_design = serve_design ~salt stages;
        sj_opts = { SP.default_engine_opts with SP.eo_backend = "native" };
        sj_cycles = cycles;
        sj_pokes = [ "in=12345" ];
        sj_token = None;
        sj_tenant = None;
        sj_deadline = 0.;
      }
    in
    let run_phase label job_for =
      let sock =
        Filename.concat (Filename.get_temp_dir_name ())
          (Printf.sprintf "gsimd-native-%d-%s.sock" (Unix.getpid ()) label)
      in
      let spool =
        Filename.concat (Filename.get_temp_dir_name ())
          (Printf.sprintf "gsimd-native-%d-%s" (Unix.getpid ()) label)
      in
      let address = SP.Unix_sock sock in
      let devnull = open_out "/dev/null" in
      let cfg =
        {
          (Daemon.default_config address) with
          Daemon.workers = 4;
          cache_capacity = 0;
          spool = Some spool;
          log = devnull;
        }
      in
      let compiles0 = Native.stats.Native.compiles in
      let memo0 = Native.stats.Native.memo_hits in
      let disk0 = Native.stats.Native.disk_hits in
      let server = Thread.create (fun () -> Daemon.serve cfg) () in
      let rec wait_ready n =
        if not (Sys.file_exists sock) then
          if n = 0 then failwith "gsimd did not start"
          else begin
            Unix.sleepf 0.01;
            wait_ready (n - 1)
          end
      in
      wait_ready 500;
      let t0 = now () in
      let client ci () =
        Client.with_connection address (fun c ->
            for j = 0 to jobs_per_client - 1 do
              let job = job_for ((ci * jobs_per_client) + j) in
              match Client.call c (SP.Sim (SP.Batch, job)) with
              | SP.Sim_done _ -> ()
              | SP.Error_resp e -> failwith ("native bench job failed: " ^ e.SP.ei_message)
              | _ -> failwith "unexpected response"
            done)
      in
      let threads = List.init clients (fun ci -> Thread.create (client ci) ()) in
      List.iter Thread.join threads;
      let dt = now () -. t0 in
      (match Client.with_connection address (fun c -> Client.call c SP.Shutdown) with
       | SP.Shutting_down -> ()
       | _ -> failwith "shutdown failed");
      Thread.join server;
      close_out devnull;
      let compiles = Native.stats.Native.compiles - compiles0 in
      let memo_hits = Native.stats.Native.memo_hits - memo0 in
      let disk_hits = Native.stats.Native.disk_hits - disk0 in
      let jobs_per_sec = float_of_int total /. dt in
      Printf.printf
        "%-6s %3d jobs %2d clients %8.2fs %9.2f jobs/s  cc runs %2d  memo hits %2d  disk hits %2d\n%!"
        label total clients dt jobs_per_sec compiles memo_hits disk_hits;
      (jobs_per_sec, compiles, memo_hits, disk_hits)
    in
    Printf.printf "  design: %d-stage register chain, %d cycles per job, plan cache off\n%!"
      stages cycles;
    let c_jps, c_cc, c_memo, c_disk = run_phase "cold" (fun k -> job_of (1000 + (k * 17))) in
    let w_jps, w_cc, w_memo, w_disk = run_phase "warm" (fun _ -> job_of 0) in
    if c_cc < total then
      failwith
        (Printf.sprintf "cold phase expected %d cc runs, saw %d (cache not cold?)" total
           c_cc);
    if w_cc > 1 then
      failwith (Printf.sprintf "warm phase expected at most one cc run, saw %d" w_cc);
    let ratio = w_jps /. c_jps in
    Printf.printf "  -> warm .so cache is %.2fx cold (cc ran %d time(s) warm vs %d cold)\n%!"
      ratio w_cc c_cc;
    let oc = open_out "BENCH_native.json" in
    Printf.fprintf oc
      "{\n  \"bench\": \"native\",\n  \"available\": true,\n  \"stages\": %d,\n  \"cycles\": %d,\n  \"clients\": %d,\n  \"jobs\": %d,\n  \"rows\": [\n    {\"phase\":\"cold\",\"jobs_per_sec\":%.3f,\"cc_runs\":%d,\"memo_hits\":%d,\"disk_hits\":%d},\n    {\"phase\":\"warm\",\"jobs_per_sec\":%.3f,\"cc_runs\":%d,\"memo_hits\":%d,\"disk_hits\":%d}\n  ],\n  \"warm_over_cold\": %.3f\n}\n"
      stages cycles clients total c_jps c_cc c_memo c_disk w_jps w_cc w_memo w_disk ratio;
    close_out oc;
    Printf.printf "  [wrote BENCH_native.json]\n"
  end

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks of the kernel inner loops                  *)
(* ------------------------------------------------------------------ *)

let micro () =
  header "Micro (bechamel) - kernel inner loops";
  let open Bechamel in
  let core = build_design Designs.rocket_like in
  let prog = coremark_long () in
  let make_step config =
    let compiled = Gsim.instantiate config core.Stu_core.circuit in
    Designs.load_program compiled.Gsim.sim core.Stu_core.h prog;
    Designs.run_cycles compiled.Gsim.sim 64;
    Staged.stage (fun () -> compiled.Gsim.sim.Gsim_engine.Sim.step ())
  in
  (* One Test.make per reproduced table: the cycle kernel under the
     configuration that table measures. *)
  let tests =
    [
      Test.make ~name:"table1.full_cycle_step" (make_step (Gsim.verilator ()));
      Test.make ~name:"fig6.gsim_step" (make_step Gsim.gsim);
      Test.make ~name:"fig7.essent_step" (make_step Gsim.essent);
      Test.make ~name:"table3.kernighan_step"
        (make_step (Gsim.gsim_with ~partition_algorithm:"kernighan" ~max_supernode:20 ()));
      Test.make ~name:"fig9.size5_step" (make_step (Gsim.gsim_with ~max_supernode:5 ()));
      Test.make ~name:"table4.partition_gsim"
        (Staged.stage (fun () ->
             ignore (Partition.gsim core.Stu_core.circuit ~max_size:32)));
    ]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second (if !Harness.quick then 0.25 else 1.0))
      ~kde:(Some 100) ()
  in
  List.iter
    (fun test ->
      let results =
        Benchmark.all cfg instances test
        |> Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:false
                          ~predictors:[| Measure.run |])
             Toolkit.Instance.monotonic_clock
      in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] -> Printf.printf "  %-28s %12.0f ns/run\n%!" name est
          | _ -> Printf.printf "  %-28s (no estimate)\n" name)
        results)
    tests

(* ------------------------------------------------------------------ *)
(* Driver                                                               *)
(* ------------------------------------------------------------------ *)

let all () =
  table1 ();
  fig6 ();
  fig7 ();
  fig8 ();
  fig9 ();
  table3 ();
  table4 ();
  ablation ();
  model ();
  coverage ();
  fault ()

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let args =
    List.filter
      (fun a ->
        if a = "--quick" then begin
          Harness.quick := true;
          false
        end
        else true)
      args
  in
  let t0 = now () in
  (match args with
   | [] | [ "all" ] -> all ()
   | cmds ->
     List.iter
       (function
         | "table1" -> table1 ()
         | "fig6" -> fig6 ()
         | "fig7" -> fig7 ()
         | "fig8" -> fig8 ()
         | "fig9" -> fig9 ()
         | "table3" -> table3 ()
         | "table4" -> table4 ()
         | "ablation" -> ablation ()
         | "model" -> model ()
         | "coverage" -> coverage ()
         | "fault" -> fault ()
         | "backend" -> backend ()
         | "resilience" -> resilience ()
         | "fuzz" -> fuzz ()
         | "serve" -> serve ()
         | "chaos" -> chaos_bench ()
         | "overload" | "--overload" -> overload_bench ()
         | "native" -> native ()
         | "micro" -> micro ()
         | other ->
           Printf.eprintf
             "unknown bench %S (expected table1|fig6|fig7|fig8|fig9|table3|table4|ablation|model|coverage|fault|backend|resilience|fuzz|serve|chaos|overload|native|micro|all)\n"
             other;
           exit 2)
       cmds);
  Printf.printf "\n[bench completed in %.1fs]\n" (now () -. t0)
