(* FIRRTL frontend: parsing, elaboration, and end-to-end semantics of
   generated circuits (checked through the reference interpreter and the
   GSIM engine). *)

module Bits = Gsim_bits.Bits
module Circuit = Gsim_ir.Circuit
module Reference = Gsim_ir.Reference
module Partition = Gsim_partition.Partition
module Activity = Gsim_engine.Activity
module Sim = Gsim_engine.Sim
module Firrtl = Gsim_firrtl.Firrtl
module Pipeline = Gsim_passes.Pipeline

let b ~w n = Bits.of_int ~width:w n

let node_id c name =
  match Circuit.find_node c name with
  | Some n -> n.Circuit.id
  | None -> Alcotest.failf "node %S not found" name

(* --- A counter with enable and synchronous reset --------------------- *)

let counter_src =
  {|
circuit Counter :
  module Counter :
    input clock : Clock
    input reset : UInt<1>
    input en : UInt<1>
    output out : UInt<8>

    reg count : UInt<8>, clock with : (reset => (reset, UInt<8>(0)))
    when en :
      count <= tail(add(count, UInt<8>(1)), 1)
    out <= count
|}

let test_counter () =
  let { Firrtl.circuit = c; halt } = Firrtl.load_string counter_src in
  Alcotest.(check bool) "no halt" true (halt = None);
  let r = Reference.create c in
  let en = node_id c "en" and reset = node_id c "reset" and out = node_id c "out" in
  (* Architectural state: the register read node.  The [out] wire shows the
     value computed during the last evaluated cycle (pre-latch), one cycle
     behind the register — the full-cycle simulation convention. *)
  let count = node_id c "count" in
  Reference.poke r en (b ~w:1 1);
  Reference.run r 5;
  Alcotest.(check int) "counts" 5 (Bits.to_int (Reference.peek r count));
  Alcotest.(check int) "wire lags one cycle" 4 (Bits.to_int (Reference.peek r out));
  Reference.poke r en (b ~w:1 0);
  Reference.run r 3;
  Alcotest.(check int) "holds" 5 (Bits.to_int (Reference.peek r count));
  Alcotest.(check int) "wire caught up" 5 (Bits.to_int (Reference.peek r out));
  Reference.poke r reset (b ~w:1 1);
  Reference.step r;
  Reference.poke r reset (b ~w:1 0);
  Alcotest.(check int) "reset clears" 0 (Bits.to_int (Reference.peek r count))

(* --- Submodule instantiation ------------------------------------------ *)

let hierarchy_src =
  {|
circuit Top :
  module Adder :
    input a : UInt<8>
    input b : UInt<8>
    output sum : UInt<8>

    sum <= tail(add(a, b), 1)

  module Top :
    input clock : Clock
    input x : UInt<8>
    input y : UInt<8>
    output o1 : UInt<8>
    output o2 : UInt<8>

    inst add1 of Adder
    inst add2 of Adder
    add1.a <= x
    add1.b <= y
    add2.a <= add1.sum
    add2.b <= x
    o1 <= add1.sum
    o2 <= add2.sum
|}

let test_hierarchy () =
  let { Firrtl.circuit = c; _ } = Firrtl.load_string hierarchy_src in
  let r = Reference.create c in
  Reference.poke r (node_id c "x") (b ~w:8 10);
  Reference.poke r (node_id c "y") (b ~w:8 20);
  Reference.step r;
  Alcotest.(check int) "first adder" 30 (Bits.to_int (Reference.peek r (node_id c "o1")));
  Alcotest.(check int) "chained adder" 40 (Bits.to_int (Reference.peek r (node_id c "o2")))

(* --- Memory ----------------------------------------------------------- *)

let memory_src =
  {|
circuit Mem :
  module Mem :
    input clock : Clock
    input waddr : UInt<4>
    input wdata : UInt<8>
    input wen : UInt<1>
    input raddr : UInt<4>
    output rdata : UInt<8>

    mem m :
      data-type => UInt<8>
      depth => 16
      read-latency => 0
      write-latency => 1
      reader => r0
      writer => w0
    m.r0.addr <= raddr
    m.r0.en <= UInt<1>(1)
    m.r0.clk <= clock
    m.w0.addr <= waddr
    m.w0.data <= wdata
    m.w0.mask <= UInt<1>(1)
    m.w0.en <= wen
    m.w0.clk <= clock
    rdata <= m.r0.data
|}

let test_memory () =
  let { Firrtl.circuit = c; _ } = Firrtl.load_string memory_src in
  let r = Reference.create c in
  Reference.poke r (node_id c "waddr") (b ~w:4 7);
  Reference.poke r (node_id c "wdata") (b ~w:8 0xCD);
  Reference.poke r (node_id c "wen") (b ~w:1 1);
  Reference.poke r (node_id c "raddr") (b ~w:4 7);
  Reference.step r;
  Reference.poke r (node_id c "wen") (b ~w:1 0);
  Reference.step r;
  Alcotest.(check int) "readback" 0xCD (Bits.to_int (Reference.peek r (node_id c "rdata")))

(* --- Signed arithmetic ------------------------------------------------- *)

let signed_src =
  {|
circuit Signed :
  module Signed :
    input clock : Clock
    input a : SInt<8>
    input b : SInt<8>
    output sum : SInt<9>
    output quot : SInt<9>
    output less : UInt<1>
    output shifted : SInt<4>

    sum <= add(a, b)
    quot <= div(a, b)
    less <= lt(a, b)
    shifted <= shr(a, 4)
|}

let test_signed () =
  let { Firrtl.circuit = c; _ } = Firrtl.load_string signed_src in
  let r = Reference.create c in
  let poke name v = Reference.poke r (node_id c name) (Bits.of_int ~width:8 v) in
  poke "a" (-20);
  poke "b" 6;
  Reference.step r;
  let peek name = Bits.to_signed_int (Reference.peek r (node_id c name)) in
  Alcotest.(check int) "signed add" (-14) (peek "sum");
  Alcotest.(check int) "signed div truncates" (-3) (peek "quot");
  Alcotest.(check int) "signed lt" 1 (Bits.to_int (Reference.peek r (node_id c "less")));
  Alcotest.(check int) "arithmetic shr" (-2) (peek "shifted")

(* --- stop() becomes $halt ---------------------------------------------- *)

let halt_src =
  {|
circuit Halt :
  module Halt :
    input clock : Clock
    input go : UInt<1>

    reg cnt : UInt<4>, clock
    cnt <= tail(add(cnt, UInt<4>(1)), 1)
    when eq(cnt, UInt<4>(9)) :
      when go :
        stop(clock, UInt<1>(1), 0)
|}

let test_stop_halt () =
  let { Firrtl.circuit = c; halt } = Firrtl.load_string halt_src in
  let halt = match halt with Some h -> h | None -> Alcotest.fail "expected $halt" in
  let r = Reference.create c in
  Reference.poke r (node_id c "go") (b ~w:1 1);
  let rec run_until_halt n =
    if n > 20 then Alcotest.fail "halt never asserted"
    else begin
      Reference.step r;
      if Bits.is_zero (Reference.peek r halt) then run_until_halt (n + 1) else n
    end
  in
  let cycles = run_until_halt 0 in
  Alcotest.(check bool) (Printf.sprintf "halts near count 9 (at %d)" cycles) true
    (cycles >= 8 && cycles <= 11)

(* --- else-when chains and last-connect-wins ---------------------------- *)

let when_src =
  {|
circuit Sel :
  module Sel :
    input clock : Clock
    input s : UInt<2>
    output o : UInt<8>

    o <= UInt<8>(0)
    when eq(s, UInt<2>(0)) :
      o <= UInt<8>(10)
    else when eq(s, UInt<2>(1)) :
      o <= UInt<8>(20)
    else :
      o <= UInt<8>(30)
|}

let test_when_chain () =
  let { Firrtl.circuit = c; _ } = Firrtl.load_string when_src in
  let r = Reference.create c in
  let check s expected =
    Reference.poke r (node_id c "s") (b ~w:2 s);
    Reference.step r;
    Alcotest.(check int)
      (Printf.sprintf "s=%d" s)
      expected
      (Bits.to_int (Reference.peek r (node_id c "o")))
  in
  check 0 10;
  check 1 20;
  check 2 30;
  check 3 30

(* --- one-hot idiom end-to-end ------------------------------------------ *)

let onehot_src =
  {|
circuit Hot :
  module Hot :
    input clock : Clock
    input sel : UInt<3>
    output hit : UInt<1>

    node shifted = dshl(UInt<8>(1), sel)
    node masked = and(shifted, UInt<8>("h10"))
    hit <= orr(masked)
|}

let test_onehot_roundtrip () =
  let { Firrtl.circuit = c; _ } = Firrtl.load_string onehot_src in
  ignore (Pipeline.optimize ~level:Pipeline.O2 c);
  let r = Reference.create c in
  for s = 0 to 7 do
    Reference.poke r (node_id c "sel") (b ~w:3 s);
    Reference.step r;
    Alcotest.(check int)
      (Printf.sprintf "sel=%d" s)
      (if s = 4 then 1 else 0)
      (Bits.to_int (Reference.peek r (node_id c "hit")))
  done

(* --- Parse errors are located ------------------------------------------ *)

let contains hay sub =
  let n = String.length hay and m = String.length sub in
  let rec go i = i + m <= n && (String.sub hay i m = sub || go (i + 1)) in
  go 0

(* Malformed input must surface as [Firrtl.Error] with a line:col location
   and a caret excerpt — never as a bare [Failure]/[Invalid_argument]. *)
let expect_located src frag =
  match Firrtl.load_string src with
  | _ -> Alcotest.failf "expected a located error mentioning %S" frag
  | exception Firrtl.Error msg ->
    if not (contains msg frag) then
      Alcotest.failf "error %S does not mention %S" msg frag;
    if not (contains msg "^") then Alcotest.failf "error %S lacks a caret excerpt" msg
  | exception e ->
    Alcotest.failf "exception %s leaked past the frontend facade" (Printexc.to_string e)

let test_parse_errors () =
  let bad = "circuit X :\n  module X :\n    input a : UInt<8>\n    wire w ; missing colon\n" in
  expect_located bad "line 4:";
  (match Firrtl.load_string "circuit Y :\n  module Y :\n    output o : UInt<4>\n    o <= unknown_thing\n" with
   | exception Firrtl.Error _ -> ()
   | _ -> Alcotest.fail "expected elaboration error")

let test_malformed_inputs () =
  (* Lexer: integer literal beyond the native int range. *)
  expect_located
    "circuit X :\n  module X :\n    input a : UInt<99999999999999999999>\n"
    "line 3:";
  expect_located
    "circuit X :\n  module X :\n    input a : UInt<99999999999999999999>\n"
    "out of range";
  (* Lexer: unexpected character and unterminated string. *)
  expect_located "circuit X :\n  module X :\n    wire ? : UInt<1>\n" "line 3:10";
  expect_located "circuit X :\n  module X :\n    node n = UInt<8>(\"hab\n" "unterminated";
  (* Parser: malformed literal payloads must not leak [Invalid_argument]
     from [Bits.of_string]. *)
  expect_located
    "circuit X :\n  module X :\n    output o : UInt<8>\n    o <= UInt<8>(\"hzz\")\n"
    "invalid literal";
  expect_located
    "circuit X :\n  module X :\n    output o : UInt<8>\n    o <= UInt<8>(\"o99\")\n"
    "invalid literal";
  (* Parser: inconsistent indentation is a lexical error with a position. *)
  expect_located "circuit X :\n  module X :\n      wire a : UInt<1>\n    wire b : UInt<1>\n"
    "line 4:"

(* Resource bombs: a few lines of text that would explode into gigabytes
   of state or blow the parser's stack must die at the frontend with a
   positioned diagnostic, never a [Stack_overflow] or an allocation. *)
let test_resource_bombs () =
  (* Expression nesting: 300 nested [not]s overflow the recursive-descent
     stack without a depth guard. *)
  let deep_expr =
    let b = Buffer.create 4096 in
    Buffer.add_string b
      "circuit X :\n  module X :\n    input a : UInt<1>\n    output o : UInt<1>\n    o <= ";
    for _ = 1 to 300 do Buffer.add_string b "not(" done;
    Buffer.add_string b "a";
    for _ = 1 to 300 do Buffer.add_char b ')' done;
    Buffer.add_char b '\n';
    Buffer.contents b
  in
  expect_located deep_expr "expression nesting exceeds";
  (* When nesting: 300 ever-deeper conditionals. *)
  let deep_when =
    let b = Buffer.create 8192 in
    Buffer.add_string b
      "circuit X :\n  module X :\n    input a : UInt<1>\n    output o : UInt<1>\n    o <= a\n";
    for i = 0 to 299 do
      Buffer.add_string b (String.make (4 + (2 * i)) ' ');
      Buffer.add_string b "when a :\n"
    done;
    Buffer.add_string b (String.make (4 + (2 * 300)) ' ');
    Buffer.add_string b "o <= a\n";
    Buffer.contents b
  in
  expect_located deep_when "nesting exceeds";
  (* Width bomb: one declaration, 100 million bits. *)
  expect_located "circuit X :\n  module X :\n    input a : UInt<100000000>\n"
    "out of range";
  (* Memory bomb: 2^28 words of 64 bits = 16 GiB of state. *)
  expect_located
    "circuit X :\n\
    \  module X :\n\
    \    input clock : Clock\n\
    \    mem m :\n\
    \      data-type => UInt<64>\n\
    \      depth => 268435456\n\
    \      read-latency => 0\n\
    \      write-latency => 1\n\
    \      reader => r0\n"
    "over the";
  (* A negative depth never parses as an integer; it still dies with a
     position rather than wrapping the footprint check. *)
  expect_located
    "circuit X :\n\
    \  module X :\n\
    \    input clock : Clock\n\
    \    mem m :\n\
    \      data-type => UInt<8>\n\
    \      depth => -1\n\
    \      read-latency => 0\n\
    \      write-latency => 1\n\
    \      reader => r0\n"
    "line 6:"

(* --- Engines agree on an elaborated design ----------------------------- *)

let test_engines_on_firrtl_design () =
  let { Firrtl.circuit = c; _ } = Firrtl.load_string counter_src in
  let observe = List.map (fun n -> n.Circuit.id) (Circuit.outputs c) in
  let en = node_id c "en" and reset = node_id c "reset" in
  let stimulus =
    Array.init 40 (fun i ->
        [ (en, b ~w:1 (if i mod 4 = 3 then 0 else 1)); (reset, b ~w:1 (if i = 25 then 1 else 0)) ])
  in
  let expected =
    Sim.trace (Sim.of_reference (Reference.create c)) ~observe ~stimulus
  in
  ignore (Pipeline.optimize ~level:Pipeline.O3 c);
  let p = Partition.gsim c ~max_size:24 in
  let got = Sim.trace (Activity.sim (Activity.create c p)) ~observe ~stimulus in
  Alcotest.(check bool) "optimized gsim equals reference" true
    (Sim.equal_traces expected got)

let frontend_suite =
  ( "frontend",
    [
      Alcotest.test_case "counter" `Quick test_counter;
      Alcotest.test_case "hierarchy" `Quick test_hierarchy;
      Alcotest.test_case "memory" `Quick test_memory;
      Alcotest.test_case "signed ops" `Quick test_signed;
      Alcotest.test_case "stop/halt" `Quick test_stop_halt;
      Alcotest.test_case "when chains" `Quick test_when_chain;
      Alcotest.test_case "one-hot roundtrip" `Quick test_onehot_roundtrip;
      Alcotest.test_case "parse errors" `Quick test_parse_errors;
      Alcotest.test_case "malformed inputs" `Quick test_malformed_inputs;
      Alcotest.test_case "resource bombs" `Quick test_resource_bombs;
      Alcotest.test_case "engines agree" `Quick test_engines_on_firrtl_design;
    ] )

(* --- FIRRTL emission round-trips ---------------------------------------- *)

module Firrtl_emit = Gsim_firrtl.Firrtl_emit
module Stu_core = Gsim_designs.Stu_core
module Programs = Gsim_designs.Programs
module Isa = Gsim_designs.Isa

let run_stu_like circuit ~imem ~dmem ~halt_name ~instret_name (prog : Isa.program) =
  let r = Reference.create circuit in
  Reference.load_mem r imem prog.Isa.code;
  if Array.length prog.Isa.data > 0 then Reference.load_mem r dmem prog.Isa.data;
  let halt = node_id circuit halt_name in
  let rec go n =
    if n > 100_000 then Alcotest.fail "no halt"
    else begin
      Reference.step r;
      if Bits.is_zero (Reference.peek r halt) then go (n + 1) else n
    end
  in
  let cycles = go 1 in
  (cycles, Bits.to_int_trunc (Reference.peek r (node_id circuit instret_name)))

let roundtrip_core level =
  let core = Stu_core.build () in
  let c = core.Stu_core.circuit in
  (match level with
   | Some level -> ignore (Gsim_passes.Pipeline.optimize ~level c)
   | None -> ());
  let prog = Programs.quick () in
  let r1 = Reference.create (Circuit.copy c) in
  ignore r1;
  let orig =
    run_stu_like c ~imem:core.Stu_core.h.Stu_core.imem ~dmem:core.Stu_core.h.Stu_core.dmem
      ~halt_name:"halt" ~instret_name:"instret" prog
  in
  let emitted = Firrtl_emit.emit c in
  Alcotest.(check (list string)) "no lossy inits" [] emitted.Firrtl_emit.lossy_inits;
  let { Firrtl.circuit = c2; _ } = Firrtl.load_string emitted.Firrtl_emit.text in
  let back =
    run_stu_like c2 ~imem:core.Stu_core.h.Stu_core.imem ~dmem:core.Stu_core.h.Stu_core.dmem
      ~halt_name:"halt" ~instret_name:"instret" prog
  in
  Alcotest.(check (pair int int)) "same halt cycle and instret" orig back

let test_emit_roundtrip_core () = roundtrip_core None

let test_emit_roundtrip_optimized () = roundtrip_core (Some Gsim_passes.Pipeline.O3)

let test_emit_roundtrip_counter () =
  let { Firrtl.circuit = c; _ } = Firrtl.load_string counter_src in
  let emitted = Firrtl_emit.emit c in
  let { Firrtl.circuit = c2; _ } = Firrtl.load_string emitted.Firrtl_emit.text in
  let drive circuit =
    let r = Reference.create circuit in
    let en = node_id circuit "en" and reset = node_id circuit "reset" in
    Reference.poke r en (b ~w:1 1);
    Reference.run r 7;
    Reference.poke r reset (b ~w:1 1);
    Reference.step r;
    Reference.poke r reset (b ~w:1 0);
    Reference.run r 3;
    Bits.to_int (Reference.peek r (node_id circuit "count"))
  in
  Alcotest.(check int) "same behaviour" (drive c) (drive c2)

let () =
  Alcotest.run "firrtl"
    [
      frontend_suite;
      ( "emit-roundtrip",
        [
          Alcotest.test_case "counter" `Quick test_emit_roundtrip_counter;
          Alcotest.test_case "stu_core" `Quick test_emit_roundtrip_core;
          Alcotest.test_case "stu_core O3" `Quick test_emit_roundtrip_optimized;
        ] );
    ]
