(* Resilient sessions: crash-safe checkpointing, shadow lockstep
   verification, graceful degradation — and the hardened checkpoint
   format underneath them. *)

module Bits = Gsim_bits.Bits
module Expr = Gsim_ir.Expr
module Circuit = Gsim_ir.Circuit
module Rand_circuit = Gsim_ir.Rand_circuit
module Sim = Gsim_engine.Sim
module Full_cycle = Gsim_engine.Full_cycle
module Checkpoint = Gsim_engine.Checkpoint
module Native = Gsim_engine.Native
module Gsim = Gsim_core.Gsim
module Store = Gsim_resilience.Store
module Incident = Gsim_resilience.Incident
module Shadow = Gsim_resilience.Shadow
module Session = Gsim_resilience.Session
module Fault = Gsim_fault.Fault
module Campaign = Gsim_fault.Campaign
module Fault_db = Gsim_fault.Db

let b ~w n = Bits.of_int ~width:w n

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let temp_dir =
  let ctr = ref 0 in
  fun () ->
    incr ctr;
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "gsim-resilience-%d-%d" (Unix.getpid ()) !ctr)
    in
    Store.ensure_dir d;
    d

let counter_circuit () =
  let c = Circuit.create ~name:"ctr" () in
  let en = Circuit.add_input c ~name:"top.en" ~width:1 in
  let r = Circuit.add_register c ~name:"top.count" ~width:8 ~init:(Bits.zero 8) () in
  Circuit.set_next c r
    (Expr.mux (Expr.var ~width:1 en.Circuit.id)
       (Expr.unop (Expr.Extract (7, 0))
          (Expr.binop Expr.Add (Expr.var ~width:8 r.Circuit.read) (Expr.of_int ~width:8 1)))
       (Expr.var ~width:8 r.Circuit.read));
  Circuit.mark_output c r.Circuit.read;
  (c, en.Circuit.id, r.Circuit.read)

(* A stimulus that is a pure function of the absolute cycle — the
   contract Session.run needs so rollback replays are faithful. *)
let en_stimulus en cycle = [ (en, b ~w:1 (if cycle mod 7 < 5 then 1 else 0)) ]

(* --- checkpoint format v2 ------------------------------------------------ *)

let test_ck_crc_roundtrip () =
  let c, en, _ = counter_circuit () in
  let sim = Full_cycle.sim (Full_cycle.create c) in
  sim.Sim.poke en (b ~w:1 1);
  Sim.run sim 13;
  let ck = Checkpoint.capture sim in
  let s = Checkpoint.to_string ck in
  Alcotest.(check bool) "v2 header" true (contains s "ckpt 2");
  Alcotest.(check bool) "crc footer" true (contains s "\ncrc ");
  let ck' = Checkpoint.of_string s in
  Alcotest.(check bool) "roundtrip equal" true (Checkpoint.equal ck ck');
  Alcotest.(check int) "cycle survives" 13 (Checkpoint.cycle ck')

let test_ck_corruption_detected () =
  let c, en, _ = counter_circuit () in
  let sim = Full_cycle.sim (Full_cycle.create c) in
  sim.Sim.poke en (b ~w:1 1);
  Sim.run sim 5;
  let s = Checkpoint.to_string (Checkpoint.capture sim) in
  (* Flip one payload character (a hex digit of the register value). *)
  let i = ref (String.length s - 1) in
  while s.[!i] <> 'g' do decr i done;
  (* [!i] is the 'g' of the last "reg" line keyword; corrupt its value field. *)
  let j = String.index_from s !i '\n' - 1 in
  let corrupt =
    String.mapi (fun k ch -> if k = j then (if ch = '0' then '1' else '0') else ch) s
  in
  (match Checkpoint.of_string corrupt with
   | _ -> Alcotest.fail "corruption not detected"
   | exception Failure msg ->
     Alcotest.(check bool) "names crc" true (contains msg "CRC mismatch"));
  (* Version 1 (no footer) still loads. *)
  let v1 =
    String.concat "\n"
      (List.filter
         (fun l -> not (contains l "crc "))
         (String.split_on_char '\n' (String.map (fun ch -> ch) s)))
  in
  let v1 = "ckpt 1" ^ String.sub v1 6 (String.length v1 - 6) in
  ignore (Checkpoint.of_string v1)

let test_ck_precise_errors () =
  let c, en, _ = counter_circuit () in
  let sim = Full_cycle.sim (Full_cycle.create c) in
  sim.Sim.poke en (b ~w:1 1);
  Sim.run sim 3;
  let ck = Checkpoint.capture sim in
  let body =
    String.concat "\n"
      (List.filter
         (fun l -> not (contains l "crc "))
         (String.split_on_char '\n' (Checkpoint.to_string ck)))
  in
  let v1 = "ckpt 1" ^ String.sub body 6 (String.length body - 6) in
  (* Duplicate register line. *)
  let dup = v1 ^ "reg top.count 8'h00\n" in
  (match Checkpoint.of_string dup with
   | _ -> Alcotest.fail "duplicate not detected"
   | exception Failure msg ->
     Alcotest.(check bool) "duplicate names signal" true
       (contains msg "duplicate" && contains msg "top.count"));
  (* Bad value. *)
  let bad = v1 ^ "reg extra.sig notanumber\n" in
  (match Checkpoint.of_string bad with
   | _ -> Alcotest.fail "bad value not detected"
   | exception Failure msg ->
     Alcotest.(check bool) "bad value names signal" true (contains msg "extra.sig"));
  (* Missing footer on a v2 file. *)
  let nofooter = "ckpt 2" ^ String.sub body 6 (String.length body - 6) in
  (match Checkpoint.of_string nofooter with
   | _ -> Alcotest.fail "missing footer not detected"
   | exception Failure msg ->
     Alcotest.(check bool) "says missing crc" true (contains msg "crc"));
  ignore (Checkpoint.of_string ~lenient:true nofooter)

let test_ck_restore_mismatch_errors () =
  let c, en, _ = counter_circuit () in
  let sim = Full_cycle.sim (Full_cycle.create c) in
  sim.Sim.poke en (b ~w:1 1);
  Sim.run sim 2;
  let ck = Checkpoint.capture sim in
  let s = Checkpoint.to_string ck in
  (* Widen the register value: restore must name the signal and widths. *)
  let widened =
    String.concat "\n"
      (List.map
         (fun l -> if contains l "reg top.count" then "reg top.count 16'h0003" else l)
         (String.split_on_char '\n'
            (String.concat "\n"
               (List.filter (fun l -> not (contains l "crc ")) (String.split_on_char '\n' s)))))
  in
  let widened = "ckpt 1" ^ String.sub widened 6 (String.length widened - 6) in
  let ck' = Checkpoint.of_string widened in
  match Checkpoint.restore sim ck' with
  | _ -> Alcotest.fail "width mismatch not detected"
  | exception Failure msg ->
    Alcotest.(check bool) "names signal and widths" true
      (contains msg "top.count" && contains msg "16" && contains msg "8")

let test_ck_lenient_truncation () =
  let c, en, _ = counter_circuit () in
  let sim = Full_cycle.sim (Full_cycle.create c) in
  sim.Sim.poke en (b ~w:1 1);
  Sim.run sim 9;
  let s = Checkpoint.to_string (Checkpoint.capture sim) in
  (* Tear the file mid-line: strict load fails, lenient keeps the prefix. *)
  let torn = String.sub s 0 (String.length s - 12) in
  (match Checkpoint.of_string torn with
   | _ -> Alcotest.fail "torn file accepted strictly"
   | exception Failure _ -> ());
  let ck = Checkpoint.of_string ~lenient:true torn in
  Alcotest.(check int) "cycle from complete prefix" 9 (Checkpoint.cycle ck)

(* --- store ring ---------------------------------------------------------- *)

let test_store_ring_and_fallback () =
  let c, en, _ = counter_circuit () in
  let sim = Full_cycle.sim (Full_cycle.create c) in
  sim.Sim.poke en (b ~w:1 1);
  let dir = temp_dir () in
  let store = Store.create ~ring:3 dir in
  for _ = 1 to 5 do
    Sim.run sim 10;
    ignore (Store.save store (Checkpoint.capture sim))
  done;
  let cks = Store.checkpoints store in
  Alcotest.(check int) "ring pruned to 3" 3 (List.length cks);
  Alcotest.(check (list int)) "newest generations kept" [ 30; 40; 50 ] (List.map fst cks);
  (* Corrupt the newest: latest falls back to the previous generation. *)
  let _, newest = List.nth cks 2 in
  let oc = open_out newest in
  output_string oc "ckpt 2\ncycle 50\ngarbage\ncrc 00000000\n";
  close_out oc;
  (match Store.latest store with
   | Some (ck, path) ->
     Alcotest.(check int) "fell back one generation" 40 (Checkpoint.cycle ck);
     Alcotest.(check bool) "path is the older file" true (contains path "000040")
   | None -> Alcotest.fail "no generation survived");
  (* All corrupt, lenient: the newest is re-read leniently. *)
  List.iter
    (fun (_, p) ->
      let s = In_channel.with_open_bin p In_channel.input_all in
      let oc = open_out p in
      (* Truncate mid-file: strict CRC fails, prefix still parses. *)
      output_string oc (String.sub s 0 (String.length s - 10));
      close_out oc)
    (Store.checkpoints store);
  Alcotest.(check bool) "strict gives up" true (Store.latest store = None);
  match Store.latest ~lenient:true store with
  | Some (ck, _) -> Alcotest.(check int) "lenient recovers newest prefix" 50 (Checkpoint.cycle ck)
  | None -> Alcotest.fail "lenient recovery failed"

(* --- delta chains: recovery walk under injected corruption ---------------- *)

(* Torn write: keep only the first half of the file (no atomic rename —
   this is the on-disk state a SIGKILL mid-write leaves). *)
let tear_file path =
  let s = In_channel.with_open_bin path In_channel.input_all in
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc (String.sub s 0 (String.length s / 2)))

(* Silent corruption: flip one byte in the middle, length unchanged. *)
let flip_mid path =
  let s = Bytes.of_string (In_channel.with_open_bin path In_channel.input_all) in
  let i = Bytes.length s / 2 in
  Bytes.set s i (if Bytes.get s i = 'x' then 'y' else 'x');
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_bytes oc s)

(* Corrupt only the CRC footer: flip a hex digit of the "crc" line. *)
let corrupt_footer path =
  let s = In_channel.with_open_bin path In_channel.input_all in
  let rec find i =
    if i + 4 > String.length s then Alcotest.fail "no crc footer"
    else if String.sub s i 4 = "crc " then i + 4
    else find (i + 1)
  in
  let j = find 0 in
  let s =
    String.mapi (fun k ch -> if k = j then (if ch = '0' then '1' else '0') else ch) s
  in
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc s)

let test_store_delta_chain_recovery () =
  let c, en, _ = counter_circuit () in
  let fresh () = Full_cycle.sim (Full_cycle.create c) in
  let sim = fresh () in
  let cycle = ref 0 in
  let advance sim upto =
    for cy = !cycle to upto - 1 do
      List.iter (fun (id, v) -> sim.Sim.poke id v) (en_stimulus en cy);
      sim.Sim.step ()
    done;
    cycle := upto
  in
  let dir = temp_dir () in
  let store = Store.create ~ring:0 dir in
  advance sim 10;
  let ck10 = Checkpoint.with_cycle (Checkpoint.capture sim) 10 in
  let kf_path, crc10 = Store.save_keyframe store ck10 in
  (* Chain three deltas on the keyframe: 10 -> 20 -> 30 -> 40. *)
  let prev = ref (ck10, crc10) in
  let chain =
    List.map
      (fun cy ->
        advance sim cy;
        let ck = Checkpoint.with_cycle (Checkpoint.capture sim) cy in
        let base, base_crc = !prev in
        let path, crc = Store.save_delta store (Checkpoint.delta_of ~base ~base_crc ck) in
        prev := (ck, crc);
        (cy, path, ck))
      [ 20; 30; 40 ]
  in
  let ck_at cy = match List.find (fun (c, _, _) -> c = cy) chain with _, _, ck -> ck in
  let path_at cy = match List.find (fun (c, _, _) -> c = cy) chain with _, p, _ -> p in
  let latest_cycle () =
    match Store.latest store with
    | Some (ck, _) -> Some (Checkpoint.cycle ck)
    | None -> None
  in
  (* Intact chain: materializes the tip, byte-for-byte. *)
  (match Store.latest store with
   | Some (ck, _) ->
     Alcotest.(check string) "tip materializes byte-identical"
       (Checkpoint.to_string (ck_at 40)) (Checkpoint.to_string ck)
   | None -> Alcotest.fail "intact chain failed to materialize");
  let keep path = In_channel.with_open_bin path In_channel.input_all in
  let restore path s =
    Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc s)
  in
  (* Torn mid-chain delta: 30 breaks, and 40 — intact itself, but
     chained through 30 — must fall with it.  Recovery lands on 20. *)
  let saved30 = keep (path_at 30) in
  tear_file (path_at 30);
  Alcotest.(check (option int)) "torn link drops to newest intact generation"
    (Some 20) (latest_cycle ());
  (* Resume from the recovered generation = uninterrupted, bytes equal. *)
  (match Store.latest store with
   | Some (ck, _) ->
     let resumed = fresh () in
     Checkpoint.restore resumed ck;
     cycle := Checkpoint.cycle ck;
     advance resumed 60;
     let control = fresh () in
     cycle := 0;
     advance control 60;
     Alcotest.(check string) "resume after torn delta = uninterrupted run"
       (Checkpoint.to_string (Checkpoint.with_cycle (Checkpoint.capture control) 60))
       (Checkpoint.to_string (Checkpoint.with_cycle (Checkpoint.capture resumed) 60))
   | None -> Alcotest.fail "no generation after tear");
  restore (path_at 30) saved30;
  (* Silent one-byte corruption of a mid-chain delta fails its own CRC:
     same fallback, no half-applied delta. *)
  flip_mid (path_at 30);
  Alcotest.(check (option int)) "corrupt delta detected by its CRC" (Some 20)
    (latest_cycle ());
  restore (path_at 30) saved30;
  Alcotest.(check (option int)) "restored chain is whole again" (Some 40)
    (latest_cycle ());
  (* Keyframe footer corruption kills the anchor: every delta chains
     through its bytes, so strict recovery has nothing — lenient mode
     re-reads the keyframe body (intact above the footer) and recovers
     its state rather than giving up. *)
  corrupt_footer kf_path;
  Alcotest.(check (option int)) "broken anchor fails the whole chain" None
    (latest_cycle ());
  match Store.latest ~lenient:true store with
  | Some (ck, _) ->
    Alcotest.(check int) "lenient recovers the keyframe body" 10 (Checkpoint.cycle ck);
    Alcotest.(check bool) "recovered state is the keyframe's" true
      (Checkpoint.equal ck ck10)
  | None -> Alcotest.fail "lenient recovery found nothing"

let test_session_resume_torn_delta () =
  let st = Random.State.make [| 11 |] in
  let circuit =
    Rand_circuit.generate st
      { Rand_circuit.default_config with Rand_circuit.with_memory = true }
  in
  let stim = Rand_circuit.random_stimulus st circuit ~cycles:120 in
  let stimulus c = if c < Array.length stim then stim.(c) else [] in
  let clean =
    let t = Session.create Session.default Gsim.gsim circuit in
    ignore (Session.run ~stimulus t 120);
    let ck = Session.checkpoint t in
    Session.destroy t;
    Checkpoint.to_string ck
  in
  (* One 60-cycle interrupted run per injection scenario: tear the chain
     tip (fall back one generation), then corrupt the first delta (the
     whole chain dies, recovery drops to the startup keyframe). *)
  List.iter
    (fun (scenario, mutate, expect_resume) ->
      let dir = temp_dir () in
      let cfg =
        { Session.default with
          Session.checkpoint_every = Some 25;
          checkpoint_dir = Some dir }
      in
      let t1 = Session.create cfg Gsim.gsim circuit in
      let o1 = Session.run ~stimulus t1 60 in
      (* Startup keyframe at 0, deltas at 25, 50 and the run-end 60. *)
      Alcotest.(check int) (scenario ^ ": one keyframe") 1 o1.Session.keyframes_written;
      Alcotest.(check int) (scenario ^ ": three deltas") 3 o1.Session.deltas_written;
      Session.destroy t1;
      let gens = Store.generations (Store.create dir) in
      Alcotest.(check bool) (scenario ^ ": chain on disk") true
        (List.map (fun (c, _, k) -> (c, k)) gens
        = [ (0, `Full); (25, `Delta); (50, `Delta); (60, `Delta) ]);
      let path_at cy =
        match List.find (fun (c, _, _) -> c = cy) gens with _, p, _ -> p
      in
      mutate path_at;
      let t2 = Session.create cfg Gsim.gsim circuit in
      (match Session.resume t2 with
       | Some (c, _) ->
         Alcotest.(check int) (scenario ^ ": resume generation") expect_resume c
       | None -> Alcotest.fail (scenario ^ ": nothing to resume"));
      ignore (Session.run ~stimulus t2 120);
      let resumed = Checkpoint.to_string (Session.checkpoint t2) in
      Session.destroy t2;
      Alcotest.(check string) (scenario ^ ": byte-identical to uninterrupted") clean
        resumed)
    [
      ("torn tip", (fun path_at -> tear_file (path_at 60)), 50);
      ("corrupt mid-chain", (fun path_at -> flip_mid (path_at 25)), 0);
    ]

(* --- resume = uninterrupted, across every preset x backend --------------- *)

let test_resume_matrix () =
  let st = Random.State.make [| 7 |] in
  let circuit =
    Rand_circuit.generate st
      { Rand_circuit.default_config with Rand_circuit.with_memory = true }
  in
  let stim = Rand_circuit.random_stimulus st circuit ~cycles:120 in
  let stimulus c = if c < Array.length stim then stim.(c) else [] in
  let backends =
    [ `Closures; `Bytecode ] @ (if Native.available () then [ `Native ] else [])
  in
  (* Rotate the keyframe cadence across matrix cells: the default chain,
     all-full generations (no deltas), and a keyframe after every delta —
     each cadence meets several engines over the sweep. *)
  let kf_variations = [| 16; 0; 1 |] in
  let cell = ref 0 in
  List.iter
    (fun preset ->
      List.iter
        (fun backend ->
          let keyframe_every = kf_variations.(!cell mod Array.length kf_variations) in
          incr cell;
          let config = { preset with Gsim.backend } in
          let name = Printf.sprintf "%s/%s/kf%d" config.Gsim.config_name
              (Gsim_engine.Eval.to_string backend) keyframe_every in
          let dir = temp_dir () in
          let cfg =
            { Session.default with Session.checkpoint_every = Some 25;
              checkpoint_dir = Some dir; keyframe_every }
          in
          (* Interrupted: stop at 60 (checkpoints at 25 and 50 persist). *)
          let t1 = Session.create cfg config circuit in
          let o1 = Session.run ~stimulus t1 60 in
          Alcotest.(check int) (name ^ " interrupted ran") 60 o1.Session.final_cycle;
          Alcotest.(check int) (name ^ " generation accounting")
            o1.Session.checkpoints_written
            (o1.Session.keyframes_written + o1.Session.deltas_written);
          (* Engines without a runtime arena (no write barrier) persist
             all-full generations regardless of cadence. *)
          if keyframe_every = 0 then
            Alcotest.(check int) (name ^ " all generations full") 0
              o1.Session.deltas_written;
          Session.destroy t1;
          (* Resumed in a fresh session (fresh process stand-in). *)
          let t2 = Session.create cfg config circuit in
          (match Session.resume t2 with
           | Some (c, _) -> Alcotest.(check int) (name ^ " resumed at") 60 c
           | None -> Alcotest.fail (name ^ ": nothing to resume"));
          let o2 = Session.run ~stimulus t2 120 in
          Alcotest.(check int) (name ^ " resumed final") 120 o2.Session.final_cycle;
          let resumed_final = Session.checkpoint t2 in
          Session.destroy t2;
          (* Uninterrupted control. *)
          let t3 = Session.create Session.default config circuit in
          ignore (Session.run ~stimulus t3 120);
          let clean_final = Session.checkpoint t3 in
          Session.destroy t3;
          Alcotest.(check bool)
            (name ^ " resume bit-identical to uninterrupted") true
            (Checkpoint.equal resumed_final clean_final);
          Alcotest.(check string) (name ^ " resume byte-identical serialized")
            (Checkpoint.to_string clean_final)
            (Checkpoint.to_string resumed_final))
        backends)
    Gsim.all_presets

(* --- shadow verification + degradation ----------------------------------- *)

let divergence_outcome () =
  let circuit, en, count = counter_circuit () in
  let dir = temp_dir () in
  let cfg =
    { Session.default with Session.shadow_stride = Some 40; incident_dir = Some dir }
  in
  let t = Session.create ~forcible:[ count ] cfg Gsim.gsim circuit in
  (* A persistent stuck-at on the counter's bit 0 from cycle 50: the
     shadow window [40,80) must catch it. *)
  Session.inject_at t ~cycle:50 (fun sim ->
      let m = b ~w:8 1 in
      sim.Sim.force ~mask:m count m);
  let o = Session.run ~stimulus:(en_stimulus en) t 200 in
  (t, circuit, dir, o)

let test_divergence_detected () =
  let t, circuit, dir, o = divergence_outcome () in
  Alcotest.(check bool) "degraded" true o.Session.degraded;
  Alcotest.(check int) "one incident" 1 (List.length o.Session.incidents);
  let inc = List.hd o.Session.incidents in
  (match inc.Incident.kind with
   | Incident.Divergence -> ()
   | k -> Alcotest.fail ("wrong kind: " ^ Incident.kind_to_string k));
  (* Detected within one stride of the injection... *)
  Alcotest.(check bool) "window covers injection" true
    (inc.Incident.window_start <= 50 && inc.Incident.window_end <= 80);
  (* ...and bisected to the injection cycle's first visible effect. *)
  (match inc.Incident.first_divergent with
   | Some c -> Alcotest.(check bool) "first divergent in window" true (c > 40 && c <= 80)
   | None -> Alcotest.fail "no first-divergent cycle");
  Alcotest.(check bool) "register subset nonempty" true (inc.Incident.registers <> []);
  Alcotest.(check bool) "shrunk start state present" true
    (inc.Incident.start_state <> None);
  Alcotest.(check bool) "one-cycle trace" true (List.length inc.Incident.trace = 1);
  (* The repro replays: on the (still faulted) primary, restore + step
     reproduces the primary's divergent values. *)
  Alcotest.(check bool) "repro replays on primary" true
    (Shadow.replay ~circuit (Session.primary_sim t) inc);
  (* The incident report round-trips through its on-disk form. *)
  let path = Filename.concat dir "incident-001.rpt" in
  Alcotest.(check bool) "incident file written" true (Sys.file_exists path);
  let inc' = Incident.load path in
  Alcotest.(check bool) "kind survives" true (inc'.Incident.kind = Incident.Divergence);
  Alcotest.(check bool) "first divergent survives" true
    (inc'.Incident.first_divergent = inc.Incident.first_divergent);
  Alcotest.(check bool) "registers survive" true
    (inc'.Incident.registers = inc.Incident.registers);
  Alcotest.(check bool) "start state survives" true
    (match (inc'.Incident.start_state, inc.Incident.start_state) with
     | Some a, Some b -> Checkpoint.equal a b
     | _ -> false);
  Session.destroy t

let test_degraded_completes_clean () =
  let t, _, _, o = divergence_outcome () in
  let degraded_final = Session.checkpoint t in
  Session.destroy t;
  (* The same session without the fault. *)
  let circuit, en, _ = counter_circuit () in
  let t2 = Session.create Session.default Gsim.gsim circuit in
  ignore (Session.run ~stimulus:(en_stimulus en) t2 200);
  let clean_final = Session.checkpoint t2 in
  Session.destroy t2;
  Alcotest.(check int) "reaches the target" 200 o.Session.final_cycle;
  Alcotest.(check bool) "fallback state equals fault-free run" true
    (Checkpoint.equal degraded_final clean_final)

let test_transient_divergence () =
  let circuit, en, count = counter_circuit () in
  let cfg = { Session.default with Session.shadow_stride = Some 40 } in
  let t = Session.create ~forcible:[ count ] cfg Gsim.gsim circuit in
  (* A one-shot register flip: the primary's own replay will NOT
     reproduce it, so it must classify as transient. *)
  Session.inject_at t ~cycle:50 (fun sim ->
      sim.Sim.write_reg count (Bits.logxor (sim.Sim.peek count) (b ~w:8 4));
      sim.Sim.invalidate ());
  let o = Session.run ~stimulus:(en_stimulus en) t 200 in
  Alcotest.(check bool) "degraded" true o.Session.degraded;
  (match o.Session.incidents with
   | [ { Incident.kind = Incident.Transient_divergence; _ } ] -> ()
   | _ -> Alcotest.fail "expected exactly one transient-divergence incident");
  Alcotest.(check int) "completes" 200 o.Session.final_cycle;
  Session.destroy t

let test_engine_error_degrades () =
  let circuit, en, _ = counter_circuit () in
  let t = Session.create Session.default Gsim.gsim circuit in
  Session.inject_at t ~cycle:30 (fun _ -> failwith "synthetic engine fault");
  let o = Session.run ~stimulus:(en_stimulus en) t 100 in
  Alcotest.(check bool) "degraded" true o.Session.degraded;
  (match o.Session.incidents with
   | [ { Incident.kind = Incident.Engine_error msg; _ } ] ->
     Alcotest.(check bool) "message kept" true (contains msg "synthetic")
   | _ -> Alcotest.fail "expected exactly one engine-error incident");
  Alcotest.(check int) "completes on fallback" 100 o.Session.final_cycle;
  let final = Session.checkpoint t in
  Session.destroy t;
  let t2 = Session.create Session.default Gsim.gsim circuit in
  ignore (Session.run ~stimulus:(en_stimulus en) t2 100);
  Alcotest.(check bool) "state equals clean run" true
    (Checkpoint.equal final (Session.checkpoint t2));
  Session.destroy t2

let test_watchdog_degrades () =
  let circuit, en, _ = counter_circuit () in
  let cfg = { Session.default with Session.watchdog_seconds = Some 0.005 } in
  let t = Session.create cfg Gsim.gsim circuit in
  Session.inject_at t ~cycle:20 (fun _ -> Unix.sleepf 0.05);
  let o = Session.run ~stimulus:(en_stimulus en) t 60 in
  Alcotest.(check bool) "degraded" true o.Session.degraded;
  (match o.Session.incidents with
   | [ { Incident.kind = Incident.Watchdog dt; _ } ] ->
     Alcotest.(check bool) "records elapsed" true (dt > 0.005)
   | _ -> Alcotest.fail "expected exactly one watchdog incident");
  Alcotest.(check int) "completes on fallback" 60 o.Session.final_cycle;
  Session.destroy t

(* --- campaign golden-state reuse ----------------------------------------- *)

let test_campaign_golden_reuse () =
  let circuit, en, count = counter_circuit () in
  let cfg = { Campaign.horizon = 60; budget = 20 } in
  let faults =
    [
      { Fault.target = "top.count"; model = Fault.Seu 0; cycle = 10 };
      { Fault.target = "top.count"; model = Fault.Stuck (true, 1, 5); cycle = 30 };
      { Fault.target = "top.en"; model = Fault.Stuck (false, 0, 8); cycle = 12 };
    ]
  in
  let stimulus c = en_stimulus en c in
  let dir = temp_dir () in
  let db1 = Campaign.run ~stimulus ~golden_dir:dir cfg Gsim.gsim circuit faults in
  Alcotest.(check bool) "golden trace persisted" true
    (Sys.file_exists (Filename.concat dir "golden.gtr"));
  Alcotest.(check bool) "golden checkpoints persisted" true
    (Store.checkpoints (Store.create ~ring:0 dir) <> []);
  (* Second run: identical classifications out of the cache. *)
  let db2 = Campaign.run ~stimulus ~golden_dir:dir cfg Gsim.gsim circuit faults in
  let dump db =
    let p = Filename.concat (temp_dir ()) "db.fdb" in
    Fault_db.save p db;
    In_channel.with_open_bin p In_channel.input_all
  in
  Alcotest.(check string) "cached campaign identical" (dump db1) (dump db2);
  (* A different horizon invalidates the cache (no stale reuse). *)
  let db3 =
    Campaign.run ~stimulus ~golden_dir:dir { cfg with Campaign.horizon = 50 } Gsim.gsim
      circuit
      [ List.hd faults ]
  in
  Alcotest.(check int) "recomputed campaign still classifies" 1 (Fault_db.count db3);
  ignore count

(* --- CLI-level injection path (stuck key parsing) ------------------------ *)

let test_incident_text_robustness () =
  (* A bare "message" keyword line must not crash the parser. *)
  (match Incident.of_string "incident 1\nkind divergence\nwindow 0 1\nmessage\n" with
   | _ -> Alcotest.fail "bare message line accepted"
   | exception Failure msg -> Alcotest.(check bool) "rejected" true (contains msg "bad line"));
  (* Unknown header rejected. *)
  match Incident.of_string "not an incident\n" with
  | _ -> Alcotest.fail "bad header accepted"
  | exception Failure _ -> ()

let () =
  Alcotest.run "resilience"
    [
      ( "checkpoint-v2",
        [
          Alcotest.test_case "crc roundtrip" `Quick test_ck_crc_roundtrip;
          Alcotest.test_case "corruption detected" `Quick test_ck_corruption_detected;
          Alcotest.test_case "precise errors" `Quick test_ck_precise_errors;
          Alcotest.test_case "restore mismatch errors" `Quick test_ck_restore_mismatch_errors;
          Alcotest.test_case "lenient truncation" `Quick test_ck_lenient_truncation;
        ] );
      ( "store",
        [
          Alcotest.test_case "ring + corrupt fallback" `Quick test_store_ring_and_fallback;
          Alcotest.test_case "delta-chain recovery under corruption" `Quick
            test_store_delta_chain_recovery;
        ] );
      ( "resume",
        [
          Alcotest.test_case "equals uninterrupted (preset x backend)" `Slow
            test_resume_matrix;
          Alcotest.test_case "torn / corrupted delta chain" `Quick
            test_session_resume_torn_delta;
        ] );
      ( "shadow",
        [
          Alcotest.test_case "seeded divergence detected + repro" `Quick test_divergence_detected;
          Alcotest.test_case "degraded session completes clean" `Quick test_degraded_completes_clean;
          Alcotest.test_case "transient divergence" `Quick test_transient_divergence;
        ] );
      ( "degradation",
        [
          Alcotest.test_case "engine error" `Quick test_engine_error_degrades;
          Alcotest.test_case "watchdog" `Quick test_watchdog_degrades;
        ] );
      ( "campaign",
        [ Alcotest.test_case "golden-state reuse" `Quick test_campaign_golden_reuse ] );
      ( "incident",
        [ Alcotest.test_case "parser robustness" `Quick test_incident_text_robustness ] );
    ]
