(* Torture testing: randomly generated programs executed on the hardware
   core (under several engines) and compared instruction-for-instruction
   against the golden software model, plus profile-report sanity. *)

module Bits = Gsim_bits.Bits
module Circuit = Gsim_ir.Circuit
module Partition = Gsim_partition.Partition
module Sim = Gsim_engine.Sim
module Activity = Gsim_engine.Activity
module Full_cycle = Gsim_engine.Full_cycle
module Profile = Gsim_engine.Profile
module Isa = Gsim_designs.Isa
module Stu_core = Gsim_designs.Stu_core
module Designs = Gsim_designs.Designs
module Reference = Gsim_ir.Reference
module Oracle = Gsim_verify.Oracle

(* Random yet always-terminating programs: straight-line random ALU and
   memory traffic, sprinkled with bounded countdown loops and call/return
   pairs. *)
let random_program st =
  let instrs = ref [] in
  let emit i = instrs := i :: !instrs in
  (* x7 is the link register and x14 the loop counter; random code must
     not clobber them or control flow escapes. *)
  let usable = [| 1; 2; 3; 4; 5; 6; 8; 9; 10; 11; 12; 13; 15 |] in
  let reg () = usable.(Random.State.int st (Array.length usable)) in
  let functs =
    [| Isa.Add; Isa.Sub; Isa.And; Isa.Or; Isa.Xor; Isa.Sll; Isa.Srl; Isa.Sra; Isa.Slt;
       Isa.Sltu; Isa.Mul; Isa.Divu; Isa.Remu |]
  in
  let imm () = Random.State.int st 4096 - 2048 in
  let label_count = ref 0 in
  let fresh_label () =
    incr label_count;
    Printf.sprintf "tt_%d" !label_count
  in
  (* Seed registers. *)
  for r = 1 to 15 do
    emit (Isa.Alui (Isa.Add, r, 0, (r * 137) land 0x7FF))
  done;
  let blocks = 12 + Random.State.int st 20 in
  for _ = 1 to blocks do
    match Random.State.int st 6 with
    | 0 | 1 ->
      (* Random ALU burst. *)
      for _ = 1 to 4 + Random.State.int st 8 do
        let f = functs.(Random.State.int st (Array.length functs)) in
        if Random.State.bool st then emit (Isa.Alu (f, reg (), reg (), reg ()))
        else emit (Isa.Alui (f, reg (), reg (), imm ()))
      done
    | 2 ->
      (* Memory traffic (addresses wrap; all legal). *)
      for _ = 1 to 3 + Random.State.int st 5 do
        if Random.State.bool st then emit (Isa.Store (reg (), reg (), imm ()))
        else emit (Isa.Load (reg (), reg (), imm ()))
      done
    | 3 ->
      (* Bounded countdown loop on the dedicated counter register. *)
      let l = fresh_label () in
      let body = reg () in
      emit (Isa.Alui (Isa.Add, 14, 0, 1 + Random.State.int st 12));
      emit (Isa.Label l);
      emit (Isa.Alu (Isa.Add, body, body, 14));
      emit (Isa.Alui (Isa.Sub, 14, 14, 1));
      emit (Isa.Br (Isa.Bne, 14, 0, l))
    | 4 ->
      (* Forward skip over a couple of instructions. *)
      let l = fresh_label () in
      emit (Isa.Br ((if Random.State.bool st then Isa.Beq else Isa.Bltu), reg (), reg (), l));
      emit (Isa.Alui (Isa.Xor, reg (), reg (), imm ()));
      emit (Isa.Alu (Isa.Sub, reg (), reg (), reg ()));
      emit (Isa.Label l)
    | _ ->
      (* Call/return through a unique trampoline. *)
      let fn = fresh_label () and back = fresh_label () in
      emit (Isa.Jal (7, fn));
      emit (Isa.Jal (0, back));
      emit (Isa.Label fn);
      emit (Isa.Alui (Isa.Add, reg (), 0, imm ()));
      emit (Isa.Jalr (0, 7, 0));
      emit (Isa.Label back)
  done;
  emit Isa.Halt;
  let code = Isa.assemble (List.rev !instrs) in
  let data =
    Array.init 256 (fun i -> Bits.of_int ~width:32 ((i * 2654435761) land 0xFFFFFF))
  in
  { Isa.prog_name = "torture"; code; data }

let engines =
  [
    ("full_cycle", fun c -> Full_cycle.sim (Full_cycle.create c));
    ( "gsim",
      fun c ->
        let p = Partition.gsim c ~max_size:8 in
        Activity.sim (Activity.create c p) );
    ( "essent",
      fun c ->
        let p = Partition.mffc c ~max_size:20 in
        Activity.sim (Activity.create ~config:Activity.essent_config c p) );
  ]

let check_one seed =
  let st = Random.State.make [| seed; 7777 |] in
  let prog = random_program st in
  let core = Stu_core.build () in
  let c = core.Stu_core.circuit in
  let h = core.Stu_core.h in
  (* Golden conformance once, on the reference interpreter: instruction
     retirement against the software ISA model. *)
  let ref_sim () = Sim.of_reference (Reference.create (Circuit.copy c)) in
  (try Designs.check_against_golden (ref_sim ()) h prog ~dmem_size:4096
   with Failure msg -> Alcotest.failf "seed %d: golden model: %s" seed msg);
  (* Learn the halt horizon, then hold every engine to the reference in
     per-cycle lockstep through the one differential oracle. *)
  let horizon =
    let sim = ref_sim () in
    Designs.load_program sim h prog;
    Designs.run_program sim h + 2
  in
  let steps = Array.make horizon { Oracle.pokes = []; actions = [] } in
  let subjects =
    List.map
      (fun (name, mk) ->
        { Oracle.subject_name = name; build = (fun cc -> (mk cc, fun () -> ())) })
      engines
  in
  let outcomes =
    Oracle.run ~watchdog:120.0
      ~prepare:(fun sim -> Designs.load_program sim h prog)
      c steps subjects
  in
  match Oracle.first_failure outcomes with
  | Some (name, f) ->
    Alcotest.failf "seed %d on %s: %s" seed name (Oracle.failure_to_string f)
  | None -> ()

let test_torture_quick () =
  for seed = 1 to 10 do
    check_one seed
  done

let prop_torture =
  QCheck.Test.make ~name:"random programs conform on every engine" ~count:15
    (QCheck.make ~print:string_of_int QCheck.Gen.(int_range 100 1_000_000))
    (fun seed ->
      check_one seed;
      true)

(* --- Profile sanity ----------------------------------------------------- *)

let test_profile_report () =
  let core = Stu_core.build () in
  let part = Partition.gsim core.Stu_core.circuit ~max_size:8 in
  let engine = Activity.create core.Stu_core.circuit part in
  let sim = Activity.sim engine in
  Designs.load_program sim core.Stu_core.h (Gsim_designs.Programs.quick ());
  ignore (Designs.run_program sim core.Stu_core.h);
  Designs.run_cycles sim 200;  (* idle tail *)
  let r = Profile.analyze ~top:5 core.Stu_core.circuit part engine in
  Alcotest.(check bool) "has entries" true (r.Profile.entries <> []);
  Alcotest.(check bool) "entries sorted" true
    (let shares = List.map (fun e -> e.Profile.share) r.Profile.entries in
     List.sort (fun a b -> compare b a) shares = shares);
  let total_share = List.fold_left (fun a e -> a +. e.Profile.share) 0. r.Profile.entries in
  Alcotest.(check bool) "shares are a fraction" true (total_share <= 1.0 +. 1e-9);
  Alcotest.(check bool) "cycles recorded" true (r.Profile.cycles > 200)

let test_profile_idle_detection () =
  (* A design with a frozen half: its supernodes must show up as idle. *)
  let core = Stu_core.build () in
  let part = Partition.gsim core.Stu_core.circuit ~max_size:8 in
  let engine = Activity.create core.Stu_core.circuit part in
  let sim = Activity.sim engine in
  Designs.load_program sim core.Stu_core.h (Gsim_designs.Programs.quick ());
  ignore (Designs.run_program sim core.Stu_core.h);
  let hits_at_halt = Activity.supernode_hits engine in
  Designs.run_cycles sim 500;
  let hits_after = Activity.supernode_hits engine in
  Alcotest.(check bool) "no evaluations while halted" true (hits_at_halt = hits_after)

let () =
  Alcotest.run "torture"
    [
      ( "programs",
        [
          Alcotest.test_case "ten seeds" `Quick test_torture_quick;
          QCheck_alcotest.to_alcotest prop_torture;
        ] );
      ( "profile",
        [
          Alcotest.test_case "report" `Quick test_profile_report;
          Alcotest.test_case "idle detection" `Quick test_profile_idle_detection;
        ] );
    ]
