(* Verilog frontend: parsing, elaboration, semantics (validated against
   hand expectations, the FIRRTL frontend on an equivalent design, and the
   engines), and reset inference. *)

module Bits = Gsim_bits.Bits
module Circuit = Gsim_ir.Circuit
module Reference = Gsim_ir.Reference
module Partition = Gsim_partition.Partition
module Activity = Gsim_engine.Activity
module Sim = Gsim_engine.Sim
module Verilog = Gsim_verilog.Verilog
module Firrtl = Gsim_firrtl.Firrtl
module Pipeline = Gsim_passes.Pipeline

let b ~w n = Bits.of_int ~width:w n

let node_id c name =
  match Circuit.find_node c name with
  | Some n -> n.Circuit.id
  | None -> Alcotest.failf "node %S not found" name

let counter_v =
  {|
// An enabled counter with synchronous reset.
module counter (input clk, input rst, input en, output [7:0] count);
  reg [7:0] q;
  always @(posedge clk) begin
    if (rst)
      q <= 8'h0;
    else if (en)
      q <= q + 8'h1;
  end
  assign count = q;
endmodule
|}

let test_counter () =
  let c = Verilog.load_string counter_v in
  let r = Reference.create c in
  Reference.poke r (node_id c "en") (b ~w:1 1);
  Reference.run r 5;
  Alcotest.(check int) "counts" 5 (Bits.to_int (Reference.peek r (node_id c "q")));
  Reference.poke r (node_id c "rst") (b ~w:1 1);
  Reference.step r;
  Alcotest.(check int) "resets" 0 (Bits.to_int (Reference.peek r (node_id c "q")));
  Reference.poke r (node_id c "rst") (b ~w:1 0);
  Reference.poke r (node_id c "en") (b ~w:1 0);
  Reference.run r 4;
  Alcotest.(check int) "holds" 0 (Bits.to_int (Reference.peek r (node_id c "q")))

let test_reset_inference () =
  (* The [if (rst) q <= 0] idiom must become a register reset so the
     slow-path optimization applies to Verilog designs. *)
  let c = Verilog.load_string counter_v in
  (match Circuit.registers c with
   | [ r ] -> Alcotest.(check bool) "reset inferred" true (r.Circuit.reset <> None)
   | _ -> Alcotest.fail "expected one register");
  let n = Gsim_passes.Reset_opt.pass.Gsim_passes.Pass.run c in
  Alcotest.(check int) "slow path applies" 1 n

let alu_v =
  {|
module alu (input clk, input [1:0] op, input [7:0] a, input [7:0] b,
            output reg [7:0] y);
  always @* begin
    y = 8'h0;
    case (op)
      2'd0: y = a + b;
      2'd1: y = a - b;
      2'd2: y = a & b;
      default: y = a ^ b;
    endcase
  end
endmodule
|}

let test_comb_case () =
  let c = Verilog.load_string alu_v in
  let r = Reference.create c in
  let check op a bb expected =
    Reference.poke r (node_id c "op") (b ~w:2 op);
    Reference.poke r (node_id c "a") (b ~w:8 a);
    Reference.poke r (node_id c "b") (b ~w:8 bb);
    Reference.step r;
    Alcotest.(check int) (Printf.sprintf "op=%d" op) (expected land 0xFF)
      (Bits.to_int (Reference.peek r (node_id c "y")))
  in
  check 0 200 100 300;
  check 1 100 200 (-100);
  check 2 0xF0 0x3C (0xF0 land 0x3C);
  check 3 0xF0 0x3C (0xF0 lxor 0x3C)

let test_blocking_sequencing () =
  (* Blocking assignments: later reads see earlier writes in the block. *)
  let src =
    {|
module seq (input clk, input [7:0] a, output reg [7:0] y, output reg [7:0] z);
  always @* begin
    y = a + 8'd1;
    z = y + 8'd1;
  end
endmodule
|}
  in
  let c = Verilog.load_string src in
  let r = Reference.create c in
  Reference.poke r (node_id c "a") (b ~w:8 10);
  Reference.step r;
  Alcotest.(check int) "y" 11 (Bits.to_int (Reference.peek r (node_id c "y")));
  Alcotest.(check int) "z sees y" 12 (Bits.to_int (Reference.peek r (node_id c "z")))

let memory_v =
  {|
module memo (input clk, input [3:0] waddr, input [7:0] wdata, input wen,
             input [3:0] raddr, output [7:0] rdata);
  reg [7:0] mem [15:0];
  always @(posedge clk) begin
    if (wen)
      mem[waddr] <= wdata;
  end
  assign rdata = mem[raddr];
endmodule
|}

let test_memory () =
  let c = Verilog.load_string memory_v in
  let r = Reference.create c in
  Reference.poke r (node_id c "waddr") (b ~w:4 9);
  Reference.poke r (node_id c "wdata") (b ~w:8 0x5A);
  Reference.poke r (node_id c "wen") (b ~w:1 1);
  Reference.poke r (node_id c "raddr") (b ~w:4 9);
  Reference.step r;
  Reference.poke r (node_id c "wen") (b ~w:1 0);
  Reference.step r;
  Alcotest.(check int) "readback" 0x5A (Bits.to_int (Reference.peek r (node_id c "rdata")))

let hierarchy_v =
  {|
module half_adder (input a, input b, output s, output c);
  assign s = a ^ b;
  assign c = a & b;
endmodule

module full_adder (input clk, input x, input y, input cin,
                   output sum, output cout);
  wire s1;
  wire c1;
  wire c2;
  half_adder ha1 (.a(x), .b(y), .s(s1), .c(c1));
  half_adder ha2 (.a(s1), .b(cin), .s(sum), .c(c2));
  assign cout = c1 | c2;
endmodule
|}

let test_hierarchy () =
  let c = Verilog.load_string hierarchy_v in
  let r = Reference.create c in
  for x = 0 to 1 do
    for y = 0 to 1 do
      for cin = 0 to 1 do
        Reference.poke r (node_id c "x") (b ~w:1 x);
        Reference.poke r (node_id c "y") (b ~w:1 y);
        Reference.poke r (node_id c "cin") (b ~w:1 cin);
        Reference.step r;
        let total = x + y + cin in
        Alcotest.(check int)
          (Printf.sprintf "sum %d%d%d" x y cin)
          (total land 1)
          (Bits.to_int (Reference.peek r (node_id c "sum")));
        Alcotest.(check int)
          (Printf.sprintf "carry %d%d%d" x y cin)
          (total lsr 1)
          (Bits.to_int (Reference.peek r (node_id c "cout")))
      done
    done
  done

let test_operators () =
  let src =
    {|
module ops (input clk, input [7:0] a, input [7:0] b,
            output [15:0] prod, output [7:0] shifted, output [7:0] ashifted,
            output red, output [16:0] wide, output [1:0] bitsel);
  assign prod = {8'h0, a} * {8'h0, b};
  assign shifted = a >> b[2:0];
  assign ashifted = a >>> b[2:0];
  assign red = ^a;
  assign wide = {1'b1, a, b};
  assign bitsel = {a[7], a[0]};
endmodule
|}
  in
  let c = Verilog.load_string src in
  let r = Reference.create c in
  Reference.poke r (node_id c "a") (b ~w:8 0xC4);
  Reference.poke r (node_id c "b") (b ~w:8 0x02);
  Reference.step r;
  let peek n = Bits.to_int (Reference.peek r (node_id c n)) in
  Alcotest.(check int) "mul" (0xC4 * 2) (peek "prod");
  Alcotest.(check int) "lsr" (0xC4 lsr 2) (peek "shifted");
  Alcotest.(check int) "asr keeps sign" ((0xC4 lsr 2) lor 0xC0) (peek "ashifted");
  Alcotest.(check int) "xor reduce" 1 (peek "red");
  Alcotest.(check int) "concat" ((1 lsl 16) lor (0xC4 lsl 8) lor 2) (peek "wide");
  Alcotest.(check int) "bit selects" 0b10 (peek "bitsel")

(* Cross-frontend: the same design written in Verilog and FIRRTL must be
   trace-equivalent. *)
let test_cross_frontend () =
  let fir =
    {|
circuit Gray :
  module Gray :
    input clock : Clock
    input en : UInt<1>
    output g : UInt<8>

    reg q : UInt<8>, clock
    when en :
      q <= tail(add(q, UInt<8>(1)), 1)
    g <= xor(q, shr(q, 1))
|}
  in
  let v =
    {|
module gray (input clk, input en, output [7:0] g);
  reg [7:0] q;
  always @(posedge clk)
    if (en) q <= q + 8'd1;
  assign g = q ^ (q >> 3'd1);
endmodule
|}
  in
  let cf = (Firrtl.load_string fir).Firrtl.circuit in
  let cv = Verilog.load_string v in
  let run c en_name g_name =
    let r = Reference.create c in
    let en = node_id c en_name and g = node_id c g_name in
    List.init 30 (fun i ->
        Reference.poke r en (b ~w:1 (if i mod 7 = 3 then 0 else 1));
        Reference.step r;
        Bits.to_int (Reference.peek r g))
  in
  Alcotest.(check (list int)) "identical traces" (run cf "en" "g") (run cv "en" "g")

let test_engines_on_verilog () =
  let c = Verilog.load_string counter_v in
  let observe = [ node_id c "q" ] in
  let en = node_id c "en" and rst = node_id c "rst" in
  let stimulus =
    Array.init 40 (fun i ->
        [ (en, b ~w:1 (if i mod 3 = 0 then 0 else 1)); (rst, b ~w:1 (if i = 20 then 1 else 0)) ])
  in
  let expected = Sim.trace (Sim.of_reference (Reference.create c)) ~observe ~stimulus in
  ignore (Pipeline.optimize ~level:Pipeline.O3 c);
  let p = Partition.gsim c ~max_size:8 in
  let got = Sim.trace (Activity.sim (Activity.create c p)) ~observe ~stimulus in
  Alcotest.(check bool) "optimized gsim equals reference" true (Sim.equal_traces expected got)

let test_errors () =
  let expect_error src =
    match Verilog.load_string src with
    | exception Verilog.Error _ -> ()
    | _ -> Alcotest.fail "expected error"
  in
  expect_error "module m (input clk, output x); assign x = y; endmodule";
  expect_error "module m (input clk, output x); assign x = 1'b0; assign x = 1'b1; endmodule";
  expect_error
    "module m (input clk, output reg x); always @(posedge clk) x = 1'b1; endmodule";
  (* a clock is only a clock when some posedge uses it *)
  expect_error
    "module m (input clk, output o); reg r; always @(posedge clk) r <= ~clk; assign o = r; endmodule";
  expect_error "module a (input clk); b i (); endmodule module b (input clk); a i (); endmodule"

let contains hay sub =
  let n = String.length hay and m = String.length sub in
  let rec go i = i + m <= n && (String.sub hay i m = sub || go (i + 1)) in
  go 0

(* Malformed input must surface as [Verilog.Error] with a line:col location
   and a caret excerpt — never as a bare [Failure]/[Invalid_argument]. *)
let expect_located src frag =
  match Verilog.load_string src with
  | _ -> Alcotest.failf "expected a located error mentioning %S" frag
  | exception Verilog.Error msg ->
    if not (contains msg frag) then
      Alcotest.failf "error %S does not mention %S" msg frag;
    if not (contains msg "^") then Alcotest.failf "error %S lacks a caret excerpt" msg
  | exception e ->
    Alcotest.failf "exception %s leaked past the frontend facade" (Printexc.to_string e)

let test_malformed_inputs () =
  (* Lexer: stray character, unterminated comment, and literals that do not
     fit the native int range. *)
  expect_located "module m (input a, output x);\n  assign x = `a;\nendmodule" "line 2:";
  expect_located "module m (input a);\n/* no close" "unterminated comment";
  expect_located "module m (input a, output x);\n  assign x = 99999999999999999999;\nendmodule"
    "out of range";
  expect_located "module m (input a, output x);\n  assign x = 8'hzz;\nendmodule"
    "line 2:14";
  (* Parser: a part-select bound wider than [max_int] must not leak
     [Failure] from [Bits.to_int]. *)
  expect_located
    "module m (input a, output x);\n  wire [64'hFFFFFFFFFFFFFFFF:0] w;\n  assign x = a;\nendmodule"
    "line 2:";
  expect_located "module m (inout a);\nendmodule" "line 1:11"

(* Resource bombs: tiny sources encoding huge widths, memories,
   replications, or unbounded recursion must fail with a positioned
   diagnostic, never a [Stack_overflow] or a giant allocation. *)
let test_resource_bombs () =
  (* Expression nesting: 300 parenthesised levels. *)
  let deep_expr =
    let b = Buffer.create 4096 in
    Buffer.add_string b "module m (input a, output x);\n  assign x = ";
    for _ = 1 to 300 do Buffer.add_char b '(' done;
    Buffer.add_char b 'a';
    for _ = 1 to 300 do Buffer.add_char b ')' done;
    Buffer.add_string b ";\nendmodule";
    Buffer.contents b
  in
  expect_located deep_expr "nesting exceeds";
  (* Unary chains recurse without ever re-entering the expression
     parser: [~~~~...a] needs its own guard. *)
  let tildes = String.concat "" (List.init 300 (fun _ -> "~")) in
  expect_located
    (Printf.sprintf "module m (input a, output x);\n  assign x = %sa;\nendmodule" tildes)
    "nesting exceeds";
  (* Statement nesting: 300 nested begin blocks. *)
  let deep_stmt =
    let b = Buffer.create 8192 in
    Buffer.add_string b
      "module m (input clk, input a, output reg x);\n  always @(posedge clk)\n    ";
    for _ = 1 to 300 do Buffer.add_string b "begin " done;
    Buffer.add_string b "x <= a;";
    for _ = 1 to 300 do Buffer.add_string b " end" done;
    Buffer.add_string b "\nendmodule";
    Buffer.contents b
  in
  expect_located deep_stmt "statement nesting exceeds";
  (* Width bomb: a 100-million-bit wire. *)
  expect_located
    "module m (input a, output x);\n  wire [99999999:0] w;\n  assign x = a;\nendmodule"
    "bits wide (limit";
  (* Memory bomb: 2^28 words of 64 bits = 16 GiB of state. *)
  expect_located
    "module m (input clk);\n  reg [63:0] mem [268435455:0];\nendmodule"
    "over the";
  (* Replication bomb: {100000000{a}} would allocate a 100-Mbit value. *)
  expect_located
    "module m (input a, output x);\n  assign x = |{100000000{a}};\nendmodule"
    "out of range"

let () =
  Alcotest.run "verilog"
    [
      ( "frontend",
        [
          Alcotest.test_case "counter" `Quick test_counter;
          Alcotest.test_case "reset inference" `Quick test_reset_inference;
          Alcotest.test_case "comb case" `Quick test_comb_case;
          Alcotest.test_case "blocking sequencing" `Quick test_blocking_sequencing;
          Alcotest.test_case "memory" `Quick test_memory;
          Alcotest.test_case "hierarchy" `Quick test_hierarchy;
          Alcotest.test_case "operators" `Quick test_operators;
          Alcotest.test_case "cross-frontend" `Quick test_cross_frontend;
          Alcotest.test_case "engines agree" `Quick test_engines_on_verilog;
          Alcotest.test_case "errors" `Quick test_errors;
          Alcotest.test_case "malformed inputs" `Quick test_malformed_inputs;
          Alcotest.test_case "resource bombs" `Quick test_resource_bombs;
        ] );
    ]
