(* The differential verification subsystem: exact IR text round-trips,
   the lockstep oracle, and the full canary path — a deliberately
   injected miscompile in the Simplify pass must be caught by a seeded
   campaign, shrunk to a tiny circuit and stimulus, bisected to the
   guilty pass, recorded as a replayable repro, and reproduced by
   replay.  Plus corpus crash-safety (resume, torn lines, merge) and
   campaign determinism. *)

module Bits = Gsim_bits.Bits
module Circuit = Gsim_ir.Circuit
module Expr = Gsim_ir.Expr
module Reference = Gsim_ir.Reference
module Rand_circuit = Gsim_ir.Rand_circuit
module Ir_text = Gsim_ir.Ir_text
module Sim = Gsim_engine.Sim
module Pipeline = Gsim_passes.Pipeline
module Oracle = Gsim_verify.Oracle
module Shrink = Gsim_verify.Shrink
module Bisect = Gsim_verify.Bisect
module Repro = Gsim_verify.Repro
module Corpus = Gsim_verify.Corpus
module Fuzz = Gsim_verify.Fuzz

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let temp_dir prefix =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "%s-%d" prefix (Unix.getpid ()))
  in
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
  dir

(* --- Ir_text ----------------------------------------------------------- *)

let reference_outputs c stimulus =
  let sim = Sim.of_reference (Reference.create (Circuit.copy c)) in
  let observe = List.map (fun (n : Circuit.node) -> n.Circuit.id) (Circuit.outputs c) in
  Sim.trace sim ~observe ~stimulus

let test_ir_text_roundtrip () =
  for seed = 1 to 8 do
    let st = Random.State.make [| 7100; seed |] in
    let c = Rand_circuit.generate st Rand_circuit.default_config in
    let text = Ir_text.to_string c in
    let c' = Ir_text.of_string text in
    Alcotest.(check int)
      "node count survives" (Circuit.node_count c) (Circuit.node_count c');
    Alcotest.(check string)
      "serialization is a fixpoint" text (Ir_text.to_string c');
    (* same behavior: names identify nodes across the round-trip *)
    let stimulus = Rand_circuit.random_stimulus st c ~cycles:8 in
    let name id = (Circuit.node c id).Circuit.name in
    let stimulus' =
      Array.map
        (List.map (fun (id, v) ->
             match Circuit.find_node c' (name id) with
             | Some n -> (n.Circuit.id, v)
             | None -> Alcotest.failf "input %s lost" (name id)))
        stimulus
    in
    let t1 = reference_outputs c stimulus in
    let t2 = reference_outputs c' stimulus' in
    Alcotest.(check bool) "same reference trace" true (Sim.equal_traces t1 t2)
  done

let test_ir_text_rejects_garbage () =
  List.iter
    (fun s ->
      match Ir_text.of_string s with
      | exception Failure msg ->
        Alcotest.(check bool) "message names the format" true
          (contains msg "gsimir" || contains msg "line")
      | _ -> Alcotest.fail "accepted garbage")
    [ ""; "bogus"; "gsimir 2\n"; "gsimir 1\nnode x\n";
      "gsimir 1\ncircuit c\nnode 0 input 4 a\noutput 7\n" ]

(* --- Oracle ------------------------------------------------------------ *)

let test_oracle_clean () =
  let st = Random.State.make [| 7200 |] in
  let c = Rand_circuit.generate st Rand_circuit.default_config in
  let steps =
    Oracle.steps_of_stimulus (Rand_circuit.random_stimulus st c ~cycles:10)
  in
  let subjects = List.map Fuzz.subject_of_setup Fuzz.default_setups in
  let outcomes = Oracle.run c steps subjects in
  Alcotest.(check int) "all subjects ran" (List.length subjects)
    (List.length outcomes);
  (match Oracle.first_failure outcomes with
   | None -> ()
   | Some (s, f) ->
     Alcotest.failf "unexpected failure in %s: %s" s (Oracle.failure_to_string f));
  List.iter
    (fun (o : Oracle.outcome) ->
      match o.Oracle.o_counters with
      | Some ct -> Alcotest.(check bool) "cycles counted" true (ct.cycles > 0)
      | None -> Alcotest.fail "no counters")
    outcomes

let test_oracle_detects_planted_divergence () =
  (* a subject that lies about one output on cycle 3 must be reported as
     a mismatch at cycle 3 on that node *)
  let st = Random.State.make [| 7300 |] in
  let c = Rand_circuit.generate st Rand_circuit.default_config in
  let steps =
    Oracle.steps_of_stimulus (Rand_circuit.random_stimulus st c ~cycles:8)
  in
  let out = List.hd (Circuit.outputs c) in
  let liar =
    { Oracle.subject_name = "liar";
      build =
        (fun cc ->
          let sim = Sim.of_reference (Reference.create cc) in
          let cycle = ref 0 in
          ( { sim with
              Sim.step = (fun () -> incr cycle; sim.Sim.step ());
              peek =
                (fun id ->
                  let v = sim.Sim.peek id in
                  if id = out.Circuit.id && !cycle = 4 then Bits.lognot v else v)
            },
            fun () -> () )) }
  in
  match Oracle.run c steps [ liar ] with
  | [ { Oracle.o_failure = Some (Oracle.Mismatch m); _ } ] ->
    Alcotest.(check int) "cycle" 3 m.Oracle.at_cycle;
    Alcotest.(check int) "node" out.Circuit.id m.Oracle.node_id
  | [ { Oracle.o_failure = Some f; _ } ] ->
    Alcotest.failf "wrong failure: %s" (Oracle.failure_to_string f)
  | _ -> Alcotest.fail "no failure detected"

let test_oracle_crash_and_hang () =
  let st = Random.State.make [| 7350 |] in
  let c = Rand_circuit.generate st Rand_circuit.default_config in
  let steps =
    Oracle.steps_of_stimulus (Rand_circuit.random_stimulus st c ~cycles:5)
  in
  let crasher =
    { Oracle.subject_name = "crasher";
      build = (fun _ -> failwith "kaboom") }
  in
  let sleeper =
    { Oracle.subject_name = "sleeper";
      build =
        (fun cc ->
          let sim = Sim.of_reference (Reference.create cc) in
          ( { sim with
              Sim.step = (fun () -> ignore (Unix.select [] [] [] 0.05); sim.Sim.step ()) },
            fun () -> () )) }
  in
  match Oracle.run ~watchdog:0.01 c steps [ crasher; sleeper ] with
  | [ { Oracle.o_failure = Some (Oracle.Crash msg); _ };
      { Oracle.o_failure = Some (Oracle.Hang _); _ } ] ->
    Alcotest.(check bool) "crash message" true (contains msg "kaboom")
  | outcomes ->
    List.iter
      (fun (o : Oracle.outcome) ->
        Printf.printf "%s: %s\n" o.Oracle.o_subject
          (match o.Oracle.o_failure with
           | Some f -> Oracle.failure_to_string f
           | None -> "ok"))
      outcomes;
    Alcotest.fail "expected crash then hang"

(* --- Corpus ------------------------------------------------------------ *)

let sample_finding ?(repro = Some "fuzz-001.rpt") () =
  { Corpus.f_subject = "gsim+bytecode";
    f_kind = "mismatch";
    f_culprit = "pass:simplify";
    f_nodes = 6;
    f_cycles = 3;
    f_repro = repro }

let test_corpus_roundtrip_and_merge () =
  let a = Corpus.create ~seed:42 () in
  Corpus.add a 0 Corpus.Ok;
  Corpus.add a 1 (Corpus.Fail (sample_finding ()));
  let b = Corpus.of_string (Corpus.to_string a) in
  Alcotest.(check bool) "text round-trip" true (Corpus.equal a b);
  (* torn final line tolerated only leniently *)
  let torn = Corpus.to_string a ^ "case 2 fail gsim" in
  (match Corpus.of_string torn with
   | exception Failure _ -> ()
   | _ -> Alcotest.fail "strict parse accepted a torn line");
  let lenient = Corpus.of_string ~lenient:true torn in
  Alcotest.(check int) "torn line skipped" 2 (Corpus.count lenient);
  (* merge of disjoint shards; seed conflicts rejected *)
  let shard = Corpus.create ~seed:42 () in
  Corpus.add shard 7 Corpus.Ok;
  let merged = Corpus.merge a shard in
  Alcotest.(check int) "merged" 3 (Corpus.count merged);
  let other_seed = Corpus.create ~seed:43 () in
  (match Corpus.merge a other_seed with
   | exception Failure msg ->
     Alcotest.(check bool) "seed mismatch named" true (contains msg "seed")
   | _ -> Alcotest.fail "merged different seeds");
  (* conflicting duplicate rejected *)
  let conflict = Corpus.create ~seed:42 () in
  Corpus.add conflict 1 Corpus.Ok;
  match Corpus.merge a conflict with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "merged conflicting case records"

let test_corpus_buckets () =
  let t = Corpus.create ~seed:1 () in
  Corpus.add t 0 (Corpus.Fail (sample_finding ()));
  Corpus.add t 1
    (Corpus.Fail { (sample_finding ~repro:None ()) with Corpus.f_nodes = 3; f_cycles = 1 });
  Corpus.add t 2 Corpus.Ok;
  match Corpus.buckets t with
  | [ b ] ->
    Alcotest.(check string) "bucket key" "pass:simplify|mismatch" b.Corpus.b_bucket;
    Alcotest.(check int) "count" 2 b.Corpus.b_count;
    Alcotest.(check int) "min nodes" 3 b.Corpus.b_min_nodes;
    Alcotest.(check int) "min cycles" 1 b.Corpus.b_min_cycles;
    Alcotest.(check (option string)) "representative repro"
      (Some "fuzz-001.rpt") b.Corpus.b_repro
  | l -> Alcotest.failf "expected one bucket, got %d" (List.length l)

(* --- The canary: catch, shrink, bisect, replay ------------------------- *)

let canary_campaign dir =
  { Fuzz.default_campaign with
    Fuzz.seed = 20260806;
    cases = 40;
    cycles = 8;
    (* one representative activity engine + one full-cycle engine keeps
       the test fast; the nightly CI job runs the full matrix *)
    setups = [ Fuzz.setup_of_name "gsim+bytecode"; Fuzz.setup_of_name "verilator+bytecode" ];
    shrink_budget = 500;
    dir;
    inject_miscompile = true }

let run_canary =
  (* the campaign is deterministic, so run it once and let several tests
     assert on the result *)
  let cache = ref None in
  fun () ->
    match !cache with
    | Some r -> r
    | None ->
      let dir = temp_dir "gsim-fuzz-canary" in
      Array.iter
        (fun f -> Sys.remove (Filename.concat dir f))
        (Sys.readdir dir);
      let r = Fuzz.run (canary_campaign dir) in
      cache := Some (dir, r);
      (dir, r)

let test_canary_detected_and_bisected () =
  let _, result = run_canary () in
  let failures = Corpus.failures result.Fuzz.db in
  Alcotest.(check bool) "campaign found the miscompile" true (failures <> []);
  let buckets = Corpus.buckets result.Fuzz.db in
  let simplify_bucket =
    List.find_opt
      (fun (b : Corpus.bucket_stats) ->
        contains b.Corpus.b_bucket "pass:simplify")
      buckets
  in
  match simplify_bucket with
  | None ->
    Alcotest.failf "no pass:simplify bucket; got: %s"
      (String.concat ", "
         (List.map (fun (b : Corpus.bucket_stats) -> b.Corpus.b_bucket) buckets))
  | Some b ->
    Alcotest.(check bool) "shrunk to <= 10 nodes" true (b.Corpus.b_min_nodes <= 10);
    Alcotest.(check bool) "shrunk to <= 5 cycles" true (b.Corpus.b_min_cycles <= 5);
    Alcotest.(check bool) "repro recorded" true (b.Corpus.b_repro <> None)

let test_canary_repro_replays () =
  let dir, result = run_canary () in
  let buckets = Corpus.buckets result.Fuzz.db in
  let b =
    List.find
      (fun (b : Corpus.bucket_stats) -> b.Corpus.b_repro <> None)
      buckets
  in
  let path = Filename.concat dir (Option.get b.Corpus.b_repro) in
  let replay = Fuzz.replay ~inject_miscompile:true path in
  if not replay.Fuzz.rp_reproduced then
    Alcotest.failf "replay did not reproduce: expected %s, got %s"
      replay.Fuzz.rp_expected_signature replay.Fuzz.rp_actual;
  (* without the injected miscompile the repro must NOT reproduce — the
     recorded signature is specific to the planted bug *)
  let clean = Fuzz.replay ~inject_miscompile:false path in
  Alcotest.(check bool) "clean build passes the repro" false
    clean.Fuzz.rp_reproduced

let test_canary_deterministic () =
  let _, first = run_canary () in
  let dir2 = temp_dir "gsim-fuzz-canary2" in
  Array.iter (fun f -> Sys.remove (Filename.concat dir2 f)) (Sys.readdir dir2);
  let second = Fuzz.run (canary_campaign dir2) in
  Alcotest.(check string) "same seed, same corpus"
    (Corpus.to_string first.Fuzz.db) (Corpus.to_string second.Fuzz.db)

let test_canary_resume () =
  let dir, result = run_canary () in
  (* resuming a finished campaign re-runs nothing *)
  let resumed = Fuzz.run ~resume:true (canary_campaign dir) in
  Alcotest.(check int) "nothing re-ran" 0 resumed.Fuzz.ran;
  Alcotest.(check int) "everything skipped" (Corpus.count result.Fuzz.db)
    resumed.Fuzz.skipped

(* --- Clean pipeline: a short campaign finds nothing -------------------- *)

let test_clean_campaign_is_quiet () =
  let dir = temp_dir "gsim-fuzz-clean" in
  Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  let result =
    Fuzz.run
      { Fuzz.default_campaign with
        Fuzz.seed = 11;
        cases = 6;
        cycles = 8;
        setups = Fuzz.default_setups;
        dir }
  in
  Alcotest.(check int) "ran all cases" 6 result.Fuzz.ran;
  Alcotest.(check int) "no failures" 0
    (List.length (Corpus.failures result.Fuzz.db))

(* --- Shrink sanity on a crafted failure -------------------------------- *)

let test_shrink_reduces_crafted_case () =
  (* circuit: out = a + (b * c); a "bug" that only manifests when node
     [mul]'s value is odd.  The shrinker should keep the mul cone and
     drop the rest. *)
  let c = Circuit.create ~name:"crafted" () in
  let a = Circuit.add_input c ~name:"a" ~width:8 in
  let b = Circuit.add_input c ~name:"b" ~width:8 in
  let d = Circuit.add_input c ~name:"d" ~width:8 in
  let mul =
    Circuit.add_logic c ~name:"mul"
      (Expr.binop Expr.Mul
         (Expr.var ~width:8 b.Circuit.id)
         (Expr.var ~width:8 d.Circuit.id))
  in
  let pad =
    Circuit.add_logic c ~name:"pad"
      (Expr.unop (Expr.Pad_unsigned 16) (Expr.var ~width:8 a.Circuit.id))
  in
  let sum =
    Circuit.add_logic c ~name:"sum"
      (Expr.binop Expr.Add
         (Expr.var ~width:16 pad.Circuit.id)
         (Expr.var ~width:16 mul.Circuit.id))
  in
  Circuit.mark_output c sum.Circuit.id;
  Circuit.mark_output c mul.Circuit.id;
  let noise =
    Circuit.add_logic c ~name:"noise"
      (Expr.unop Expr.Not (Expr.var ~width:8 a.Circuit.id))
  in
  Circuit.mark_output c noise.Circuit.id;
  Circuit.validate c;
  let steps =
    Array.init 6 (fun i ->
        { Oracle.pokes =
            [ (a.Circuit.id, Bits.of_int ~width:8 (i * 3));
              (b.Circuit.id, Bits.of_int ~width:8 (i + 1));
              (d.Circuit.id, Bits.of_int ~width:8 3) ];
          actions = [] })
  in
  (* failure model: "fails" when the mul output is odd at some cycle *)
  (* failure model observes [mul] like the oracle observes outputs: it
     must stay output-marked for the failure to count *)
  let check (cc : Circuit.t) (ss : Oracle.step array) =
    match Circuit.find_node cc "mul" with
    | None -> false
    | Some mn when not mn.Circuit.is_output -> false
    | Some mn ->
      (try
         let sim = Sim.of_reference (Reference.create (Circuit.copy cc)) in
         let odd = ref false in
         Array.iter
           (fun (s : Oracle.step) ->
             List.iter (fun (id, v) -> sim.Sim.poke id v) s.Oracle.pokes;
             sim.Sim.step ();
             if Bits.bit (sim.Sim.peek mn.Circuit.id) 0 then odd := true)
           ss;
         !odd
       with _ -> false)
  in
  Alcotest.(check bool) "original fails" true (check c steps);
  let r = Shrink.run ~budget:300 ~check c steps in
  Alcotest.(check bool) "shrunk still fails" true
    (check r.Shrink.circuit r.Shrink.steps);
  Alcotest.(check bool) "fewer nodes" true
    (Circuit.node_count r.Shrink.circuit < Circuit.node_count c);
  Alcotest.(check bool) "one cycle suffices" true
    (Array.length r.Shrink.steps <= 2);
  (* the noise cone must be gone *)
  Alcotest.(check bool) "noise dropped" true
    (Circuit.find_node r.Shrink.circuit "noise" = None)

(* ----------------------------------------------------------------------- *)

let () =
  Alcotest.run "verify"
    [ ( "ir_text",
        [ Alcotest.test_case "roundtrip" `Quick test_ir_text_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick test_ir_text_rejects_garbage ] );
      ( "oracle",
        [ Alcotest.test_case "clean matrix" `Quick test_oracle_clean;
          Alcotest.test_case "planted divergence" `Quick
            test_oracle_detects_planted_divergence;
          Alcotest.test_case "crash and hang" `Quick test_oracle_crash_and_hang ] );
      ( "corpus",
        [ Alcotest.test_case "roundtrip and merge" `Quick
            test_corpus_roundtrip_and_merge;
          Alcotest.test_case "buckets" `Quick test_corpus_buckets ] );
      ( "canary",
        [ Alcotest.test_case "detected, shrunk, bisected" `Quick
            test_canary_detected_and_bisected;
          Alcotest.test_case "repro replays" `Quick test_canary_repro_replays;
          Alcotest.test_case "deterministic" `Quick test_canary_deterministic;
          Alcotest.test_case "resume skips done work" `Quick test_canary_resume ] );
      ( "campaign",
        [ Alcotest.test_case "clean pipeline is quiet" `Quick
            test_clean_campaign_is_quiet ] );
      ( "shrink",
        [ Alcotest.test_case "crafted case reduces" `Quick
            test_shrink_reduces_crafted_case ] ) ]
