(* Bytecode backend: the flat register-machine evaluator must be
   bit-identical to the closure backend on every engine that can select
   it, over hand-written edge cases and a large random-circuit torture
   sweep.  Also pins the SWAR popcount and the signed div/rem corner
   cases, and checks the [instrs] counter surfaces only under bytecode. *)

module Bits = Gsim_bits.Bits
module Expr = Gsim_ir.Expr
module Circuit = Gsim_ir.Circuit
module Reference = Gsim_ir.Reference
module Rand_circuit = Gsim_ir.Rand_circuit
module Partition = Gsim_partition.Partition
module Sim = Gsim_engine.Sim
module Counters = Gsim_engine.Counters
module Runtime = Gsim_engine.Runtime
module Full_cycle = Gsim_engine.Full_cycle
module Activity = Gsim_engine.Activity
module Parallel = Gsim_engine.Parallel
module Collect = Gsim_coverage.Collect
module Db = Gsim_coverage.Db
module Oracle = Gsim_verify.Oracle

let b ~w n = Bits.of_int ~width:w n

(* --- popcount --------------------------------------------------------- *)

let naive_popcount n =
  let rec go acc n = if n = 0 then acc else go (acc + (n land 1)) (n lsr 1) in
  go 0 n

let test_popcount () =
  let check v =
    Alcotest.(check int)
      (Printf.sprintf "popcount %d" v)
      (naive_popcount v) (Runtime.popcount_int v)
  in
  List.iter check [ 0; 1; 2; 3; 0x55; 0xAA; (1 lsl 62) - 1; 1 lsl 61; max_int ];
  let st = Random.State.make [| 4242 |] in
  for _ = 1 to 1000 do
    check (Int64.to_int (Random.State.int64 st (Int64.shift_left 1L 62)))
  done

(* --- signed div/rem edge cases --------------------------------------- *)

(* One circuit computing both signed quotient and remainder of the two
   inputs; pinned stimulus hits zero divisors, the most-negative value and
   -1 at width 8, then the same corners at width 62 (the widest packed
   width, where the parenthesization of the sign-extended operands in the
   emitted closures matters most). *)
let divrem_circuit ~w =
  let c = Circuit.create ~name:"divrem" () in
  let a = Circuit.add_input c ~name:"a" ~width:w in
  let d = Circuit.add_input c ~name:"d" ~width:w in
  let va = Expr.var ~width:w a.Circuit.id and vd = Expr.var ~width:w d.Circuit.id in
  let q = Circuit.add_logic c ~name:"q" (Expr.binop Expr.Div_signed va vd) in
  let r = Circuit.add_logic c ~name:"r" (Expr.binop Expr.Rem_signed va vd) in
  let uq = Circuit.add_logic c ~name:"uq" (Expr.binop Expr.Div va vd) in
  let ur = Circuit.add_logic c ~name:"ur" (Expr.binop Expr.Rem va vd) in
  List.iter (fun (n : Circuit.node) -> Circuit.mark_output c n.Circuit.id) [ q; r; uq; ur ];
  (c, a.Circuit.id, d.Circuit.id)

let divrem_corners w =
  (* Bit patterns, interpreted signed by the ops. *)
  let minv = 1 lsl (w - 1) in
  let m1 = (1 lsl w) - 1 in
  [ 0; 1; m1; minv; minv lor 1; m1 lxor minv (* max positive *) ]

let test_signed_divrem ~w () =
  let c, a, d = divrem_circuit ~w in
  let corners = divrem_corners w in
  let stimulus =
    List.concat_map (fun x -> List.map (fun y -> [ (a, b ~w x); (d, b ~w y) ]) corners) corners
    |> Array.of_list
  in
  let observe = List.map (fun (n : Circuit.node) -> n.Circuit.id) (Circuit.outputs c) in
  let expected = Sim.trace (Sim.of_reference (Reference.create c)) ~observe ~stimulus in
  List.iter
    (fun backend ->
      let sim = Full_cycle.sim (Full_cycle.create ~backend c) in
      let got = Sim.trace sim ~observe ~stimulus in
      if not (Sim.equal_traces expected got) then
        Alcotest.failf "signed div/rem (w=%d) diverges under %s" w
          (Gsim_engine.Eval.to_string backend))
    [ `Closures; `Bytecode ]

(* --- differential torture: closures vs bytecode ----------------------- *)

(* Engines that accept a backend, as (name, make). *)
let engines backend :
    (string * (Circuit.t -> Sim.t * (unit -> unit))) list =
  [
    ("full_cycle", fun c -> (Full_cycle.sim (Full_cycle.create ~backend c), fun () -> ()));
    ( "essent_mffc",
      fun c ->
        let p = Partition.mffc c ~max_size:12 in
        ( Activity.sim ~name:"essent_mffc"
            (Activity.create ~config:Activity.essent_config ~backend c p),
          fun () -> () ) );
    ( "gsim",
      fun c ->
        let p = Partition.gsim c ~max_size:24 in
        ( Activity.sim ~name:"gsim"
            (Activity.create ~config:Activity.gsim_config ~backend c p),
          fun () -> () ) );
  ]

let parallel2 backend c =
  let t = Parallel.create ~backend ~threads:2 c in
  (Parallel.sim t, fun () -> Parallel.destroy t)

(* Both backends of every engine run through the one differential oracle
   (Gsim_verify.Oracle) against the reference interpreter; bit-identical
   traces on all live nodes follow from both matching the reference.  The
   [changed] counters must also be backend-independent. *)
let oracle_subjects backend makes =
  List.map
    (fun (name, make) ->
      { Oracle.subject_name =
          Printf.sprintf "%s/%s" name (Gsim_engine.Eval.to_string backend);
        build = make })
    makes

let torture_one ~seed ~with_parallel =
  let st = Random.State.make [| seed; 3111 |] in
  let cfg =
    {
      Rand_circuit.default_config with
      Rand_circuit.logic_nodes = 25 + (seed mod 40);
      max_width = (if seed mod 4 = 0 then 120 else 62);
    }
  in
  let c = Rand_circuit.generate st cfg in
  let stimulus = Rand_circuit.random_stimulus st c ~cycles:12 in
  let steps = Oracle.steps_of_stimulus stimulus in
  let observe = Collect.default_observed c in
  let subjects backend =
    oracle_subjects backend
      (engines backend
      @ if with_parallel then [ ("parallel2", parallel2 backend) ] else [])
  in
  let outcomes =
    Oracle.run ~observe c steps (subjects `Closures @ subjects `Bytecode)
  in
  (match Oracle.first_failure outcomes with
   | Some (s, f) ->
     Alcotest.failf "seed %d: %s: %s" seed s (Oracle.failure_to_string f)
   | None -> ());
  let changed name =
    match
      List.find_opt (fun (o : Oracle.outcome) -> o.Oracle.o_subject = name) outcomes
    with
    | Some { Oracle.o_counters = Some ct; _ } -> ct.Counters.changed
    | _ -> Alcotest.failf "seed %d: no counters for %s" seed name
  in
  List.iter
    (fun (name, _) ->
      Alcotest.(check int)
        (Printf.sprintf "seed %d: %s: changed counter" seed name)
        (changed (name ^ "/closures"))
        (changed (name ^ "/bytecode")))
    (engines `Closures
    @ if with_parallel then [ ("parallel2", parallel2 `Closures) ] else [])

let test_torture () =
  for seed = 0 to 119 do
    torture_one ~seed ~with_parallel:(seed mod 12 = 0)
  done

(* --- differential force/release torture (fault-injection layer) -------- *)

(* Random force/release schedules over random circuits must leave every
   engine × backend combination bit-identical to the reference
   interpreter — the soundness property the fault campaign stands on.
   Targets are declared forcible at build time, so under bytecode they
   are demoted out of segment fusion into guarded closures. *)
let force_engines backend targets :
    (string * (Circuit.t -> Sim.t * (unit -> unit))) list =
  [
    ( "full_cycle",
      fun c -> (Full_cycle.sim (Full_cycle.create ~backend ~forcible:targets c), fun () -> ()) );
    ( "essent_mffc",
      fun c ->
        let p = Partition.mffc c ~max_size:12 in
        ( Activity.sim ~name:"essent_mffc"
            (Activity.create ~config:Activity.essent_config ~backend ~forcible:targets c p),
          fun () -> () ) );
    ( "gsim",
      fun c ->
        let p = Partition.gsim c ~max_size:24 in
        ( Activity.sim ~name:"gsim"
            (Activity.create ~config:Activity.gsim_config ~backend ~forcible:targets c p),
          fun () -> () ) );
    ( "parallel2",
      fun c ->
        let t = Parallel.create ~backend ~forcible:targets ~threads:2 c in
        (Parallel.sim t, fun () -> Parallel.destroy t) );
  ]

let torture_force_one ~seed =
  let st = Random.State.make [| seed; 9021 |] in
  let cfg =
    {
      Rand_circuit.default_config with
      Rand_circuit.logic_nodes = 20 + (seed mod 25);
      max_width = (if seed mod 5 = 0 then 100 else 62);
    }
  in
  let c = Rand_circuit.generate st cfg in
  let cycles = 14 in
  let stimulus = Rand_circuit.random_stimulus st c ~cycles in
  (* Up to four forcible targets among logic nodes and register reads. *)
  let candidates =
    Circuit.fold_nodes c ~init:[] ~f:(fun acc n ->
        match n.Circuit.kind with
        | Circuit.Logic | Circuit.Reg_read _ -> n.Circuit.id :: acc
        | _ -> acc)
    |> Array.of_list
  in
  let targets =
    List.init
      (min 4 (Array.length candidates))
      (fun _ -> candidates.(Random.State.int st (Array.length candidates)))
    |> List.sort_uniq compare
  in
  (* Per-cycle schedule: each target may be forced (random mask/value,
     sometimes a full-word force) or released before the step. *)
  let schedule =
    Array.init cycles (fun _ ->
        List.filter_map
          (fun id ->
            let w = (Circuit.node c id).Circuit.width in
            match Random.State.int st 5 with
            | 0 -> Some (id, Some (None, Bits.random st ~width:w))
            | 1 ->
              Some (id, Some (Some (Bits.random st ~width:w), Bits.random st ~width:w))
            | 2 -> Some (id, None)
            | _ -> None)
          targets)
  in
  let observe = Collect.default_observed c in
  let steps =
    Array.init cycles (fun i ->
        {
          Oracle.pokes = stimulus.(i);
          actions =
            List.map
              (function
                | id, Some (mask, v) -> Oracle.Force { target = id; mask; value = v }
                | id, None -> Oracle.Release id)
              schedule.(i);
        })
  in
  let subjects =
    List.concat_map
      (fun backend -> oracle_subjects backend (force_engines backend targets))
      [ `Closures; `Bytecode ]
  in
  match Oracle.first_failure (Oracle.run ~observe c steps subjects) with
  | Some (s, f) ->
    Alcotest.failf "seed %d: %s (targets %s): forced run diverges from reference: %s"
      seed s
      (String.concat "," (List.map string_of_int targets))
      (Oracle.failure_to_string f)
  | None -> ()

let test_force_torture () =
  for seed = 0 to 59 do
    torture_force_one ~seed
  done

(* --- coverage databases must not depend on the backend ---------------- *)

let test_coverage_identical () =
  for seed = 0 to 9 do
    let st = Random.State.make [| seed; 5150 |] in
    let c = Rand_circuit.generate st Rand_circuit.default_config in
    let stimulus = Rand_circuit.random_stimulus st c ~cycles:20 in
    let observe = Collect.default_observed c in
    let db_of backend =
      let sim = Full_cycle.sim (Full_cycle.create ~backend c) in
      let coll, wrapped = Collect.create sim in
      ignore (Sim.trace wrapped ~observe ~stimulus);
      Collect.db coll
    in
    if not (Db.equal (db_of `Closures) (db_of `Bytecode)) then
      Alcotest.failf "seed %d: coverage db differs between backends" seed
  done

(* --- instrs counter --------------------------------------------------- *)

let counter_circuit () =
  let c = Circuit.create ~name:"counter" () in
  let en = Circuit.add_input c ~name:"en" ~width:1 in
  let count = Circuit.add_register c ~name:"count" ~width:8 ~init:(Bits.zero 8) () in
  let count_read = Expr.var ~width:8 count.Circuit.read in
  Circuit.set_next c count
    (Expr.mux
       (Expr.var ~width:1 en.Circuit.id)
       (Expr.unop (Expr.Extract (7, 0))
          (Expr.binop Expr.Add count_read (Expr.of_int ~width:8 1)))
       count_read);
  Circuit.mark_output c count.Circuit.read;
  (c, en.Circuit.id)

let test_instrs_counter () =
  let c, en = counter_circuit () in
  let run backend =
    let t = Full_cycle.create ~backend c in
    Full_cycle.poke t en (b ~w:1 1);
    for _ = 1 to 5 do
      Full_cycle.step t
    done;
    Full_cycle.counters t
  in
  let cc = run `Closures and cb = run `Bytecode in
  Alcotest.(check int) "closures retire no bytecode" 0 cc.Counters.instrs;
  Alcotest.(check bool) "bytecode counts instructions" true (cb.Counters.instrs > 0);
  (* JSON gating: the field appears only when nonzero. *)
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool)
    "closures json omits instrs" false
    (contains (Counters.to_json cc) "instrs");
  Alcotest.(check bool)
    "bytecode json has instrs" true
    (contains (Counters.to_json cb) "instrs")

let () =
  Alcotest.run "bytecode"
    [
      ("popcount", [ Alcotest.test_case "swar vs naive" `Quick test_popcount ]);
      ( "divrem",
        [
          Alcotest.test_case "signed corners w=8" `Quick (test_signed_divrem ~w:8);
          Alcotest.test_case "signed corners w=62" `Quick (test_signed_divrem ~w:62);
        ] );
      ( "differential",
        [
          Alcotest.test_case "torture 120 random circuits" `Slow test_torture;
          Alcotest.test_case "force/release torture 60 circuits" `Slow test_force_torture;
          Alcotest.test_case "coverage identical" `Quick test_coverage_identical;
        ] );
      ("counters", [ Alcotest.test_case "instrs gating" `Quick test_instrs_counter ]);
    ]
