(* Fault-injection campaigns: key syntax, database round-trips and merge,
   end-to-end classification on a crafted circuit (identical across every
   engine preset and both evaluation backends), crash-safe resume, the
   per-fault budget, write_reg/checkpoint-restore consumer wake, and the
   combinational-loop diagnostic. *)

module Bits = Gsim_bits.Bits
module Expr = Gsim_ir.Expr
module Circuit = Gsim_ir.Circuit
module Reference = Gsim_ir.Reference
module Rand_circuit = Gsim_ir.Rand_circuit
module Partition = Gsim_partition.Partition
module Sim = Gsim_engine.Sim
module Checkpoint = Gsim_engine.Checkpoint
module Full_cycle = Gsim_engine.Full_cycle
module Activity = Gsim_engine.Activity
module Parallel = Gsim_engine.Parallel
module Collect = Gsim_coverage.Collect
module Gsim = Gsim_core.Gsim
module Fault = Gsim_fault.Fault
module Fdb = Gsim_fault.Db
module Campaign = Gsim_fault.Campaign
module Freport = Gsim_fault.Report

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

(* --- fault keys -------------------------------------------------------- *)

let test_key_roundtrip () =
  let strings =
    [
      "a#seu:3@10";
      "cpu.alu.acc#stuck0:0+4@7";
      "x#stuck1:61+1@0";
      "w#word:8'hff+2@3";
      "odd#name#seu:1@5";
    ]
  in
  List.iter
    (fun k -> Alcotest.(check string) k k (Fault.key (Fault.of_key k)))
    strings;
  let f =
    { Fault.target = "w"; model = Fault.Word_force (Bits.of_int ~width:9 5, 3); cycle = 2 }
  in
  Alcotest.(check bool) "word value survives" true (Fault.of_key (Fault.key f) = f);
  List.iter
    (fun bad ->
      match Fault.of_key bad with
      | _ -> Alcotest.failf "key %S should not parse" bad
      | exception Failure _ -> ())
    [ "a#seu:x@1"; "a@3"; "nosigil"; "a#bogus:1@2"; "a#seu:1"; "#seu:1@2"; "a#word:zz+1@0" ]

let test_random_faults () =
  let st = Random.State.make [| 7; 1 |] in
  let c = Rand_circuit.generate st Rand_circuit.default_config in
  let fs = Fault.random ~seed:3 ~count:25 ~horizon:20 c in
  Alcotest.(check bool) "some faults" true (List.length fs > 0);
  (* Deterministic in the seed, and every key parses back. *)
  let fs2 = Fault.random ~seed:3 ~count:25 ~horizon:20 c in
  Alcotest.(check bool) "deterministic" true (fs = fs2);
  List.iter (fun f -> ignore (Fault.of_key (Fault.key f))) fs

(* --- database ----------------------------------------------------------- *)

let sample_db () =
  let db = Fdb.create ~design:"d" ~horizon:10 () in
  Fdb.add db "a#seu:0@1" { Fdb.classification = Fdb.Detected 3; cycles_run = 3 };
  Fdb.add db "a#seu:1@1" { Fdb.classification = Fdb.Latent; cycles_run = 9 };
  Fdb.add db "b#stuck1:0+2@0" { Fdb.classification = Fdb.Masked; cycles_run = 10 };
  Fdb.add db "z#seu:0@3" { Fdb.classification = Fdb.Uninjectable "no-such-node"; cycles_run = 0 };
  db

let test_db_roundtrip () =
  let db = sample_db () in
  let db2 = Fdb.of_string (Fdb.to_string db) in
  Alcotest.(check bool) "roundtrip" true (Fdb.equal db db2);
  (* Idempotent re-add, conflicting add raises. *)
  Fdb.add db "a#seu:0@1" { Fdb.classification = Fdb.Detected 3; cycles_run = 3 };
  (match Fdb.add db "a#seu:0@1" { Fdb.classification = Fdb.Masked; cycles_run = 9 } with
   | () -> Alcotest.fail "conflict should raise"
   | exception Failure _ -> ());
  (* Classification token syntax. *)
  List.iter
    (fun cls ->
      Alcotest.(check bool) "cls roundtrip" true
        (Fdb.classification_of_string (Fdb.classification_to_string cls) = cls))
    [ Fdb.Detected 7; Fdb.Latent; Fdb.Masked; Fdb.Hang; Fdb.Uninjectable "no-such-node" ]

let test_db_merge_and_lenient () =
  let a = Fdb.create ~design:"d" ~horizon:10 () in
  Fdb.add a "a#seu:0@1" { Fdb.classification = Fdb.Detected 2; cycles_run = 2 };
  let b = Fdb.create ~design:"d" ~horizon:10 () in
  Fdb.add b "b#seu:0@1" { Fdb.classification = Fdb.Masked; cycles_run = 9 };
  let m = Fdb.merge a b in
  Alcotest.(check int) "merged count" 2 (Fdb.count m);
  let h = Fdb.create ~design:"d" ~horizon:11 () in
  (match Fdb.merge a h with
   | _ -> Alcotest.fail "horizon mismatch should raise"
   | exception Failure _ -> ());
  (* A torn final line is dropped only under lenient parsing. *)
  let torn = Fdb.to_string (sample_db ()) ^ "fault c#seu:0@2 dete" in
  (match Fdb.of_string torn with
   | _ -> Alcotest.fail "torn line should raise strictly"
   | exception Failure _ -> ());
  let db = Fdb.of_string ~lenient:true torn in
  Alcotest.(check bool) "torn line dropped" true (Fdb.equal db (sample_db ()))

(* --- classification ------------------------------------------------------ *)

(* in(4) -> reg a -> o = a[1:0] (the only output)
                  -> keep' = keep xor zext4(a[2])   (never observed)
   With in pinned to 15, faults on distinct bits of [a] produce each
   classification: bit 0 -> detected through o, bit 2 -> latent through
   keep, bit 3 -> masked (nothing reads it, a is reloaded next cycle). *)
let cls_circuit () =
  let c = Circuit.create ~name:"fcls" () in
  let inp = Circuit.add_input c ~name:"in" ~width:4 in
  let a = Circuit.add_register c ~name:"a" ~width:4 ~init:(Bits.zero 4) () in
  Circuit.set_next c a (Expr.var ~width:4 inp.Circuit.id);
  let va = Expr.var ~width:4 a.Circuit.read in
  let o = Circuit.add_logic c ~name:"o" (Expr.unop (Expr.Extract (1, 0)) va) in
  Circuit.mark_output c o.Circuit.id;
  let keep = Circuit.add_register c ~name:"keep" ~width:4 ~init:(Bits.zero 4) () in
  Circuit.set_next c keep
    (Expr.binop Expr.Xor
       (Expr.var ~width:4 keep.Circuit.read)
       (Expr.unop (Expr.Pad_unsigned 4) (Expr.unop (Expr.Extract (2, 2)) va)));
  (c, inp.Circuit.id)

let expected_classes =
  [
    ("a#seu:0@3", Fdb.Detected 3);
    ("a#seu:2@2", Fdb.Latent);
    ("a#seu:3@2", Fdb.Masked);
    ("keep#seu:0@2", Fdb.Latent);
    ("keep#stuck1:3+3@1", Fdb.Latent);
    ("in#stuck0:1+2@1", Fdb.Detected 2);
    ("o#stuck0:0+2@4", Fdb.Detected 4);
    ("o#stuck1:0+2@4", Fdb.Masked);
    ("a#word:4'hf+2@2", Fdb.Masked);
    ("ghost#seu:0@1", Fdb.Uninjectable "no-such-node");
    ("a#seu:9@1", Fdb.Uninjectable "bit-out-of-range");
    ("a#word:3'h7+2@1", Fdb.Uninjectable "width-mismatch");
    ("a#seu:0@99", Fdb.Uninjectable "cycle-beyond-horizon");
  ]

let cls_config = { Campaign.horizon = 8; budget = 8 }

let run_campaign ?skip ?on_record ?stop_after preset =
  let c, inp = cls_circuit () in
  let stimulus _ = [ (inp, Bits.of_int ~width:4 15) ] in
  Campaign.run ?skip ?on_record ?stop_after ~stimulus cls_config preset c
    (List.map (fun (k, _) -> Fault.of_key k) expected_classes)

let presets =
  [
    Gsim.reference;
    Gsim.verilator ();
    Gsim.verilator ~threads:2 ();
    { (Gsim.verilator ()) with Gsim.backend = `Closures };
    Gsim.arcilator;
    Gsim.essent;
    { Gsim.essent with Gsim.backend = `Closures };
    Gsim.gsim;
    { Gsim.gsim with Gsim.backend = `Closures };
  ]

let test_classification () =
  let db = run_campaign Gsim.gsim in
  List.iter
    (fun (key, expected) ->
      match Fdb.find db key with
      | Some r ->
        if r.Fdb.classification <> expected then
          Alcotest.failf "%s: expected %s, got %s" key
            (Fdb.classification_to_string expected)
            (Fdb.classification_to_string r.Fdb.classification)
      | None -> Alcotest.failf "%s: missing record" key)
    expected_classes;
  let s = Fdb.summary db in
  Alcotest.(check int) "no hangs" 0 s.Fdb.hangs;
  Alcotest.(check int) "all classified" (List.length expected_classes) s.Fdb.total;
  (* Reports render without raising and carry the headline numbers. *)
  let text = Freport.to_string ~latent:10 db in
  Alcotest.(check bool) "text mentions latent key" true (contains text "keep#seu:0@2");
  let json = Freport.to_json db in
  Alcotest.(check bool) "json has coverage" true (contains json "\"coverage_percent\"")

let test_cross_engine_identity () =
  let reference = run_campaign Gsim.reference in
  List.iter
    (fun preset ->
      let db = run_campaign preset in
      if not (Fdb.equal reference db) then
        Alcotest.failf "campaign on %s differs from reference:\n%s\nvs\n%s"
          preset.Gsim.config_name (Fdb.to_string reference) (Fdb.to_string db))
    presets

(* --- resume and sharding ------------------------------------------------- *)

let test_resume () =
  let full = run_campaign Gsim.gsim in
  let path = Filename.temp_file "gsim_fault" ".fdb" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  (* First shard: interrupted after 4 faults, appending as it goes. *)
  Fdb.init_file path (Fdb.create ~design:"fcls" ~horizon:cls_config.Campaign.horizon ());
  let on_record k r = Fdb.append_record path k r in
  ignore (run_campaign ~on_record ~stop_after:4 Gsim.gsim);
  (* Simulate a kill mid-append: a torn trailing record. *)
  let oc = open_out_gen [ Open_wronly; Open_append ] 0o644 path in
  output_string oc "fault torn#seu:0@1 detec";
  close_out oc;
  let partial = Fdb.load ~lenient:true path in
  Alcotest.(check int) "partial has 4 records" 4 (Fdb.count partial);
  (* Resume: skip completed faults, append the rest. *)
  Fdb.init_file path partial;
  let db2 = run_campaign ~skip:(Fdb.mem partial) ~on_record Gsim.gsim in
  Alcotest.(check int) "resume runs the remainder"
    (List.length expected_classes - 4)
    (Fdb.count db2);
  let final = Fdb.load path in
  if not (Fdb.equal full final) then
    Alcotest.failf "resumed campaign differs:\n%s\nvs\n%s" (Fdb.to_string full)
      (Fdb.to_string final);
  (* Sharding: two disjoint halves merge into the same database. *)
  let keys = List.map fst expected_classes in
  let half1 = List.filteri (fun i _ -> i mod 2 = 0) keys in
  let in_half1 k = List.mem k half1 in
  let a = run_campaign ~skip:(fun k -> not (in_half1 k)) Gsim.gsim in
  let b = run_campaign ~skip:in_half1 Gsim.gsim in
  Alcotest.(check bool) "shards merge to full" true (Fdb.equal full (Fdb.merge a b))

(* --- budget watchdog ----------------------------------------------------- *)

let test_budget () =
  let c, inp = cls_circuit () in
  let stimulus _ = [ (inp, Bits.of_int ~width:4 15) ] in
  let faults = List.map (fun (k, _) -> Fault.of_key k) expected_classes in
  let db =
    Campaign.run ~stimulus { Campaign.horizon = 8; budget = 2 } Gsim.gsim c faults
  in
  Fdb.iter db (fun key (r : Fdb.record) ->
      if r.Fdb.cycles_run > 2 then
        Alcotest.failf "%s ran %d cycles past a budget of 2" key r.Fdb.cycles_run);
  Alcotest.(check int) "no hangs" 0 (Fdb.summary db).Fdb.hangs

(* --- write_reg / restore consumer wake (S1) ------------------------------ *)

let wake_engines =
  List.concat_map
    (fun backend ->
      let b = Gsim_engine.Eval.to_string backend in
      [
        ( "full_cycle-" ^ b,
          fun c -> (Full_cycle.sim (Full_cycle.create ~backend c), fun () -> ()) );
        ( "essent-" ^ b,
          fun c ->
            let p = Partition.mffc c ~max_size:12 in
            ( Activity.sim ~name:"essent"
                (Activity.create ~config:Activity.essent_config ~backend c p),
              fun () -> () ) );
        ( "gsim-" ^ b,
          fun c ->
            let p = Partition.gsim c ~max_size:8 in
            ( Activity.sim ~name:"gsim"
                (Activity.create ~config:Activity.gsim_config ~backend c p),
              fun () -> () ) );
        ( "parallel2-" ^ b,
          fun c ->
            let t = Parallel.create ~backend ~threads:2 c in
            (Parallel.sim t, fun () -> Parallel.destroy t) );
      ])
    [ `Bytecode; `Closures ]

let test_write_reg_wake () =
  for seed = 0 to 7 do
    let st = Random.State.make [| seed; 777 |] in
    let c = Rand_circuit.generate st Rand_circuit.default_config in
    let stim1 = Rand_circuit.random_stimulus st c ~cycles:5 in
    let stim2 = Rand_circuit.random_stimulus st c ~cycles:5 in
    let observe = Collect.default_observed c in
    let new_vals =
      List.map
        (fun (r : Circuit.register) ->
          let w = (Circuit.node c r.Circuit.read).Circuit.width in
          (r.Circuit.read, Bits.random st ~width:w))
        (Circuit.registers c)
    in
    (* Reference: run, overwrite every register, run on.  The checkpoint
       taken right after the overwrite is the restore-path oracle. *)
    let ref_sim = Sim.of_reference (Reference.create c) in
    let t1_ref = Sim.trace ref_sim ~observe ~stimulus:stim1 in
    List.iter (fun (id, v) -> ref_sim.Sim.write_reg id v) new_vals;
    let ck = Checkpoint.capture ref_sim in
    let t2_ref = Sim.trace ref_sim ~observe ~stimulus:stim2 in
    List.iter
      (fun (name, make) ->
        (* Path 1: write_reg + invalidate must wake every consumer. *)
        let sim, cleanup = make c in
        let t1 = Sim.trace sim ~observe ~stimulus:stim1 in
        if not (Sim.equal_traces t1_ref t1) then
          Alcotest.failf "seed %d: %s diverges before write_reg" seed name;
        List.iter (fun (id, v) -> sim.Sim.write_reg id v) new_vals;
        sim.Sim.invalidate ();
        let t2 = Sim.trace sim ~observe ~stimulus:stim2 in
        cleanup ();
        if not (Sim.equal_traces t2_ref t2) then
          Alcotest.failf "seed %d: %s: write_reg left stale consumers" seed name;
        (* Path 2: Checkpoint.restore of the post-overwrite state. *)
        let sim, cleanup = make c in
        ignore (Sim.trace sim ~observe ~stimulus:stim1);
        Checkpoint.restore sim ck;
        let t2 = Sim.trace sim ~observe ~stimulus:stim2 in
        cleanup ();
        if not (Sim.equal_traces t2_ref t2) then
          Alcotest.failf "seed %d: %s: restore left stale consumers" seed name)
      wake_engines
  done

(* --- combinational-loop diagnostic (S3) ---------------------------------- *)

let test_comb_loop () =
  let c = Circuit.create ~name:"loopy" () in
  let a = Circuit.add_logic c ~name:"a" (Expr.of_int ~width:1 0) in
  let b = Circuit.add_logic c ~name:"b" (Expr.unop Expr.Not (Expr.var ~width:1 a.Circuit.id)) in
  Circuit.set_expr c a.Circuit.id (Expr.var ~width:1 b.Circuit.id);
  Circuit.mark_output c b.Circuit.id;
  (match Circuit.check_acyclic c with
   | () -> Alcotest.fail "check_acyclic should raise"
   | exception Circuit.Combinational_cycle ids ->
     Alcotest.(check bool) "witness nonempty" true (ids <> []));
  match Gsim.instantiate Gsim.gsim c with
  | _ -> Alcotest.fail "instantiate should raise Failure"
  | exception Failure msg ->
    Alcotest.(check bool) "diagnostic names a" true (contains msg "\"a\"");
    Alcotest.(check bool) "diagnostic names b" true (contains msg "\"b\"");
    Alcotest.(check bool) "diagnostic says cycle" true (contains msg "combinational cycle")

let () =
  Alcotest.run "fault"
    [
      ( "keys",
        [
          Alcotest.test_case "roundtrip" `Quick test_key_roundtrip;
          Alcotest.test_case "random generation" `Quick test_random_faults;
        ] );
      ( "db",
        [
          Alcotest.test_case "roundtrip" `Quick test_db_roundtrip;
          Alcotest.test_case "merge + lenient load" `Quick test_db_merge_and_lenient;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "classification" `Quick test_classification;
          Alcotest.test_case "identical across engines" `Slow test_cross_engine_identity;
          Alcotest.test_case "resume + shards" `Quick test_resume;
          Alcotest.test_case "budget watchdog" `Quick test_budget;
        ] );
      ( "robustness",
        [
          Alcotest.test_case "write_reg/restore wake" `Slow test_write_reg_wake;
          Alcotest.test_case "combinational loop diagnostic" `Quick test_comb_loop;
        ] );
    ]
