(* Fault isolation: chaos spec and hashing, supervisor scan and backoff,
   the poisoned-plan quarantine breaker, frame-tear fuzzing, client
   deadlines, token idempotency, and the 48-job chaos acceptance run
   (seeded crashes + hangs, zero lost jobs, byte-identical outputs). *)

module P = Gsim_server.Protocol
module Chaos = Gsim_server.Chaos
module Supervisor = Gsim_server.Supervisor
module Plan_cache = Gsim_server.Plan_cache
module Daemon = Gsim_server.Daemon
module Client = Gsim_server.Client
module Store = Gsim_resilience.Store

let temp_dir =
  let ctr = ref 0 in
  fun () ->
    incr ctr;
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "gsim-chaos-%d-%d" (Unix.getpid ()) !ctr)
    in
    Store.ensure_dir d;
    d

let contains haystack needle =
  let n = String.length haystack and k = String.length needle in
  let rec go i = i + k <= n && (String.sub haystack i k = needle || go (i + 1)) in
  k > 0 && go 0

let gray_fir ~name ~step =
  Printf.sprintf
    "circuit %s :\n\
    \  module %s :\n\
    \    input clock : Clock\n\
    \    input reset : UInt<1>\n\
    \    input en : UInt<1>\n\
    \    output count : UInt<8>\n\
    \    output gray : UInt<8>\n\n\
    \    reg r : UInt<8>, clock with : (reset => (reset, UInt<8>(0)))\n\
    \    when en :\n\
    \      r <= tail(add(r, UInt<8>(%d)), 1)\n\
    \    count <= r\n\
    \    gray <= xor(r, shr(r, 1))\n"
    name name step

(* --- chaos spec ---------------------------------------------------------- *)

let expect_spec_failure text =
  match Chaos.spec_of_string text with
  | _ -> Alcotest.failf "spec %S: expected Failure" text
  | exception Failure _ -> ()

let test_spec_parse () =
  Alcotest.(check bool) "empty spec is none" true (Chaos.spec_of_string "" = Chaos.none);
  Alcotest.(check bool) "none is disabled" false (Chaos.enabled Chaos.none);
  let s =
    Chaos.spec_of_string "seed=42,crash=0.1,hang=0.05,slow=0.2,slow-ms=15,torn=0.01,poison=Bad"
  in
  Alcotest.(check int) "seed" 42 s.Chaos.seed;
  Alcotest.(check (float 1e-9)) "crash" 0.1 s.Chaos.crash;
  Alcotest.(check (float 1e-9)) "hang" 0.05 s.Chaos.hang;
  Alcotest.(check (float 1e-9)) "slow-ms" 15. s.Chaos.slow_ms;
  Alcotest.(check bool) "poison" true (s.Chaos.poison = Some "Bad");
  Alcotest.(check bool) "enabled" true (Chaos.enabled s);
  Alcotest.(check bool) "round-trip" true
    (Chaos.spec_of_string (Chaos.spec_to_string s) = s);
  expect_spec_failure "bogus=1";
  expect_spec_failure "crash=2";
  expect_spec_failure "crash=nope";
  expect_spec_failure "justakey"

let test_hash_deterministic () =
  let a = Chaos.hash01 ~seed:7 ~site:"eval" [ 1; 2; 3 ] in
  let b = Chaos.hash01 ~seed:7 ~site:"eval" [ 1; 2; 3 ] in
  Alcotest.(check (float 0.)) "same inputs, same draw" a b;
  Alcotest.(check bool) "site matters" true
    (Chaos.hash01 ~seed:7 ~site:"torn" [ 1; 2; 3 ] <> a);
  Alcotest.(check bool) "seed matters" true (Chaos.hash01 ~seed:8 ~site:"eval" [ 1; 2; 3 ] <> a);
  let distinct = Hashtbl.create 64 in
  for i = 0 to 999 do
    let u = Chaos.hash01 ~seed:7 ~site:"eval" [ i ] in
    Alcotest.(check bool) "in [0,1)" true (u >= 0. && u < 1.);
    Hashtbl.replace distinct (Printf.sprintf "%.17g" u) ()
  done;
  Alcotest.(check bool) "draws spread out" true (Hashtbl.length distinct > 900)

let test_at_eval_counting () =
  (match Chaos.at_eval Chaos.off ~job:0 ~attempt:1 ~tick:1 ~poisoned:true with
   | `Ok -> ()
   | _ -> Alcotest.fail "disabled chaos must inject nothing");
  let t = Chaos.create (Chaos.spec_of_string "seed=1,crash=1") in
  (match Chaos.at_eval t ~job:3 ~attempt:1 ~tick:1 ~poisoned:false with
   | `Crash -> ()
   | _ -> Alcotest.fail "crash=1 must crash");
  let p = Chaos.create (Chaos.spec_of_string "seed=1,poison=Bad") in
  (match Chaos.at_eval p ~job:3 ~attempt:1 ~tick:1 ~poisoned:true with
   | `Crash -> ()
   | _ -> Alcotest.fail "poisoned design must crash");
  Alcotest.(check int) "crashes counted" 1 (Chaos.counters p).Chaos.crashes;
  Alcotest.(check bool) "poison marker match" true
    (Chaos.poisoned p ~design:"circuit BadTop :");
  Alcotest.(check bool) "marker absent" false (Chaos.poisoned p ~design:"circuit Fine :")

(* --- supervisor ----------------------------------------------------------- *)

let test_backoff () =
  let p = { Supervisor.default_policy with backoff_base = 0.1; backoff_max = 1.0 } in
  let near = Alcotest.(check (float 1e-9)) in
  near "attempt 1, no jitter" 0.075 (Supervisor.backoff p ~attempt:1 ~jitter:0.);
  near "attempt 1, full jitter" 0.125 (Supervisor.backoff p ~attempt:1 ~jitter:1.);
  near "attempt 2 doubles" 0.2 (Supervisor.backoff p ~attempt:2 ~jitter:0.5);
  near "capped at backoff_max" 1.25 (Supervisor.backoff p ~attempt:20 ~jitter:1.);
  let prev = ref 0. in
  for a = 1 to 6 do
    let d = Supervisor.backoff p ~attempt:a ~jitter:0.5 in
    Alcotest.(check bool) "monotone non-decreasing" true (d >= !prev);
    prev := d
  done

let test_supervisor_scan () =
  let pol =
    { Supervisor.default_policy with hang_timeout = 0.05; grace = 0.05; poll = 0.01 }
  in
  let t = Supervisor.create pol in
  let s1 = Supervisor.register t in
  Supervisor.start t s1 ~ticking:true "j1";
  let s3 = Supervisor.register t in
  Supervisor.start t s3 ~ticking:false "j3";
  Alcotest.(check int) "two busy slots" 2 (Supervisor.busy t);
  let now = Unix.gettimeofday () in
  Alcotest.(check int) "fresh beats: no losses" 0 (List.length (Supervisor.scan t ~now));
  (match Supervisor.scan t ~now:(now +. 0.1) with
   | [ { Supervisor.kind = `Hang; job = Some "j1"; _ } ] -> ()
   | _ -> Alcotest.fail "expected exactly one hang for the ticking slot");
  Alcotest.(check int) "hang reported once" 0
    (List.length (Supervisor.scan t ~now:(now +. 0.11)));
  (match Supervisor.scan t ~now:(now +. 0.3) with
   | [ { Supervisor.kind = `Wedge; job = None; _ } ] -> ()
   | _ -> Alcotest.fail "expected a wedge after the cancel grace expired");
  Alcotest.(check int) "wedged slot removed" 1 (Supervisor.live t);
  Alcotest.(check int) "non-ticking slot never hang-flagged" 1 (Supervisor.busy t);
  Supervisor.finish t s1;  (* retired slot: must be a no-op *)
  let s2 = Supervisor.register t in
  Supervisor.start t s2 ~ticking:false "j2";
  Supervisor.crashed t s2;
  (match Supervisor.scan t ~now:(Unix.gettimeofday ()) with
   | [ { Supervisor.kind = `Crash; job = Some "j2"; _ } ] -> ()
   | _ -> Alcotest.fail "expected the crashed slot's job back");
  Alcotest.(check int) "hangs" 1 (Supervisor.hang_count t);
  Alcotest.(check int) "crashes" 1 (Supervisor.crash_count t);
  Alcotest.(check int) "wedges" 1 (Supervisor.wedge_count t)

(* --- quarantine breaker --------------------------------------------------- *)

let test_quarantine_breaker () =
  let c : unit Plan_cache.t =
    Plan_cache.create ~capacity:4 ~quarantine_threshold:3 ~quarantine_cooldown:0.05 ()
  in
  let admit k = Plan_cache.admit c k in
  Alcotest.(check bool) "closed admits" true (admit "k" = `Proceed);
  Alcotest.(check bool) "failure 1 counted" true (Plan_cache.record_failure c "k" = `Counted);
  Alcotest.(check bool) "failure 2 counted" true (Plan_cache.record_failure c "k" = `Counted);
  Alcotest.(check bool) "still closed at 2" true (admit "k" = `Proceed);
  Alcotest.(check bool) "failure 3 trips" true (Plan_cache.record_failure c "k" = `Tripped);
  (match admit "k" with
   | `Quarantined remaining -> Alcotest.(check bool) "cooldown remaining" true (remaining > 0.)
   | _ -> Alcotest.fail "open breaker must refuse");
  Alcotest.(check bool) "other keys unaffected" true (admit "other" = `Proceed);
  let s = Plan_cache.stats c in
  Alcotest.(check int) "one quarantined" 1 s.Plan_cache.quarantined;
  Alcotest.(check int) "one trip" 1 s.Plan_cache.quarantine_trips;
  Unix.sleepf 0.08;
  Alcotest.(check bool) "cooldown elapses to probe" true (admit "k" = `Probe);
  (match admit "k" with
   | `Quarantined _ -> ()
   | _ -> Alcotest.fail "half-open admits exactly one probe");
  Alcotest.(check bool) "probe failure re-opens quietly" true
    (Plan_cache.record_failure c "k" = `Counted);
  (match admit "k" with
   | `Quarantined _ -> ()
   | _ -> Alcotest.fail "failed probe must re-open");
  Unix.sleepf 0.08;
  Alcotest.(check bool) "second probe" true (admit "k" = `Probe);
  Plan_cache.record_success c "k";
  Alcotest.(check bool) "probe success closes" true (admit "k" = `Proceed);
  let s = Plan_cache.stats c in
  Alcotest.(check int) "nothing quarantined" 0 s.Plan_cache.quarantined;
  Alcotest.(check int) "trips are lifetime" 1 s.Plan_cache.quarantine_trips;
  (* A success between failures resets the consecutive count. *)
  ignore (Plan_cache.record_failure c "z");
  ignore (Plan_cache.record_failure c "z");
  Plan_cache.record_success c "z";
  Alcotest.(check bool) "reset: counted again" true (Plan_cache.record_failure c "z" = `Counted);
  Alcotest.(check bool) "reset: still counted" true (Plan_cache.record_failure c "z" = `Counted);
  Alcotest.(check bool) "z never tripped" true (admit "z" = `Proceed)

(* --- frame-tear fuzz ------------------------------------------------------ *)

let test_tear_fuzz () =
  let corpus =
    [
      P.encode_response (P.error_resp ~code:P.Worker_lost ~attempts:4 "worker lost");
      P.encode_response P.Shutting_down;
      P.encode_request P.Status;
      P.encode_request
        (P.Sim
           ( P.Batch,
             { P.sj_filename = "g.fir"; sj_design = gray_fir ~name:"G" ~step:1;
               sj_opts = P.default_engine_opts; sj_cycles = 64; sj_pokes = [ "en=1" ];
               sj_token = Some "tok"; sj_tenant = None; sj_deadline = 0. } ));
    ]
  in
  Alcotest.(check string) "tear is deterministic"
    (Chaos.tear ~seed:3 ~case:5 (List.hd corpus))
    (Chaos.tear ~seed:3 ~case:5 (List.hd corpus));
  let dir = temp_dir () in
  let path = Filename.concat dir "torn.bin" in
  let decoded = ref 0 and rejected = ref 0 in
  List.iteri
    (fun fi frame ->
      for case = 0 to 149 do
        let torn = Chaos.tear ~seed:(31 * fi) ~case frame in
        (* Pure decode path: only Protocol.Error may escape. *)
        (match P.decode_response torn with
         | _ -> incr decoded
         | exception P.Error _ -> incr rejected
         | exception e ->
           Alcotest.failf "decode_response frame %d case %d: %s" fi case
             (Printexc.to_string e));
        (match P.decode_request torn with
         | _ -> ()
         | exception P.Error _ -> ()
         | exception e ->
           Alcotest.failf "decode_request frame %d case %d: %s" fi case
             (Printexc.to_string e));
        (* Channel path, as the daemon's connection loop reads it. *)
        let oc = open_out_bin path in
        output_string oc torn;
        close_out oc;
        let ic = open_in_bin path in
        (match P.read_request ic with
         | Some _ | None -> ()
         | exception P.Error _ -> ()
         | exception e ->
           Alcotest.failf "read_request frame %d case %d: %s" fi case (Printexc.to_string e));
        close_in ic
      done)
    corpus;
  (* Bit-flips inside the payload can still decode; most mutations reject. *)
  Alcotest.(check bool) "fuzz rejected some frames" true (!rejected > 100);
  Alcotest.(check bool) "fuzz surviving decodes exist" true (!decoded > 0)

(* --- client deadlines ----------------------------------------------------- *)

let with_fake_server behave f =
  let dir = temp_dir () in
  let path = Filename.concat dir "fake.sock" in
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind sock (Unix.ADDR_UNIX path);
  Unix.listen sock 1;
  let t =
    Thread.create
      (fun () ->
        match Unix.accept sock with
        | fd, _ ->
          (try behave fd with _ -> ());
          (try Unix.close fd with Unix.Unix_error _ -> ())
        | exception Unix.Unix_error _ -> ())
      ()
  in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close sock with Unix.Unix_error _ -> ());
      Thread.join t)
    (fun () -> f (P.Unix_sock path))

let test_client_deadline () =
  with_fake_server
    (fun fd ->
      (* Swallow the request and never answer. *)
      let buf = Bytes.create 4096 in
      ignore (Unix.read fd buf 0 4096);
      Unix.sleepf 1.0)
    (fun address ->
      let t0 = Unix.gettimeofday () in
      match
        Client.with_connection ~timeout:0.25 address (fun c -> Client.call c P.Status)
      with
      | _ -> Alcotest.fail "expected Client.Timeout"
      | exception Client.Timeout _ ->
        Alcotest.(check bool) "returned near the deadline" true
          (Unix.gettimeofday () -. t0 < 0.9))

let test_client_midframe_death () =
  with_fake_server
    (fun fd ->
      let buf = Bytes.create 4096 in
      ignore (Unix.read fd buf 0 4096);
      (* A valid header, one payload byte, then death. *)
      let frame = P.encode_response (P.error_resp "half") in
      ignore (Unix.write_substring fd frame 0 (P.header_size + 1)))
    (fun address ->
      match Client.with_connection ~timeout:5. address (fun c -> Client.call c P.Status) with
      | _ -> Alcotest.fail "expected a mid-frame protocol error"
      | exception P.Error m ->
        Alcotest.(check bool) "names the daemon death" true (contains m "died mid-response");
        Alcotest.(check bool) "counts the bytes" true (contains m "byte"))

(* --- daemon helpers ------------------------------------------------------- *)

let start_daemon ?(workers = 2) ?(stride = 10_000) ?(supervision = Supervisor.default_policy)
    ?(chaos = Chaos.none) ?log_path () =
  let dir = temp_dir () in
  let sock = Filename.concat dir "gsimd.sock" in
  let log = match log_path with Some p -> open_out p | None -> open_out "/dev/null" in
  let dflt = Daemon.default_config (P.Unix_sock sock) in
  let cfg =
    { dflt with
      Daemon.workers; preempt_stride = stride; spool = Some (Filename.concat dir "spool");
      log; supervision; chaos }
  in
  let t = Thread.create (fun () -> Daemon.serve cfg) () in
  let rec wait n =
    if not (Sys.file_exists sock) then
      if n = 0 then Alcotest.fail "daemon did not come up"
      else begin
        Unix.sleepf 0.01;
        wait (n - 1)
      end
  in
  wait 500;
  (P.Unix_sock sock, t, log)

let stop_daemon (address, t, log) =
  (match Client.with_connection ~timeout:30. address (fun c -> Client.call c P.Shutdown) with
   | P.Shutting_down -> ()
   | _ -> Alcotest.fail "unexpected shutdown reply"
   | exception P.Error _ -> ()  (* chaos tore the ack; the drain still began *)
   | exception Client.Timeout _ -> ());
  Thread.join t;
  close_out log

let sim_job ~design ~cycles =
  { P.sj_filename = "gray.fir"; sj_design = design; sj_opts = P.default_engine_opts;
    sj_cycles = cycles; sj_pokes = [ "en=1" ]; sj_token = None; sj_tenant = None;
    sj_deadline = 0. }

(* --- token idempotency ---------------------------------------------------- *)

let test_token_idempotent () =
  let ((address, _, _) as d) = start_daemon () in
  let req = P.Sim (P.Interactive, sim_job ~design:(gray_fir ~name:"Tok" ~step:1) ~cycles:30) in
  let r1 = Client.call_robust ~timeout:30. ~token:"tok-1" address req in
  let r2 = Client.call_robust ~timeout:30. ~token:"tok-1" address req in
  (match (r1, r2) with
   | P.Sim_done a, P.Sim_done b ->
     Alcotest.(check int) "cycles" 30 a.P.sr_cycles;
     Alcotest.(check bool) "replayed outputs identical" true (a.P.sr_outputs = b.P.sr_outputs)
   | _ -> Alcotest.fail "expected two Sim_done responses");
  (match Client.call_robust ~timeout:30. address P.Status with
   | P.Status_ok st ->
     Alcotest.(check int) "token dedup ran the job once" 1 st.P.st_completed
   | _ -> Alcotest.fail "status failed");
  stop_daemon d

(* --- acceptance: 48-job batch under seeded crashes, hangs and torn frames -- *)

let poison_marker = "PoisonChaos"
let n_jobs = 48
let design_of i = gray_fir ~name:(Printf.sprintf "Gray%d" (i mod 6)) ~step:(1 + (i mod 6))
let cycles_of i = 240 + (i mod 3 * 40)

let run_batch address ~prefix =
  List.init n_jobs (fun i ->
      let req = P.Sim (P.Batch, sim_job ~design:(design_of i) ~cycles:(cycles_of i)) in
      let token = Printf.sprintf "%s-%d" prefix i in
      match Client.call_robust ~timeout:30. ~retries:4 ~backoff:0.05 ~token address req with
      | P.Sim_done r ->
        Alcotest.(check int) (Printf.sprintf "job %d ran to completion" i) (cycles_of i)
          r.P.sr_cycles;
        r.P.sr_outputs
      | P.Error_resp e ->
        Alcotest.failf "job %d lost: [%s] %s (after %d attempts)" i
          (P.error_code_to_string e.P.ei_code) e.P.ei_message e.P.ei_attempts
      | _ -> Alcotest.failf "job %d: unexpected response" i)

let test_chaos_acceptance () =
  let supervision =
    { Supervisor.hang_timeout = 0.25; grace = 0.4; poll = 0.02; max_retries = 5;
      backoff_base = 0.02; backoff_max = 0.15 }
  in
  (* The seed is part of the test: it was picked so that no innocent design
     happens to lose 3 consecutive attempts (which would — correctly —
     quarantine it).  GSIM_CHAOS_SEED explores other schedules by hand. *)
  let seed =
    match Sys.getenv_opt "GSIM_CHAOS_SEED" with Some s -> int_of_string s | None -> 13
  in
  let chaos =
    Chaos.spec_of_string
      (Printf.sprintf "seed=%d,crash=0.025,hang=0.012,slow=0.05,slow-ms=10,torn=0.08,poison=%s"
         seed poison_marker)
  in
  let log_path = Filename.concat (temp_dir ()) "chaos.log" in
  let ((address, _, _) as d) =
    start_daemon ~workers:2 ~stride:40 ~supervision ~chaos ~log_path ()
  in
  (* A poisoned design: valid FIRRTL, but chaos kills any worker that
     touches it.  It must trip the quarantine breaker within 3 failures
     and come back as a structured refusal, not eat the pool forever. *)
  let poison_req =
    P.Sim (P.Batch, sim_job ~design:(gray_fir ~name:(poison_marker ^ "Top") ~step:1) ~cycles:100)
  in
  (match Client.call_robust ~timeout:30. ~retries:2 ~backoff:0.05 ~token:"poison-1"
           address poison_req
   with
   | P.Error_resp e ->
     Alcotest.(check string) "poison refused as quarantined" "quarantined"
       (P.error_code_to_string e.P.ei_code);
     Alcotest.(check int) "quarantined on attempt 4 (3 worker losses)" 4 e.P.ei_attempts
   | _ -> Alcotest.fail "poisoned design must not complete");
  (match Client.call_robust ~timeout:30. ~retries:2 ~backoff:0.05 ~token:"poison-2"
           address poison_req
   with
   | P.Error_resp e ->
     Alcotest.(check string) "resubmission refused instantly" "quarantined"
       (P.error_code_to_string e.P.ei_code);
     Alcotest.(check int) "no worker touched it again" 1 e.P.ei_attempts
   | _ -> Alcotest.fail "quarantined design must stay refused");
  (* The mixed batch: 6 distinct designs, 3 cycle counts, batch priority so
     every job ticks (and spools) each 40-cycle stride. *)
  let chaotic = run_batch address ~prefix:"chaos" in
  let st =
    match Client.call_robust ~timeout:30. ~retries:4 ~backoff:0.05 address P.Status with
    | P.Status_ok st -> st
    | _ -> Alcotest.fail "status failed"
  in
  stop_daemon d;
  Alcotest.(check bool) "at least 5 worker crashes injected" true
    (st.P.st_worker_crashes >= 5);
  Alcotest.(check bool) "at least 2 hangs injected" true (st.P.st_hangs >= 2);
  Alcotest.(check int) "zero jobs gave up" 0 st.P.st_gave_up;
  Alcotest.(check bool) "quarantine tripped" true (st.P.st_quarantine_trips >= 1);
  Alcotest.(check bool) "poison still quarantined" true (st.P.st_quarantined >= 1);
  Alcotest.(check bool) "retries happened" true (st.P.st_retries >= st.P.st_worker_crashes - 3);
  Alcotest.(check bool) "replacement workers spawned" true (st.P.st_worker_restarts >= 1);
  Alcotest.(check bool) "chaos accounted for itself" true (st.P.st_chaos_injected > 0);
  (* The same batch on a calm daemon is the ground truth: every completed
     chaos-run output must be byte-identical. *)
  let ((calm_address, _, _) as calm) = start_daemon ~workers:2 ~stride:40 () in
  let calm_outputs = run_batch calm_address ~prefix:"calm" in
  stop_daemon calm;
  List.iteri
    (fun i (chaotic_out, calm_out) ->
      if chaotic_out <> calm_out then
        Alcotest.failf "job %d: chaos-run outputs differ from the uninterrupted run" i)
    (List.combine chaotic calm_outputs);
  (* The daemon log carries the forensic trail. *)
  let log = In_channel.with_open_bin log_path In_channel.input_all in
  Alcotest.(check bool) "log records injected crashes" true (contains log "CHAOS");
  Alcotest.(check bool) "log records the quarantine trip" true (contains log "OPEN")

let () =
  Alcotest.run "chaos"
    [
      ( "chaos",
        [
          Alcotest.test_case "spec parse/print" `Quick test_spec_parse;
          Alcotest.test_case "hash determinism" `Quick test_hash_deterministic;
          Alcotest.test_case "at_eval counting" `Quick test_at_eval_counting;
        ] );
      ( "supervisor",
        [
          Alcotest.test_case "backoff schedule" `Quick test_backoff;
          Alcotest.test_case "scan: hang, wedge, crash" `Quick test_supervisor_scan;
        ] );
      ( "quarantine",
        [ Alcotest.test_case "circuit breaker lifecycle" `Quick test_quarantine_breaker ] );
      ( "fuzz",
        [ Alcotest.test_case "torn frames only raise Protocol.Error" `Quick test_tear_fuzz ] );
      ( "client",
        [
          Alcotest.test_case "read deadline fires" `Quick test_client_deadline;
          Alcotest.test_case "mid-frame death is actionable" `Quick test_client_midframe_death;
        ] );
      ( "daemon",
        [
          Alcotest.test_case "token idempotency" `Quick test_token_idempotent;
          Alcotest.test_case "48 jobs under seeded chaos" `Quick test_chaos_acceptance;
        ] );
    ]
