(* Overload protection: DRR fairness, per-tenant quotas, admission cost
   estimation, end-to-end deadlines, and brownout under a chaos-driven
   compute stall — the daemon must keep answering when clients misbehave. *)

module Circuit = Gsim_ir.Circuit
module Sim = Gsim_engine.Sim
module Gsim = Gsim_core.Gsim
module Compile = Gsim_core.Gsim.Compile
module Store = Gsim_resilience.Store
module P = Gsim_server.Protocol
module Admission = Gsim_server.Admission
module Scheduler = Gsim_server.Scheduler
module Chaos = Gsim_server.Chaos
module Daemon = Gsim_server.Daemon
module Client = Gsim_server.Client

let temp_dir =
  let ctr = ref 0 in
  fun () ->
    incr ctr;
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "gsim-overload-%d-%d" (Unix.getpid ()) !ctr)
    in
    Store.ensure_dir d;
    d

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let gray_fir =
  "circuit Gray :\n\
  \  module Gray :\n\
  \    input clock : Clock\n\
  \    input reset : UInt<1>\n\
  \    input en : UInt<1>\n\
  \    output count : UInt<8>\n\
  \    output gray : UInt<8>\n\n\
  \    reg r : UInt<8>, clock with : (reset => (reset, UInt<8>(0)))\n\
  \    when en :\n\
  \      r <= tail(add(r, UInt<8>(1)), 1)\n\
  \    count <= r\n\
  \    gray <= xor(r, shr(r, 1))\n"

(* --- scheduler: deficit-round-robin fairness ------------------------------ *)

let test_drr_two_tenants_split () =
  let s = Scheduler.create ~capacity:64 () in
  (* Alice floods first, Bob trickles in after: arrival order must not
     matter — DRR serves one job per tenant per ring visit. *)
  for i = 1 to 10 do
    Alcotest.(check bool) "alice accepted" true
      (Scheduler.submit s ~priority:1 ~tenant:"alice" (Printf.sprintf "a%d" i)
       = Scheduler.Accepted)
  done;
  for i = 1 to 10 do
    Alcotest.(check bool) "bob accepted" true
      (Scheduler.submit s ~priority:1 ~tenant:"bob" (Printf.sprintf "b%d" i)
       = Scheduler.Accepted)
  done;
  (* Drain the first 10: under saturation each tenant gets ~half. *)
  let a = ref 0 and b = ref 0 in
  for _ = 1 to 10 do
    match Scheduler.take s with
    | Some x -> if x.[0] = 'a' then incr a else incr b
    | None -> Alcotest.fail "queue emptied early"
  done;
  Alcotest.(check int) "alice half" 5 !a;
  Alcotest.(check int) "bob half" 5 !b;
  (* Within a tenant, FIFO order is preserved. *)
  Alcotest.(check int) "nothing lost" 10 (Scheduler.queued s)

let test_drr_weights_and_cost () =
  let s = Scheduler.create ~capacity:64 () in
  (* Heavy jobs (cost 2) against unit jobs at equal weight: the costly
     tenant is dispatched half as often. *)
  for i = 1 to 8 do
    ignore (Scheduler.submit s ~priority:1 ~tenant:"cheap" ~cost:1 (Printf.sprintf "c%d" i));
    ignore (Scheduler.submit s ~priority:1 ~tenant:"dear" ~cost:2 (Printf.sprintf "d%d" i))
  done;
  let c = ref 0 and d = ref 0 in
  for _ = 1 to 9 do
    match Scheduler.take s with
    | Some x -> if x.[0] = 'c' then incr c else incr d
    | None -> Alcotest.fail "queue emptied early"
  done;
  Alcotest.(check bool) "cheap tenant dispatched ~2x"
    true (!c >= 2 * !d - 1);
  (* A weight-2 tenant earns double credit and keeps pace with unit cost. *)
  let s2 = Scheduler.create ~capacity:64 () in
  for i = 1 to 6 do
    ignore (Scheduler.submit s2 ~priority:1 ~tenant:"vip" ~weight:2 ~cost:2
              (Printf.sprintf "v%d" i));
    ignore (Scheduler.submit s2 ~priority:1 ~tenant:"std" ~cost:2 (Printf.sprintf "s%d" i))
  done;
  let v = ref 0 and st = ref 0 in
  for _ = 1 to 6 do
    match Scheduler.take s2 with
    | Some x -> if x.[0] = 'v' then incr v else incr st
    | None -> Alcotest.fail "queue emptied early"
  done;
  Alcotest.(check bool) "weighted tenant keeps pace" true (!v >= !st)

let test_tenant_quota () =
  let s = Scheduler.create ~capacity:8 ~tenant_quota:2 () in
  Alcotest.(check bool) "greedy 1" true
    (Scheduler.submit s ~priority:1 ~tenant:"greedy" 1 = Scheduler.Accepted);
  Alcotest.(check bool) "greedy 2" true
    (Scheduler.submit s ~priority:1 ~tenant:"greedy" 2 = Scheduler.Accepted);
  Alcotest.(check bool) "greedy 3 over quota" true
    (Scheduler.submit s ~priority:1 ~tenant:"greedy" 3 = Scheduler.Rejected_quota);
  (* Another tenant is unaffected by greedy's quota. *)
  Alcotest.(check bool) "polite proceeds" true
    (Scheduler.submit s ~priority:1 ~tenant:"polite" 4 = Scheduler.Accepted);
  Alcotest.(check int) "greedy depth" 2 (Scheduler.queued_for s "greedy");
  Alcotest.(check bool) "tenants listed" true
    (Scheduler.tenants s = [ ("greedy", 2); ("polite", 1) ]);
  (* Requeue (preempted work) bypasses the quota. *)
  Scheduler.requeue s ~priority:1 ~tenant:"greedy" 5;
  Alcotest.(check int) "requeue over quota" 3 (Scheduler.queued_for s "greedy")

(* --- admission estimation -------------------------------------------------- *)

let parse_fir text =
  (Compile.source_of_string ~filename:"adm.fir" text).Compile.circuit

let test_admission_estimate_and_check () =
  let c = parse_fir gray_fir in
  let e = Admission.estimate c in
  Alcotest.(check bool) "nodes counted" true (e.Admission.est_nodes > 0);
  Alcotest.(check bool) "width seen" true (e.Admission.est_max_width >= 8);
  Alcotest.(check bool) "arena covers nodes" true
    (e.Admission.est_arena_bytes >= e.Admission.est_nodes * 8);
  Alcotest.(check bool) "unlimited passes" true
    (Admission.check Admission.unlimited e = Ok ());
  Alcotest.(check bool) "unlimited is not limited" false
    (Admission.limited Admission.unlimited);
  (* A one-node budget must refuse and name the limit. *)
  let b = { Admission.unlimited with Admission.max_nodes = 1 } in
  (match Admission.check b e with
   | Error msg ->
     Alcotest.(check bool) "names the budget" true
       (contains msg "exceeds the daemon budget")
   | Ok () -> Alcotest.fail "over-budget estimate accepted");
  (* Spec string round-trips through parse/print. *)
  let spec = "nodes=200000,width=4096,mem-mb=256,arena-mb=512,native-nodes=100000" in
  let parsed = Admission.budgets_of_string spec in
  Alcotest.(check bool) "limited" true (Admission.limited parsed);
  Alcotest.(check bool) "round-trips" true
    (Admission.budgets_of_string (Admission.budgets_to_string parsed) = parsed);
  (match Admission.budgets_of_string "bogus=1" with
   | _ -> Alcotest.fail "unknown key accepted"
   | exception Failure _ -> ())

let test_admission_memory_bomb () =
  (* A 2^20-word memory of 64-bit words: 8 MiB of state from five lines
     of text.  The estimator must see the full footprint. *)
  let bomb =
    "circuit Bomb :\n\
    \  module Bomb :\n\
    \    input clock : Clock\n\
    \    input addr : UInt<20>\n\
    \    output out : UInt<64>\n\n\
    \    mem m :\n\
    \      data-type => UInt<64>\n\
    \      depth => 1048576\n\
    \      read-latency => 0\n\
    \      write-latency => 1\n\
    \      reader => r0\n\
    \    m.r0.addr <= addr\n\
    \    m.r0.en <= UInt<1>(1)\n\
    \    m.r0.clk <= clock\n\
    \    out <= m.r0.data\n"
  in
  let e = Admission.estimate (parse_fir bomb) in
  Alcotest.(check bool) "memory bytes counted" true
    (e.Admission.est_mem_bytes >= 8 * 1024 * 1024);
  let b = { Admission.unlimited with Admission.max_mem_bytes = 1024 * 1024 } in
  (match Admission.check b e with
   | Error msg -> Alcotest.(check bool) "names memory" true (contains msg "memory")
   | Ok () -> Alcotest.fail "memory bomb admitted")

(* --- daemon end-to-end under overload ------------------------------------- *)

let start_daemon ?(workers = 1) ?(queue = 8) ?(stride = 10) ?(chaos = Chaos.none)
    ?(budgets = Admission.unlimited) ?(high_water = 0.) ?(tenant_quota = 0) () =
  let dir = temp_dir () in
  let sock = Filename.concat dir "gsimd.sock" in
  let devnull = open_out "/dev/null" in
  let cfg =
    { (Daemon.default_config (P.Unix_sock sock)) with
      Daemon.workers; queue_capacity = queue; cache_capacity = 16;
      spool = Some (Filename.concat dir "spool"); preempt_stride = stride;
      log = devnull; chaos; budgets; high_water; tenant_quota }
  in
  let t = Thread.create (fun () -> Daemon.serve cfg) () in
  let rec wait n =
    if not (Sys.file_exists sock) then
      if n = 0 then Alcotest.fail "daemon did not come up"
      else begin
        Unix.sleepf 0.01;
        wait (n - 1)
      end
  in
  wait 500;
  (P.Unix_sock sock, t, devnull)

let stop_daemon (address, t, devnull) =
  (match Client.with_connection address (fun c -> Client.call c P.Shutdown) with
   | P.Shutting_down -> ()
   | _ -> Alcotest.fail "shutdown not acknowledged");
  Thread.join t;
  close_out devnull

let sim_job ?tenant ?(deadline = 0.) cycles =
  { P.sj_filename = "gray.fir"; sj_design = gray_fir;
    sj_opts = P.default_engine_opts; sj_cycles = cycles; sj_pokes = [ "en=1" ];
    sj_token = None; sj_tenant = tenant; sj_deadline = deadline }

(* The locally computed truth a calm daemon and a browning-out daemon
   must both match, bit for bit. *)
let local_outputs cycles =
  let source = Compile.source_of_string ~filename:"gray.fir" gray_fir in
  let config =
    Gsim.config_of_names ~engine:"gsim" ~threads:1 ~level:None ~max_supernode:0
      ~backend:"bytecode"
  in
  let compiled = Compile.realize (Compile.prepare config source) in
  let sim = compiled.Gsim.sim in
  (match Circuit.find_node sim.Sim.circuit "en" with
   | Some n -> sim.Sim.poke n.Circuit.id (Gsim_bits.Bits.of_int ~width:1 1)
   | None -> Alcotest.fail "no en input");
  for _ = 1 to cycles do
    sim.Sim.step ()
  done;
  let out =
    Circuit.outputs sim.Sim.circuit
    |> List.map (fun (n : Circuit.node) ->
           ( n.Circuit.name,
             Format.asprintf "%a" Gsim_bits.Bits.pp (sim.Sim.peek n.Circuit.id) ))
  in
  compiled.Gsim.destroy ();
  out

let test_daemon_over_budget () =
  let budgets = { Admission.unlimited with Admission.max_nodes = 2 } in
  let ((address, _, _) as d) = start_daemon ~budgets () in
  (match Client.with_connection address (fun c ->
             Client.call c (P.Sim (P.Interactive, sim_job ~tenant:"alice" 10)))
   with
   | P.Error_resp e ->
     Alcotest.(check string) "over-budget code" "over-budget"
       (P.error_code_to_string e.P.ei_code);
     Alcotest.(check bool) "names the violated limit" true
       (contains e.P.ei_message "exceeds the daemon budget")
   | _ -> Alcotest.fail "over-budget design was admitted");
  (* An unparseable design is admitted so the worker's caret diagnostic
     (not the estimator) reaches the client. *)
  let bad =
    { (sim_job 5) with P.sj_design = "circuit Broken :\n  module Broken :\n    output o : UInt<8>\n    o <= nope(\n" }
  in
  (match Client.with_connection address (fun c ->
             Client.call c (P.Sim (P.Interactive, bad)))
   with
   | P.Error_resp e ->
     Alcotest.(check bool) "frontend diagnostic, not a budget" false
       (contains e.P.ei_message "budget")
   | _ -> Alcotest.fail "broken design must fail");
  (match Client.with_connection address (fun c -> Client.call c P.Status) with
   | P.Status_ok s ->
     Alcotest.(check int) "over-budget counted" 1 s.P.st_over_budget;
     let alice =
       List.find_opt (fun t -> t.P.tn_tenant = "alice") s.P.st_tenants
     in
     (match alice with
      | Some t ->
        Alcotest.(check int) "tenant saw the submission" 1 t.P.tn_submitted;
        Alcotest.(check int) "tenant shed" 1 t.P.tn_shed
      | None -> Alcotest.fail "tenant missing from status")
   | _ -> Alcotest.fail "status failed");
  stop_daemon d

let test_daemon_deadlines () =
  (* Every eval tick stalls 40 ms, so wall-clock budgets expire long
     before the cycle counts do. *)
  let chaos = { Chaos.none with Chaos.seed = 7; busy = 1.0; busy_ms = 40. } in
  let ((address, _, _) as d) = start_daemon ~chaos ~stride:10 () in
  (* Running expiry: 100 cycles = 10 stalled ticks = ~400 ms of work
     against a 150 ms deadline — the worker must stop at a stride tick. *)
  (match Client.with_connection address (fun c ->
             Client.call c (P.Sim (P.Interactive, sim_job ~deadline:0.15 100)))
   with
   | P.Error_resp e ->
     Alcotest.(check string) "deadline code" "deadline-exceeded"
       (P.error_code_to_string e.P.ei_code);
     Alcotest.(check bool) "expired while running" true
       (contains e.P.ei_message "cycle")
   | _ -> Alcotest.fail "deadline did not fire while running");
  (* Queued expiry: a long batch job holds the single worker while a
     50 ms-deadline job waits behind it — shed at dispatch, having
     consumed no worker time. *)
  let slow_done = ref None in
  let t_slow =
    Thread.create
      (fun () ->
        slow_done :=
          Some
            (Client.with_connection address (fun c ->
                 Client.call c (P.Sim (P.Batch, sim_job ~tenant:"hog" 100)))))
      ()
  in
  Unix.sleepf 0.1 (* let the hog reach the worker *);
  (match Client.with_connection address (fun c ->
             Client.call c (P.Sim (P.Batch, sim_job ~tenant:"late" ~deadline:0.05 100)))
   with
   | P.Error_resp e ->
     Alcotest.(check string) "queued deadline code" "deadline-exceeded"
       (P.error_code_to_string e.P.ei_code);
     Alcotest.(check bool) "expired in the queue" true
       (contains e.P.ei_message "queued")
   | _ -> Alcotest.fail "queued job outlived its deadline");
  Thread.join t_slow;
  (match !slow_done with
   | Some (P.Sim_done r) -> Alcotest.(check int) "hog finished" 100 r.P.sr_cycles
   | _ -> Alcotest.fail "hog job failed");
  (match Client.with_connection address (fun c -> Client.call c P.Status) with
   | P.Status_ok s ->
     Alcotest.(check int) "both expiries counted" 2 s.P.st_deadline_expired
   | _ -> Alcotest.fail "status failed");
  stop_daemon d

let test_daemon_brownout_acceptance () =
  (* The chaos overload acceptance test: one stalled worker, a greedy
     batch tenant flooding a tiny queue past its high-water mark, and an
     interactive job riding through.  The daemon must shed batch work
     with a retry-after hint, keep every accepted job correct, and the
     interactive answer must be byte-identical to an unloaded run. *)
  let chaos = { Chaos.none with Chaos.seed = 11; busy = 1.0; busy_ms = 30. } in
  let ((address, _, _) as d) =
    start_daemon ~chaos ~queue:4 ~high_water:0.5 ~stride:10 ()
  in
  let flood = 6 in
  let responses = Array.make flood None in
  let threads =
    List.init flood (fun i ->
        Thread.create
          (fun () ->
            responses.(i) <-
              Some
                (Client.with_connection address (fun c ->
                     Client.call c (P.Sim (P.Batch, sim_job ~tenant:"greedy" 60)))))
          ())
  in
  Unix.sleepf 0.15 (* let the flood land and the backlog build *);
  let interactive =
    Client.with_connection address (fun c ->
        Client.call c (P.Sim (P.Interactive, sim_job ~tenant:"vip" 60)))
  in
  List.iter Thread.join threads;
  (match interactive with
   | P.Sim_done r ->
     Alcotest.(check bool) "interactive byte-identical to calm run" true
       (r.P.sr_outputs = local_outputs 60)
   | P.Error_resp e -> Alcotest.failf "interactive shed under brownout: %s" e.P.ei_message
   | _ -> Alcotest.fail "interactive job lost");
  let shed = ref 0 and completed = ref 0 in
  Array.iter
    (function
      | Some (P.Sim_done r) ->
        incr completed;
        Alcotest.(check bool) "accepted batch job correct" true
          (r.P.sr_outputs = local_outputs 60)
      | Some (P.Error_resp e) ->
        incr shed;
        Alcotest.(check string) "shed code" "overloaded"
          (P.error_code_to_string e.P.ei_code);
        Alcotest.(check bool) "retry-after travels" true (e.P.ei_retry_after > 0.)
      | _ -> Alcotest.fail "batch job lost")
    responses;
  Alcotest.(check bool) "brownout shed some batch work" true (!shed > 0);
  Alcotest.(check bool) "but not all of it" true (!completed > 0);
  (match Client.with_connection address (fun c -> Client.call c P.Status) with
   | P.Status_ok s ->
     Alcotest.(check int) "shed counter matches" !shed s.P.st_shed;
     let greedy = List.find_opt (fun t -> t.P.tn_tenant = "greedy") s.P.st_tenants in
     (match greedy with
      | Some t ->
        Alcotest.(check int) "greedy submissions" flood t.P.tn_submitted;
        Alcotest.(check int) "greedy sheds" !shed t.P.tn_shed;
        Alcotest.(check int) "greedy completions" !completed t.P.tn_completed
      | None -> Alcotest.fail "greedy tenant missing from status");
     Alcotest.(check bool) "vip tenant reported" true
       (List.exists (fun t -> t.P.tn_tenant = "vip") s.P.st_tenants)
   | _ -> Alcotest.fail "status failed");
  stop_daemon d

let test_daemon_tenant_quota () =
  (* A quota of 1 queued job per tenant on a stalled worker: the second
     concurrent submission from the same tenant is refused with a
     retry-after hint while a different tenant's job is accepted. *)
  let chaos = { Chaos.none with Chaos.seed = 3; busy = 1.0; busy_ms = 30. } in
  let ((address, _, _) as d) = start_daemon ~chaos ~tenant_quota:1 ~stride:10 () in
  let first = ref None in
  let t1 =
    Thread.create
      (fun () ->
        first :=
          Some
            (Client.with_connection address (fun c ->
                 Client.call c (P.Sim (P.Batch, sim_job ~tenant:"greedy" 60)))))
      ()
  in
  Unix.sleepf 0.1;
  (* The worker holds job 1; job 2 queues; job 3 trips the quota. *)
  let second = ref None in
  let t2 =
    Thread.create
      (fun () ->
        second :=
          Some
            (Client.with_connection address (fun c ->
                 Client.call c (P.Sim (P.Batch, sim_job ~tenant:"greedy" 60)))))
      ()
  in
  Unix.sleepf 0.05;
  (match Client.with_connection address (fun c ->
             Client.call c (P.Sim (P.Batch, sim_job ~tenant:"greedy" 60)))
   with
   | P.Error_resp e ->
     Alcotest.(check string) "quota refusal code" "overloaded"
       (P.error_code_to_string e.P.ei_code);
     Alcotest.(check bool) "quota named" true (contains e.P.ei_message "quota");
     Alcotest.(check bool) "retry-after hint" true (e.P.ei_retry_after > 0.)
   | _ -> Alcotest.fail "tenant quota did not trip");
  (match Client.with_connection address (fun c ->
             Client.call c (P.Sim (P.Batch, sim_job ~tenant:"polite" 60)))
   with
   | P.Sim_done _ -> ()
   | _ -> Alcotest.fail "other tenant must not be affected by the quota");
  Thread.join t1;
  Thread.join t2;
  (match (!first, !second) with
   | Some (P.Sim_done _), Some (P.Sim_done _) -> ()
   | _ -> Alcotest.fail "accepted greedy jobs must still complete");
  stop_daemon d

let () =
  Alcotest.run "overload"
    [
      ( "fairness",
        [
          Alcotest.test_case "drr two-tenant split" `Quick test_drr_two_tenants_split;
          Alcotest.test_case "drr weights and cost" `Quick test_drr_weights_and_cost;
          Alcotest.test_case "tenant quota" `Quick test_tenant_quota;
        ] );
      ( "admission",
        [
          Alcotest.test_case "estimate and check" `Quick
            test_admission_estimate_and_check;
          Alcotest.test_case "memory bomb" `Quick test_admission_memory_bomb;
        ] );
      ( "daemon",
        [
          Alcotest.test_case "over-budget refused at admission" `Quick
            test_daemon_over_budget;
          Alcotest.test_case "deadlines: running and queued" `Quick
            test_daemon_deadlines;
          Alcotest.test_case "brownout sheds batch, interactive identical" `Quick
            test_daemon_brownout_acceptance;
          Alcotest.test_case "tenant quota end-to-end" `Quick test_daemon_tenant_quota;
        ] );
    ]
