(* The coverage subsystem: collection exactness, database laws, persistence,
   cross-engine identity of the activity fast path vs full resampling. *)

module Bits = Gsim_bits.Bits
module Expr = Gsim_ir.Expr
module Circuit = Gsim_ir.Circuit
module Partition = Gsim_partition.Partition
module Sim = Gsim_engine.Sim
module Activity = Gsim_engine.Activity
module Full_cycle = Gsim_engine.Full_cycle
module Checkpoint = Gsim_engine.Checkpoint
module Db = Gsim_coverage.Db
module Collect = Gsim_coverage.Collect
module Report = Gsim_coverage.Report
module Stu_core = Gsim_designs.Stu_core
module Designs = Gsim_designs.Designs
module Programs = Gsim_designs.Programs

let b ~w n = Bits.of_int ~width:w n

(* The enable-counter from the VCD tests: an 8-bit register that counts
   while [top.en] is high (a mux on the enable). *)
let counter_circuit () =
  let c = Circuit.create ~name:"ctr" () in
  let en = Circuit.add_input c ~name:"top.en" ~width:1 in
  let r = Circuit.add_register c ~name:"top.count" ~width:8 ~init:(Bits.zero 8) () in
  Circuit.set_next c r
    (Expr.mux (Expr.var ~width:1 en.Circuit.id)
       (Expr.unop (Expr.Extract (7, 0))
          (Expr.binop Expr.Add (Expr.var ~width:8 r.Circuit.read) (Expr.of_int ~width:8 1)))
       (Expr.var ~width:8 r.Circuit.read));
  Circuit.mark_output c r.Circuit.read;
  (c, en.Circuit.id, r.Circuit.read)

(* --- Collection exactness ----------------------------------------------- *)

let test_toggle_counts_exact () =
  let c, en, _count = counter_circuit () in
  let sim = Full_cycle.sim (Full_cycle.create c) in
  let cov, sim = Collect.create sim in
  sim.Sim.poke en (b ~w:1 1);
  Sim.run sim 3;
  sim.Sim.poke en (b ~w:1 0);
  Sim.run sim 5;
  let db = Collect.db cov in
  (* count: 0 -> 1 -> 2 -> 3, then holds.
     bit0: 0->1 (rise), 1->0 (fall), 0->1 (rise); bit1: 0->1 at value 2. *)
  let tg = Hashtbl.find db.Db.toggles "top.count" in
  Alcotest.(check int) "bit0 rises" 2 tg.Db.rise.(0);
  Alcotest.(check int) "bit0 falls" 1 tg.Db.fall.(0);
  Alcotest.(check int) "bit1 rises" 1 tg.Db.rise.(1);
  Alcotest.(check int) "bit1 falls" 0 tg.Db.fall.(1);
  Alcotest.(check int) "bit7 untouched" 0 (tg.Db.rise.(7) + tg.Db.fall.(7));
  let n = Hashtbl.find db.Db.nodes "top.count" in
  Alcotest.(check int) "count changed 3 times" 3 n.Db.changes;
  (* en rose once (poke 1) and fell once (poke 0). *)
  let te = Hashtbl.find db.Db.toggles "top.en" in
  Alcotest.(check int) "en rises" 1 te.Db.rise.(0);
  Alcotest.(check int) "en falls" 1 te.Db.fall.(0);
  Alcotest.(check int) "cycles recorded" 8 db.Db.total_cycles

let test_cond_coverage () =
  (* Enable seen both ways: both mux arms covered. *)
  let c, en, _ = counter_circuit () in
  let sim = Full_cycle.sim (Full_cycle.create c) in
  let cov, sim = Collect.create sim in
  sim.Sim.poke en (b ~w:1 1);
  Sim.run sim 2;
  sim.Sim.poke en (b ~w:1 0);
  Sim.run sim 2;
  let db = Collect.db cov in
  Alcotest.(check int) "one mux tracked" 1 (Hashtbl.length db.Db.conds);
  Hashtbl.iter
    (fun _ (cd : Db.cond) ->
      Alcotest.(check bool) "true arm seen" true cd.Db.seen_true;
      Alcotest.(check bool) "false arm seen" true cd.Db.seen_false;
      Alcotest.(check int) "switched into true once" 1 cd.Db.taken_true;
      Alcotest.(check int) "switched into false once" 1 cd.Db.taken_false)
    db.Db.conds;
  (* Enable constantly high from before collection: false arm never seen. *)
  let c2, en2, _ = counter_circuit () in
  let sim2 = Full_cycle.sim (Full_cycle.create c2) in
  sim2.Sim.poke en2 (b ~w:1 1);
  let cov2, sim2 = Collect.create sim2 in
  Sim.run sim2 4;
  let db2 = Collect.db cov2 in
  Hashtbl.iter
    (fun _ (cd : Db.cond) ->
      Alcotest.(check bool) "true arm seen" true cd.Db.seen_true;
      Alcotest.(check bool) "false arm unseen" false cd.Db.seen_false)
    db2.Db.conds;
  let unc = Report.uncovered db2 in
  Alcotest.(check bool) "uncovered lists the false arm" true
    (List.exists
       (fun s ->
         let n = String.length s in
         n >= 21 && String.sub s (n - 21) 21 = "false arm never taken")
       unc)

let test_reset_coverage () =
  let c = Circuit.create ~name:"rst" () in
  let rst = Circuit.add_input c ~name:"rst" ~width:1 in
  let r =
    Circuit.add_register c ~name:"top.state" ~width:4 ~init:(b ~w:4 5)
      ~reset:(rst.Circuit.id, b ~w:4 0) ()
  in
  Circuit.set_next c r
    (Expr.unop (Expr.Extract (3, 0))
       (Expr.binop Expr.Add (Expr.var ~width:4 r.Circuit.read) (Expr.of_int ~width:4 1)));
  Circuit.mark_output c r.Circuit.read;
  let sim = Full_cycle.sim (Full_cycle.create c) in
  let cov, sim = Collect.create sim in
  Sim.run sim 3;
  sim.Sim.poke rst.Circuit.id (b ~w:1 1);
  Sim.run sim 2;
  sim.Sim.poke rst.Circuit.id (b ~w:1 0);
  Sim.run sim 3;
  let db = Collect.db cov in
  let rc = Hashtbl.find db.Db.resets "top.state" in
  Alcotest.(check int) "asserted once" 1 rc.Db.asserts;
  Alcotest.(check int) "deasserted once" 1 rc.Db.deasserts;
  Alcotest.(check bool) "seen on" true rc.Db.seen_on;
  let s = Db.summary db in
  Alcotest.(check int) "reset point covered" 1 s.Db.reset_covered;
  (* Never asserted: uncovered. *)
  let c2 = Circuit.create ~name:"rst2" () in
  let rst2 = Circuit.add_input c2 ~name:"rst" ~width:1 in
  let r2 =
    Circuit.add_register c2 ~name:"top.state" ~width:4 ~init:(b ~w:4 0)
      ~reset:(rst2.Circuit.id, b ~w:4 0) ()
  in
  Circuit.set_next c2 r2 (Expr.var ~width:4 r2.Circuit.read);
  Circuit.mark_output c2 r2.Circuit.read;
  let sim2 = Full_cycle.sim (Full_cycle.create c2) in
  let cov2, sim2 = Collect.create sim2 in
  Sim.run sim2 3;
  let db2 = Collect.db cov2 in
  let s2 = Db.summary db2 in
  Alcotest.(check int) "reset uncovered" 0 s2.Db.reset_covered;
  Alcotest.(check bool) "listed as never asserted" true
    (List.mem "reset top.state never asserted" (Report.uncovered db2))

(* --- Database laws ------------------------------------------------------ *)

(* A small family of databases from genuinely different runs. *)
let counter_db pattern =
  let c, en, _ = counter_circuit () in
  let sim = Full_cycle.sim (Full_cycle.create c) in
  let cov, sim = Collect.create sim in
  List.iter
    (fun e ->
      sim.Sim.poke en (b ~w:1 e);
      Sim.run sim 1)
    pattern;
  Collect.db cov

let test_merge_laws () =
  let a = counter_db [ 1; 1; 0; 1 ] in
  let b_ = counter_db [ 0; 1; 0; 0; 1; 1 ] in
  let c = counter_db [ 1; 0 ] in
  Alcotest.(check bool) "commutative" true (Db.equal (Db.merge a b_) (Db.merge b_ a));
  Alcotest.(check bool) "associative" true
    (Db.equal (Db.merge (Db.merge a b_) c) (Db.merge a (Db.merge b_ c)));
  Alcotest.(check bool) "idempotent on covered-ness" true
    (Db.summary_equal (Db.summary (Db.merge a a)) (Db.summary a));
  let m = Db.merge a b_ in
  Alcotest.(check int) "runs accumulate" 2 m.Db.runs;
  Alcotest.(check int) "cycles accumulate" 10 m.Db.total_cycles;
  (* Counts sum. *)
  let tg_a = Hashtbl.find a.Db.toggles "top.count" in
  let tg_b = Hashtbl.find b_.Db.toggles "top.count" in
  let tg_m = Hashtbl.find m.Db.toggles "top.count" in
  for bit = 0 to 7 do
    Alcotest.(check int) "rise sums" (tg_a.Db.rise.(bit) + tg_b.Db.rise.(bit)) tg_m.Db.rise.(bit)
  done

let test_merge_width_mismatch_rejected () =
  let a = Db.create () in
  ignore (Db.toggle_entry a "x" ~width:4);
  let b_ = Db.create () in
  ignore (Db.toggle_entry b_ "x" ~width:8);
  Alcotest.(check bool) "width clash fails" true
    (match Db.merge a b_ with exception Failure _ -> true | _ -> false)

let test_save_load_roundtrip () =
  let core = Stu_core.build () in
  let sim = Full_cycle.sim (Full_cycle.create core.Stu_core.circuit) in
  let cov, sim = Collect.create sim in
  Designs.load_program sim core.Stu_core.h (Programs.quick ());
  Sim.run sim 40;
  let db = Collect.db cov in
  let path = Filename.temp_file "gsim" ".cov" in
  Db.save path db;
  let db' = Db.load path in
  Sys.remove path;
  Alcotest.(check bool) "file roundtrip" true (Db.equal db db');
  let db'' = Db.of_string (Db.to_string db) in
  Alcotest.(check bool) "string roundtrip" true (Db.equal db db'');
  Alcotest.(check bool) "rejects garbage" true
    (match Db.of_string "nonsense" with exception Failure _ -> true | _ -> false)

let test_split_run_counts_sum () =
  (* Coverage of a run split across two collectors sums to the unsplit
     run's coverage: the second collector's baseline re-anchors at the
     boundary values, so no transition is lost or double-counted. *)
  let pattern i = if i mod 3 = 0 then 0 else 1 in
  let drive sim en lo hi =
    for i = lo to hi - 1 do
      sim.Sim.poke en (b ~w:1 (pattern i));
      Sim.run sim 1
    done
  in
  let c_full, en_full, _ = counter_circuit () in
  let sim = Full_cycle.sim (Full_cycle.create c_full) in
  let cov_full, sim = Collect.create sim in
  drive sim en_full 0 20;
  let full = Collect.db cov_full in
  let c2, en2, _ = counter_circuit () in
  let base = Full_cycle.sim (Full_cycle.create c2) in
  let cov1, sim1 = Collect.create base in
  drive sim1 en2 0 9;
  let cov2, sim2 = Collect.create base in
  drive sim2 en2 9 20;
  let merged = Db.merge (Collect.db cov1) (Collect.db cov2) in
  Hashtbl.iter
    (fun name (tg : Db.toggle) ->
      let tg' = Hashtbl.find merged.Db.toggles name in
      for bit = 0 to tg.Db.t_width - 1 do
        Alcotest.(check int)
          (Printf.sprintf "%s[%d] rise" name bit)
          tg.Db.rise.(bit) tg'.Db.rise.(bit);
        Alcotest.(check int)
          (Printf.sprintf "%s[%d] fall" name bit)
          tg.Db.fall.(bit) tg'.Db.fall.(bit)
      done)
    full.Db.toggles;
  Hashtbl.iter
    (fun name (n : Db.node_cov) ->
      Alcotest.(check int) (name ^ " changes")
        n.Db.changes
        (Hashtbl.find merged.Db.nodes name).Db.changes)
    full.Db.nodes;
  Hashtbl.iter
    (fun (name, idx) (cd : Db.cond) ->
      let cd' = Hashtbl.find merged.Db.conds (name, idx) in
      Alcotest.(check int) "into-true sums" cd.Db.taken_true cd'.Db.taken_true;
      Alcotest.(check int) "into-false sums" cd.Db.taken_false cd'.Db.taken_false)
    full.Db.conds;
  Alcotest.(check int) "cycles sum" full.Db.total_cycles merged.Db.total_cycles

(* --- Cross-engine identity ---------------------------------------------- *)

let test_cross_engine_identical () =
  (* Full-cycle resampling vs the gsim activity engine's change-event fast
     path, same design, same program, same cycle count: the databases must
     be bit-identical. *)
  let prog = Programs.quick () in
  let cycles = 400 in
  let full_db =
    let core = Stu_core.build () in
    let sim = Full_cycle.sim (Full_cycle.create core.Stu_core.circuit) in
    let cov, sim = Collect.create sim in
    Designs.load_program sim core.Stu_core.h prog;
    Designs.run_cycles sim cycles;
    Collect.db cov
  in
  let fast_db =
    let core = Stu_core.build () in
    let p = Partition.gsim core.Stu_core.circuit ~max_size:8 in
    let engine = Activity.create core.Stu_core.circuit p in
    let cov, sim = Collect.of_activity engine in
    Designs.load_program sim core.Stu_core.h prog;
    Designs.run_cycles sim cycles;
    Collect.db cov
  in
  Alcotest.(check bool) "identical databases" true (Db.equal full_db fast_db);
  (* The program halts early; the activity engine goes idle, so coverage
     must have been collected without resampling everything each cycle. *)
  let s = Db.summary full_db in
  Alcotest.(check bool) "some toggles covered" true (s.Db.toggle_covered > 0);
  Alcotest.(check bool) "some conds covered" true (s.Db.cond_covered > 0)

let test_cross_engine_with_checkpoint_restore () =
  (* Restoring a checkpoint into a covered activity engine must not lose
     value changes (write_reg bypasses the change hook). *)
  let prog = Programs.quick () in
  let core_a = Stu_core.build () in
  let sim_a = Full_cycle.sim (Full_cycle.create core_a.Stu_core.circuit) in
  Designs.load_program sim_a core_a.Stu_core.h prog;
  Sim.run sim_a 50;
  let ck = Checkpoint.capture sim_a in
  let restore_and_run mk =
    let core = Stu_core.build () in
    let cov, sim = mk core in
    Designs.load_program sim core.Stu_core.h prog;
    Sim.run sim 50;
    Checkpoint.restore sim ck;
    Sim.run sim 100;
    Collect.db cov
  in
  let db_full =
    restore_and_run (fun core ->
        Collect.create (Full_cycle.sim (Full_cycle.create core.Stu_core.circuit)))
  in
  let db_fast =
    restore_and_run (fun core ->
        let p = Partition.gsim core.Stu_core.circuit ~max_size:8 in
        Collect.of_activity (Activity.create core.Stu_core.circuit p))
  in
  Alcotest.(check bool) "identical after restore" true (Db.equal db_full db_fast)

(* --- Reporting ---------------------------------------------------------- *)

let test_report_renders () =
  let core = Stu_core.build () in
  let sim = Full_cycle.sim (Full_cycle.create core.Stu_core.circuit) in
  let cov, sim = Collect.create sim in
  Designs.load_program sim core.Stu_core.h (Programs.quick ());
  Sim.run sim 60;
  let db = Collect.db cov in
  let text = Report.to_string ~uncovered:5 db in
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    m = 0 || go 0
  in
  Alcotest.(check bool) "summary line" true (contains text "toggle");
  Alcotest.(check bool) "uncovered section" true (contains text "uncovered:");
  let json = Report.to_json ~uncovered:true db in
  Alcotest.(check bool) "json summary" true (contains json "\"summary\"");
  Alcotest.(check bool) "json scopes" true (contains json "\"scopes\"");
  Alcotest.(check bool) "json uncovered" true (contains json "\"uncovered\"");
  Alcotest.(check bool) "json balanced" true
    (String.length json > 2
    && json.[0] = '{'
    && json.[String.length json - 1] = '}')

let () =
  Alcotest.run "coverage"
    [
      ( "collect",
        [
          Alcotest.test_case "toggle counts exact" `Quick test_toggle_counts_exact;
          Alcotest.test_case "condition coverage" `Quick test_cond_coverage;
          Alcotest.test_case "reset coverage" `Quick test_reset_coverage;
        ] );
      ( "db",
        [
          Alcotest.test_case "merge laws" `Quick test_merge_laws;
          Alcotest.test_case "merge width mismatch" `Quick test_merge_width_mismatch_rejected;
          Alcotest.test_case "save/load roundtrip" `Quick test_save_load_roundtrip;
          Alcotest.test_case "split-run counts sum" `Quick test_split_run_counts_sum;
        ] );
      ( "engines",
        [
          Alcotest.test_case "cross-engine identical" `Quick test_cross_engine_identical;
          Alcotest.test_case "identical after restore" `Quick
            test_cross_engine_with_checkpoint_restore;
        ] );
      ( "report",
        [ Alcotest.test_case "text and json" `Quick test_report_renders ] );
    ]
