(* Bits: unit tests against native-int semantics on narrow widths, and
   algebraic invariants on wide values. *)

module Bits = Gsim_bits.Bits

let check_bits msg expected actual =
  Alcotest.(check string) msg (Format.asprintf "%a" Bits.pp expected)
    (Format.asprintf "%a" Bits.pp actual)

(* ------------------------------------------------------------------ *)
(* Deterministic unit tests                                            *)
(* ------------------------------------------------------------------ *)

let test_construct () =
  Alcotest.(check int) "zero width" 8 (Bits.width (Bits.zero 8));
  Alcotest.(check int) "of_int value" 5 (Bits.to_int (Bits.of_int ~width:8 5));
  Alcotest.(check int) "of_int truncates" 1 (Bits.to_int (Bits.of_int ~width:1 3));
  Alcotest.(check int) "of_int negative" 0xFF (Bits.to_int (Bits.of_int ~width:8 (-1)));
  Alcotest.(check int) "ones" 0x7F (Bits.to_int (Bits.ones 7));
  Alcotest.(check bool) "is_zero" true (Bits.is_zero (Bits.zero 100));
  Alcotest.(check bool) "ones not zero" false (Bits.is_zero (Bits.ones 100))

let test_of_string () =
  Alcotest.(check int) "binary" 5 (Bits.to_int (Bits.of_string "4'b0101"));
  Alcotest.(check int) "hex" 0xAB (Bits.to_int (Bits.of_string "8'hab"));
  Alcotest.(check int) "decimal" 1234 (Bits.to_int (Bits.of_string "16'd1234"));
  Alcotest.(check int) "bare binary" 6 (Bits.to_int (Bits.of_string "110"));
  Alcotest.(check int) "bare width" 3 (Bits.width (Bits.of_string "110"));
  Alcotest.(check int) "underscores" 0xF0 (Bits.to_int (Bits.of_string "8'b1111_0000"));
  Alcotest.check_raises "bad width" (Invalid_argument "Bits.of_string: \"2'b111\"")
    (fun () -> ignore (Bits.of_string "2'b111"))

let test_strings_roundtrip () =
  let v = Bits.of_string "100'hdeadbeefdeadbeefdeadbeef0" in
  check_bits "binary roundtrip" v (Bits.of_string (Bits.to_binary_string v));
  Alcotest.(check string) "hex" "deadbeefdeadbeefdeadbeef0" (Bits.to_hex_string v)

let test_wide_boundaries () =
  (* Cross the 31-bit limb and the 62-bit packing boundaries. *)
  List.iter
    (fun w ->
      let v = Bits.ones w in
      Alcotest.(check int) (Printf.sprintf "popcount ones %d" w) w (Bits.popcount v);
      Alcotest.(check bool) (Printf.sprintf "msb ones %d" w) true (Bits.msb v);
      check_bits
        (Printf.sprintf "not ones = zero %d" w)
        (Bits.zero w) (Bits.lognot v))
    [ 1; 30; 31; 32; 61; 62; 63; 93; 124; 200 ]

let test_to_int_bounds () =
  Alcotest.(check int) "62-bit max" ((1 lsl 62) - 1) (Bits.to_int (Bits.ones 62));
  Alcotest.check_raises "63 bits overflows" (Failure "Bits.to_int: value exceeds 62 bits")
    (fun () -> ignore (Bits.to_int (Bits.ones 63)));
  Alcotest.(check int) "to_int_trunc keeps low bits" ((1 lsl 62) - 1)
    (Bits.to_int_trunc (Bits.ones 100))

let test_signed_int () =
  Alcotest.(check int) "minus one" (-1) (Bits.to_signed_int (Bits.ones 8));
  Alcotest.(check int) "min" (-128) (Bits.to_signed_int (Bits.of_int ~width:8 0x80));
  Alcotest.(check int) "positive" 127 (Bits.to_signed_int (Bits.of_int ~width:8 0x7F));
  Alcotest.(check int) "wide minus one" (-1) (Bits.to_signed_int (Bits.ones 150))

let test_extract_concat () =
  let v = Bits.of_string "16'habcd" in
  Alcotest.(check int) "low nibble" 0xD (Bits.to_int (Bits.extract v ~hi:3 ~lo:0));
  Alcotest.(check int) "high nibble" 0xA (Bits.to_int (Bits.extract v ~hi:15 ~lo:12));
  Alcotest.(check int) "middle" 0xBC (Bits.to_int (Bits.extract v ~hi:11 ~lo:4));
  let hi = Bits.of_int ~width:4 0xA and lo = Bits.of_int ~width:8 0x5B in
  Alcotest.(check int) "concat" 0xA5B (Bits.to_int (Bits.concat hi lo));
  check_bits "concat_list"
    (Bits.of_string "12'ha5b")
    (Bits.concat_list [ hi; Bits.extract lo ~hi:7 ~lo:4; Bits.extract lo ~hi:3 ~lo:0 ])

let test_arith_basics () =
  let a = Bits.of_int ~width:8 200 and b = Bits.of_int ~width:8 100 in
  Alcotest.(check int) "add" 300 (Bits.to_int (Bits.add a b));
  Alcotest.(check int) "add width" 9 (Bits.width (Bits.add a b));
  Alcotest.(check int) "sub wraps" ((100 - 200) land 0x1FF) (Bits.to_int (Bits.sub b a));
  Alcotest.(check int) "mul" 20000 (Bits.to_int (Bits.mul a b));
  Alcotest.(check int) "mul width" 16 (Bits.width (Bits.mul a b));
  Alcotest.(check int) "div" 2 (Bits.to_int (Bits.div a b));
  Alcotest.(check int) "rem" 0 (Bits.to_int (Bits.rem a b));
  Alcotest.(check int) "div by zero" 0 (Bits.to_int (Bits.div a (Bits.zero 8)));
  Alcotest.(check int) "rem by zero" 200 (Bits.to_int (Bits.rem a (Bits.zero 8)));
  Alcotest.(check int) "neg" ((-200) land 0x1FF) (Bits.to_int (Bits.neg a))

let test_signed_arith () =
  let m3 = Bits.of_int ~width:4 (-3) and p2 = Bits.of_int ~width:4 2 in
  Alcotest.(check int) "divs trunc toward zero" (-1)
    (Bits.to_signed_int (Bits.div_signed m3 p2));
  Alcotest.(check int) "rems sign of dividend" (-1)
    (Bits.to_signed_int (Bits.rem_signed m3 p2));
  Alcotest.(check int) "muls" (-6) (Bits.to_signed_int (Bits.mul_signed m3 p2));
  Alcotest.(check int) "adds" (-1) (Bits.to_signed_int (Bits.add_signed m3 p2));
  Alcotest.(check bool) "lts" true (Bits.to_int (Bits.lt_signed m3 p2) = 1);
  Alcotest.(check bool) "gts" true (Bits.to_int (Bits.gt_signed p2 m3) = 1)

let test_shifts () =
  let v = Bits.of_int ~width:8 0b1011 in
  Alcotest.(check int) "shl value" 0b101100 (Bits.to_int (Bits.shift_left v 2));
  Alcotest.(check int) "shl width" 10 (Bits.width (Bits.shift_left v 2));
  Alcotest.(check int) "shr value" 0b10 (Bits.to_int (Bits.shift_right v 2));
  Alcotest.(check int) "shr width" 6 (Bits.width (Bits.shift_right v 2));
  Alcotest.(check int) "shr beyond" 0 (Bits.to_int (Bits.shift_right v 20));
  let neg = Bits.of_int ~width:8 0x80 in
  Alcotest.(check int) "ashr keeps top bits" 0b100000
    (Bits.to_int (Bits.shift_right_signed neg 2));
  Alcotest.(check int) "ashr beyond width" 1
    (Bits.to_int (Bits.shift_right_signed neg 20));
  let amt = Bits.of_int ~width:4 3 in
  Alcotest.(check int) "dshl_keep" ((0b1011 lsl 3) land 0xFF)
    (Bits.to_int (Bits.dshl_keep v amt));
  Alcotest.(check int) "dshr" 1 (Bits.to_int (Bits.dshr v amt));
  Alcotest.(check int) "dshr_signed" 0xF0 (Bits.to_int (Bits.dshr_signed neg (Bits.of_int ~width:4 3)));
  Alcotest.(check int) "dshr huge amount" 0
    (Bits.to_int (Bits.dshr v (Bits.of_int ~width:40 1000000000)))

let test_reductions () =
  Alcotest.(check int) "andr ones" 1 (Bits.to_int (Bits.reduce_and (Bits.ones 33)));
  Alcotest.(check int) "andr mixed" 0
    (Bits.to_int (Bits.reduce_and (Bits.of_int ~width:33 5)));
  Alcotest.(check int) "orr zero" 0 (Bits.to_int (Bits.reduce_or (Bits.zero 90)));
  Alcotest.(check int) "xorr parity" 1
    (Bits.to_int (Bits.reduce_xor (Bits.of_int ~width:40 0b0111)))

let test_mux_compare () =
  let a = Bits.of_int ~width:8 7 and b = Bits.of_int ~width:8 9 in
  check_bits "mux true" a (Bits.mux (Bits.one 1) a b);
  check_bits "mux false" b (Bits.mux (Bits.zero 1) a b);
  Alcotest.(check int) "lt across widths" 1
    (Bits.to_int (Bits.lt (Bits.of_int ~width:4 3) (Bits.of_int ~width:70 5)));
  Alcotest.(check int) "eq across widths" 1
    (Bits.to_int (Bits.eq (Bits.of_int ~width:4 3) (Bits.of_int ~width:100 3)))

(* ------------------------------------------------------------------ *)
(* Properties against native ints (narrow widths are exact)            *)
(* ------------------------------------------------------------------ *)

let narrow_pair =
  QCheck.make
    ~print:(fun (w1, a, w2, b) -> Printf.sprintf "w1=%d a=%d w2=%d b=%d" w1 a w2 b)
    QCheck.Gen.(
      let* w1 = int_range 1 30 in
      let* w2 = int_range 1 30 in
      let* a = int_bound ((1 lsl w1) - 1) in
      let* b = int_bound ((1 lsl w2) - 1) in
      return (w1, a, w2, b))

let sext w x = (x lsl (63 - w)) asr (63 - w)

let prop_narrow name f =
  QCheck.Test.make ~name ~count:500 narrow_pair f

let narrow_props =
  let mk (w1, a, w2, b) = (Bits.of_int ~width:w1 a, Bits.of_int ~width:w2 b) in
  [
    prop_narrow "add matches int" (fun ((w1, a, w2, b) as q) ->
        let x, y = mk q in
        Bits.to_int (Bits.add x y) = (a + b) land ((1 lsl (max w1 w2 + 1)) - 1));
    prop_narrow "sub matches int" (fun ((w1, a, w2, b) as q) ->
        let x, y = mk q in
        Bits.to_int (Bits.sub x y) = (a - b) land ((1 lsl (max w1 w2 + 1)) - 1));
    prop_narrow "mul matches int" (fun ((_, a, _, b) as q) ->
        let x, y = mk q in
        Bits.to_int (Bits.mul x y) = a * b);
    prop_narrow "div matches int" (fun ((_, a, _, b) as q) ->
        let x, y = mk q in
        Bits.to_int (Bits.div x y) = if b = 0 then 0 else a / b);
    prop_narrow "rem matches int" (fun ((w1, a, w2, b) as q) ->
        let x, y = mk q in
        let m = (1 lsl min w1 w2) - 1 in
        Bits.to_int (Bits.rem x y) = (if b = 0 then a land m else a mod b land m));
    prop_narrow "div_signed matches int" (fun ((w1, a, w2, b) as q) ->
        let x, y = mk q in
        let sa = sext w1 a and sb = sext w2 b in
        let expect = if sb = 0 then 0 else sa / sb land ((1 lsl (w1 + 1)) - 1) in
        Bits.to_int (Bits.div_signed x y) = expect);
    prop_narrow "rem_signed matches int" (fun ((w1, a, w2, b) as q) ->
        let x, y = mk q in
        let sa = sext w1 a and sb = sext w2 b in
        let m = (1 lsl min w1 w2) - 1 in
        let expect = if sb = 0 then sa land m else sa mod sb land m in
        Bits.to_int (Bits.rem_signed x y) = expect);
    prop_narrow "unsigned compare" (fun ((_, a, _, b) as q) ->
        let x, y = mk q in
        Bits.to_int (Bits.lt x y) = Bool.to_int (a < b)
        && Bits.to_int (Bits.geq x y) = Bool.to_int (a >= b));
    prop_narrow "signed compare" (fun ((w1, a, w2, b) as q) ->
        let x, y = mk q in
        Bits.to_int (Bits.lt_signed x y) = Bool.to_int (sext w1 a < sext w2 b));
    prop_narrow "logic ops match" (fun ((w1, a, w2, b) as q) ->
        let w = max w1 w2 in
        let x = Bits.resize_unsigned (fst (mk q)) ~width:w in
        let y = Bits.resize_unsigned (snd (mk q)) ~width:w in
        Bits.to_int (Bits.logand x y) = a land b
        && Bits.to_int (Bits.logor x y) = a lor b
        && Bits.to_int (Bits.logxor x y) = a lxor b);
    prop_narrow "cat matches int" (fun ((_, a, w2, b) as q) ->
        let x, y = mk q in
        Bits.to_int (Bits.concat x y) = (a lsl w2) lor b);
  ]

(* ------------------------------------------------------------------ *)
(* Wide-value invariants                                               *)
(* ------------------------------------------------------------------ *)

let st = Random.State.make [| 0x5eed |]

let wide_gen =
  QCheck.make
    ~print:(fun (w, _) -> Printf.sprintf "width=%d" w)
    QCheck.Gen.(
      let* w = int_range 1 200 in
      return (w, Bits.random st ~width:w))

let wide_pair_gen =
  QCheck.make
    ~print:(fun (w, _, _) -> Printf.sprintf "width=%d" w)
    QCheck.Gen.(
      let* w = int_range 1 200 in
      return (w, Bits.random st ~width:w, Bits.random st ~width:w))

let wide_props =
  [
    QCheck.Test.make ~name:"lognot involution" ~count:300 wide_gen (fun (_, v) ->
        Bits.equal v (Bits.lognot (Bits.lognot v)));
    QCheck.Test.make ~name:"binary string roundtrip" ~count:300 wide_gen (fun (_, v) ->
        Bits.equal v (Bits.of_string (Bits.to_binary_string v)));
    QCheck.Test.make ~name:"bool list roundtrip" ~count:300 wide_gen (fun (_, v) ->
        Bits.equal v (Bits.of_bool_list (Bits.to_bool_list v)));
    QCheck.Test.make ~name:"extract/concat inverse" ~count:300 wide_gen (fun (w, v) ->
        w < 2
        ||
        let k = 1 + (w / 3) in
        let hi = Bits.extract v ~hi:(w - 1) ~lo:k and lo = Bits.extract v ~hi:(k - 1) ~lo:0 in
        Bits.equal v (Bits.concat hi lo));
    QCheck.Test.make ~name:"add/sub inverse" ~count:300 wide_pair_gen (fun (w, a, b) ->
        let sum = Bits.truncate (Bits.add a b) ~width:w in
        let back = Bits.truncate (Bits.sub sum b) ~width:w in
        Bits.equal a back);
    QCheck.Test.make ~name:"add commutes" ~count:300 wide_pair_gen (fun (_, a, b) ->
        Bits.equal (Bits.add a b) (Bits.add b a));
    QCheck.Test.make ~name:"divmod identity" ~count:300 wide_pair_gen (fun (w, a, b) ->
        Bits.is_zero b
        ||
        let q = Bits.div a b and r = Bits.rem a b in
        (* a = q*b + r, all truncated to w bits, and r < b *)
        let qb = Bits.truncate (Bits.mul q b) ~width:w in
        let r' = Bits.resize_unsigned r ~width:w in
        Bits.equal a (Bits.truncate (Bits.add qb r') ~width:(w + 1) |> Bits.truncate ~width:w)
        && Bits.compare_unsigned r b < 0);
    QCheck.Test.make ~name:"mul by shift-add" ~count:200 wide_gen (fun (w, a) ->
        (* a * 5 = (a << 2) + a *)
        let five = Bits.of_int ~width:3 5 in
        let prod = Bits.mul a five in
        let manual =
          Bits.truncate
            (Bits.add (Bits.zero_extend (Bits.shift_left a 2) ~width:(w + 3)) a)
            ~width:(w + 3)
        in
        Bits.equal prod manual);
    QCheck.Test.make ~name:"shift composition" ~count:300 wide_gen (fun (_, a) ->
        Bits.equal (Bits.shift_left (Bits.shift_left a 3) 4) (Bits.shift_left a 7));
    QCheck.Test.make ~name:"sign extend preserves signed value" ~count:300 wide_gen
      (fun (w, a) ->
        if w > 60 then true
        else Bits.to_signed_int (Bits.sign_extend a ~width:(w + 5)) = Bits.to_signed_int a);
    QCheck.Test.make ~name:"compare antisymmetric" ~count:300 wide_pair_gen
      (fun (_, a, b) ->
        Bits.compare_unsigned a b = -Bits.compare_unsigned b a
        && Bits.compare_signed a b = -Bits.compare_signed b a);
    QCheck.Test.make ~name:"neg is sub from zero" ~count:300 wide_gen (fun (w, a) ->
        Bits.equal (Bits.neg a) (Bits.sub (Bits.zero w) a));
  ]

(* ------------------------------------------------------------------ *)
(* Corner cases: degenerate widths, division by zero, extreme values   *)
(* ------------------------------------------------------------------ *)

let test_div_rem_by_zero () =
  let a = Bits.of_int ~width:8 0xAB and z = Bits.zero 8 in
  check_bits "div by zero is zero" (Bits.zero 8) (Bits.div a z);
  check_bits "rem by zero is the dividend" a (Bits.rem a z);
  (* Mixed widths: the remainder width is min(wa, wb). *)
  check_bits "rem by narrow zero truncates" (Bits.of_int ~width:4 0xB)
    (Bits.rem a (Bits.zero 4));
  check_bits "div_signed by zero is zero" (Bits.zero 9) (Bits.div_signed a z);
  (* -85 rem 0 keeps the (signed-resized) dividend. *)
  let m85 = Bits.of_int ~width:8 0xAB in
  check_bits "rem_signed by zero is the dividend" m85 (Bits.rem_signed m85 z);
  check_bits "zero div zero" (Bits.zero 8) (Bits.div z z);
  check_bits "zero rem zero" (Bits.zero 8) (Bits.rem z z)

let test_shift_past_width () =
  let v = Bits.of_int ~width:8 0xC5 in
  (* Static shifts collapse to a single bit once the width is exhausted. *)
  check_bits "shr by width" (Bits.zero 1) (Bits.shift_right v 8);
  check_bits "shr past width" (Bits.zero 1) (Bits.shift_right v 100);
  check_bits "ashr by width keeps sign" (Bits.ones 1) (Bits.shift_right_signed v 8);
  check_bits "ashr past width, positive" (Bits.zero 1)
    (Bits.shift_right_signed (Bits.of_int ~width:8 0x45) 100);
  (* Dynamic shifts keep the operand width. *)
  let amt = Bits.of_int ~width:16 8 in
  check_bits "dshr by width" (Bits.zero 8) (Bits.dshr v amt);
  check_bits "dshr_signed by width, negative" (Bits.ones 8) (Bits.dshr_signed v amt);
  check_bits "dshl_keep by width" (Bits.zero 8) (Bits.dshl_keep v amt);
  let huge = Bits.of_string "64'hFFFFFFFFFFFFFFFF" in
  check_bits "dshr by a huge amount" (Bits.zero 8) (Bits.dshr v huge);
  check_bits "dshr_signed by a huge amount" (Bits.ones 8) (Bits.dshr_signed v huge);
  check_bits "shift_left widens" (Bits.of_int ~width:12 0xC50) (Bits.shift_left v 4)

let test_zero_width () =
  let e = Bits.zero 0 in
  Alcotest.(check int) "width" 0 (Bits.width e);
  Alcotest.(check bool) "is_zero" true (Bits.is_zero e);
  Alcotest.(check int) "to_int" 0 (Bits.to_int e);
  Alcotest.(check int) "to_signed_int" 0 (Bits.to_signed_int e);
  Alcotest.(check int) "popcount" 0 (Bits.popcount e);
  Alcotest.(check string) "binary string" "" (Bits.to_binary_string e);
  check_bits "lognot" e (Bits.lognot e);
  check_bits "ones 0" e (Bits.ones 0);
  (* Concatenation with a zero-width operand is the identity. *)
  let v = Bits.of_int ~width:8 0x5A in
  check_bits "concat e v" v (Bits.concat e v);
  check_bits "concat v e" v (Bits.concat v e);
  check_bits "concat_list []" e (Bits.concat_list []);
  check_bits "concat_list with empties" v (Bits.concat_list [ e; v; e ]);
  check_bits "msb-less compare" (Bits.one 1) (Bits.eq e e)

let test_signed_min_value () =
  (* The most negative value: its magnitude does not fit the same signed
     width, so every op that negates must widen first. *)
  let minv = Bits.of_int ~width:8 0x80 in
  let m1 = Bits.of_int ~width:8 0xFF in
  (* neg is computed over width + 1: -(−128) = +128 needs 9 bits. *)
  Alcotest.(check int) "neg widens" 9 (Bits.width (Bits.neg minv));
  Alcotest.(check int) "to_signed_int minv" (-128) (Bits.to_signed_int minv);
  (* minv / -1 = +128, representable only because div_signed widens. *)
  Alcotest.(check int) "minv / -1" 128 (Bits.to_signed_int (Bits.div_signed minv m1));
  check_bits "minv rem -1" (Bits.zero 8) (Bits.rem_signed minv m1);
  Alcotest.(check int) "minv / 1" (-128)
    (Bits.to_signed_int (Bits.div_signed minv (Bits.one 8)));
  Alcotest.(check int) "minv * minv" 16384
    (Bits.to_signed_int (Bits.mul_signed minv minv));
  Alcotest.(check int) "minv + minv" (-256)
    (Bits.to_signed_int (Bits.add_signed minv minv));
  Alcotest.(check int) "abs via sub" 128
    (Bits.to_int (Bits.sub_signed (Bits.zero 8) minv));
  (* Same corners at the widest packed width. *)
  let minv62 = Bits.shift_left (Bits.one 1) 61 in
  Alcotest.(check int) "62-bit minv" (-(1 lsl 61)) (Bits.to_signed_int minv62);
  Alcotest.(check int) "62-bit minv / -1" (1 lsl 61)
    (Bits.to_signed_int (Bits.div_signed minv62 (Bits.ones 62)));
  (* Boundaries of the native 63-bit int range. *)
  Alcotest.(check int) "63-bit +2^61" (1 lsl 61)
    (Bits.to_signed_int (Bits.zero_extend minv62 ~width:63));
  Alcotest.(check int) "63-bit min_int" min_int
    (Bits.to_signed_int (Bits.concat (Bits.one 1) (Bits.zero 62)));
  Alcotest.(check int) "64-bit -1" (-1) (Bits.to_signed_int (Bits.ones 64));
  (match Bits.to_signed_int (Bits.concat (Bits.one 2) (Bits.zero 62)) with
   | exception Failure _ -> ()
   | v -> Alcotest.failf "+2^62 should not fit a native int, got %d" v)

let test_of_string_rejects_oversized () =
  let rejects s =
    match Bits.of_string s with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "of_string %S should have been rejected" s
  in
  rejects "4'd16";
  rejects "4'd100";
  rejects "1'd2";
  rejects "4'b10000";
  rejects "4'h10";
  check_bits "4'd15 still fits" (Bits.of_int ~width:4 15) (Bits.of_string "4'd15");
  check_bits "62'd1 fits" (Bits.one 62) (Bits.of_string "62'd1")

let () =
  let qsuite name tests = (name, List.map (QCheck_alcotest.to_alcotest ~long:false) tests) in
  Alcotest.run "bits"
    [
      ( "unit",
        [
          Alcotest.test_case "construct" `Quick test_construct;
          Alcotest.test_case "of_string" `Quick test_of_string;
          Alcotest.test_case "string roundtrip" `Quick test_strings_roundtrip;
          Alcotest.test_case "wide boundaries" `Quick test_wide_boundaries;
          Alcotest.test_case "to_int bounds" `Quick test_to_int_bounds;
          Alcotest.test_case "signed int" `Quick test_signed_int;
          Alcotest.test_case "extract/concat" `Quick test_extract_concat;
          Alcotest.test_case "arith basics" `Quick test_arith_basics;
          Alcotest.test_case "signed arith" `Quick test_signed_arith;
          Alcotest.test_case "shifts" `Quick test_shifts;
          Alcotest.test_case "reductions" `Quick test_reductions;
          Alcotest.test_case "mux/compare" `Quick test_mux_compare;
        ] );
      ( "corners",
        [
          Alcotest.test_case "div/rem by zero" `Quick test_div_rem_by_zero;
          Alcotest.test_case "shift past width" `Quick test_shift_past_width;
          Alcotest.test_case "zero width" `Quick test_zero_width;
          Alcotest.test_case "signed min value" `Quick test_signed_min_value;
          Alcotest.test_case "of_string oversized" `Quick test_of_string_rejects_oversized;
        ] );
      qsuite "narrow-vs-int" narrow_props;
      qsuite "wide-invariants" wide_props;
    ]
