(* Native (AOT-compiled C) backend: emitted code must be bit-identical to
   the interpreted backends on every engine that can select it, over
   hand-written signed div/rem corners, wide-limb mixes, and the same
   120-circuit torture sweep the bytecode backend passes.  Also pins the
   .so cache behaviour (miss on first compile, hit on reuse,
   invalidation on circuit-hash change), the missing-compiler fallback
   ladder, the auto heuristic, and force/release guarded-slot semantics
   under native evaluation. *)

module Bits = Gsim_bits.Bits
module Expr = Gsim_ir.Expr
module Circuit = Gsim_ir.Circuit
module Reference = Gsim_ir.Reference
module Rand_circuit = Gsim_ir.Rand_circuit
module Partition = Gsim_partition.Partition
module Sim = Gsim_engine.Sim
module Counters = Gsim_engine.Counters
module Eval = Gsim_engine.Eval
module Native = Gsim_engine.Native
module Full_cycle = Gsim_engine.Full_cycle
module Activity = Gsim_engine.Activity
module Parallel = Gsim_engine.Parallel
module Emit_c = Gsim_emit.Emit_c
module Collect = Gsim_coverage.Collect
module Oracle = Gsim_verify.Oracle

let b ~w n = Bits.of_int ~width:w n

(* Isolate the suite from any user-level cache so miss/hit assertions are
   deterministic; the memo inside Native is per-process and starts
   empty. *)
let () =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "gsim-native-test-%d" (Unix.getpid ()))
  in
  Unix.putenv "GSIM_NATIVE_CACHE" dir

let have_cc = Native.available ()

let skip_without_cc () =
  if not have_cc then Alcotest.skip ()

(* --- signed div/rem corners ------------------------------------------- *)

let divrem_circuit ~w =
  let c = Circuit.create ~name:(Printf.sprintf "divrem%d" w) () in
  let a = Circuit.add_input c ~name:"a" ~width:w in
  let d = Circuit.add_input c ~name:"d" ~width:w in
  let va = Expr.var ~width:w a.Circuit.id and vd = Expr.var ~width:w d.Circuit.id in
  let q = Circuit.add_logic c ~name:"q" (Expr.binop Expr.Div_signed va vd) in
  let r = Circuit.add_logic c ~name:"r" (Expr.binop Expr.Rem_signed va vd) in
  let uq = Circuit.add_logic c ~name:"uq" (Expr.binop Expr.Div va vd) in
  let ur = Circuit.add_logic c ~name:"ur" (Expr.binop Expr.Rem va vd) in
  List.iter (fun (n : Circuit.node) -> Circuit.mark_output c n.Circuit.id) [ q; r; uq; ur ];
  (c, a.Circuit.id, d.Circuit.id)

let divrem_corners w =
  let minv = 1 lsl (w - 1) in
  let m1 = (1 lsl w) - 1 in
  [ 0; 1; m1; minv; minv lor 1; m1 lxor minv ]

let test_signed_divrem ~w () =
  skip_without_cc ();
  let c, a, d = divrem_circuit ~w in
  let corners = divrem_corners w in
  let stimulus =
    List.concat_map (fun x -> List.map (fun y -> [ (a, b ~w x); (d, b ~w y) ]) corners) corners
    |> Array.of_list
  in
  let observe = List.map (fun (n : Circuit.node) -> n.Circuit.id) (Circuit.outputs c) in
  let expected = Sim.trace (Sim.of_reference (Reference.create c)) ~observe ~stimulus in
  let t = Full_cycle.create ~backend:`Native c in
  Alcotest.(check string)
    "native actually ran" "native" (Full_cycle.counters t).Counters.backend;
  let got = Sim.trace (Full_cycle.sim t) ~observe ~stimulus in
  if not (Sim.equal_traces expected got) then
    Alcotest.failf "signed div/rem (w=%d) diverges under native" w

(* --- differential torture: closures vs native ------------------------- *)

let engines backend :
    (string * (Circuit.t -> Sim.t * (unit -> unit))) list =
  [
    ("full_cycle", fun c -> (Full_cycle.sim (Full_cycle.create ~backend c), fun () -> ()));
    ( "essent_mffc",
      fun c ->
        let p = Partition.mffc c ~max_size:12 in
        ( Activity.sim ~name:"essent_mffc"
            (Activity.create ~config:Activity.essent_config ~backend c p),
          fun () -> () ) );
    ( "gsim",
      fun c ->
        let p = Partition.gsim c ~max_size:24 in
        ( Activity.sim ~name:"gsim"
            (Activity.create ~config:Activity.gsim_config ~backend c p),
          fun () -> () ) );
  ]

let parallel2 backend c =
  let t = Parallel.create ~backend ~threads:2 c in
  (Parallel.sim t, fun () -> Parallel.destroy t)

let oracle_subjects backend makes =
  List.map
    (fun (name, make) ->
      { Oracle.subject_name =
          Printf.sprintf "%s/%s" name (Eval.to_string backend);
        build = make })
    makes

(* Same seeds and generator parameters as test_bytecode's torture: every
   4th seed mixes wide (>62-bit) nodes in, exercising the per-node
   closure fallback interleaved with native runs. *)
let torture_one ~seed ~with_parallel =
  let st = Random.State.make [| seed; 3111 |] in
  let cfg =
    {
      Rand_circuit.default_config with
      Rand_circuit.logic_nodes = 25 + (seed mod 40);
      max_width = (if seed mod 4 = 0 then 120 else 62);
    }
  in
  let c = Rand_circuit.generate st cfg in
  let stimulus = Rand_circuit.random_stimulus st c ~cycles:12 in
  let steps = Oracle.steps_of_stimulus stimulus in
  let observe = Collect.default_observed c in
  let subjects backend =
    oracle_subjects backend
      (engines backend
      @ if with_parallel then [ ("parallel2", parallel2 backend) ] else [])
  in
  let outcomes =
    Oracle.run ~observe c steps (subjects `Closures @ subjects `Native)
  in
  (match Oracle.first_failure outcomes with
   | Some (s, f) ->
     Alcotest.failf "seed %d: %s: %s" seed s (Oracle.failure_to_string f)
   | None -> ());
  (* The [changed] counters must also be backend-independent. *)
  let changed name =
    match
      List.find_opt (fun (o : Oracle.outcome) -> o.Oracle.o_subject = name) outcomes
    with
    | Some { Oracle.o_counters = Some ct; _ } -> ct.Counters.changed
    | _ -> Alcotest.failf "seed %d: no counters for %s" seed name
  in
  List.iter
    (fun (name, _) ->
      Alcotest.(check int)
        (Printf.sprintf "seed %d: %s: changed counter" seed name)
        (changed (name ^ "/closures"))
        (changed (name ^ "/native")))
    (engines `Closures
    @ if with_parallel then [ ("parallel2", parallel2 `Closures) ] else [])

let test_torture () =
  skip_without_cc ();
  for seed = 0 to 119 do
    torture_one ~seed ~with_parallel:(seed mod 12 = 0)
  done

(* --- force/release under native --------------------------------------- *)

let force_engines backend targets :
    (string * (Circuit.t -> Sim.t * (unit -> unit))) list =
  [
    ( "full_cycle",
      fun c -> (Full_cycle.sim (Full_cycle.create ~backend ~forcible:targets c), fun () -> ()) );
    ( "gsim",
      fun c ->
        let p = Partition.gsim c ~max_size:24 in
        ( Activity.sim ~name:"gsim"
            (Activity.create ~config:Activity.gsim_config ~backend ~forcible:targets c p),
          fun () -> () ) );
    ( "parallel2",
      fun c ->
        let t = Parallel.create ~backend ~forcible:targets ~threads:2 c in
        (Parallel.sim t, fun () -> Parallel.destroy t) );
  ]

let torture_force_one ~seed =
  let st = Random.State.make [| seed; 9021 |] in
  let cfg =
    {
      Rand_circuit.default_config with
      Rand_circuit.logic_nodes = 20 + (seed mod 25);
      max_width = (if seed mod 5 = 0 then 100 else 62);
    }
  in
  let c = Rand_circuit.generate st cfg in
  let cycles = 14 in
  let stimulus = Rand_circuit.random_stimulus st c ~cycles in
  let candidates =
    Circuit.fold_nodes c ~init:[] ~f:(fun acc n ->
        match n.Circuit.kind with
        | Circuit.Logic | Circuit.Reg_read _ -> n.Circuit.id :: acc
        | _ -> acc)
    |> Array.of_list
  in
  let targets =
    List.init
      (min 4 (Array.length candidates))
      (fun _ -> candidates.(Random.State.int st (Array.length candidates)))
    |> List.sort_uniq compare
  in
  let schedule =
    Array.init cycles (fun _ ->
        List.filter_map
          (fun id ->
            let w = (Circuit.node c id).Circuit.width in
            match Random.State.int st 5 with
            | 0 -> Some (id, Some (None, Bits.random st ~width:w))
            | 1 ->
              Some (id, Some (Some (Bits.random st ~width:w), Bits.random st ~width:w))
            | 2 -> Some (id, None)
            | _ -> None)
          targets)
  in
  let observe = Collect.default_observed c in
  let steps =
    Array.init cycles (fun i ->
        {
          Oracle.pokes = stimulus.(i);
          actions =
            List.map
              (function
                | id, Some (mask, v) -> Oracle.Force { target = id; mask; value = v }
                | id, None -> Oracle.Release id)
              schedule.(i);
        })
  in
  let subjects = oracle_subjects `Native (force_engines `Native targets) in
  match Oracle.first_failure (Oracle.run ~observe c steps subjects) with
  | Some (s, f) ->
    Alcotest.failf "seed %d: %s (targets %s): forced run diverges from reference: %s"
      seed s
      (String.concat "," (List.map string_of_int targets))
      (Oracle.failure_to_string f)
  | None -> ()

let test_force_torture () =
  skip_without_cc ();
  for seed = 0 to 29 do
    torture_force_one ~seed
  done

(* --- .so cache: miss, hit, invalidation on hash change ----------------- *)

(* A parametric circuit whose IR text (and therefore digest) varies with
   [tag], so each test run's first build is a genuine compile. *)
let cache_circuit tag =
  let c = Circuit.create ~name:(Printf.sprintf "cache%d" tag) () in
  let x = Circuit.add_input c ~name:"x" ~width:16 in
  let vx = Expr.var ~width:16 x.Circuit.id in
  let n =
    Circuit.add_logic c ~name:"n"
      (Expr.unop (Expr.Extract (15, 0))
         (Expr.binop Expr.Add vx (Expr.of_int ~width:16 (tag land 0xffff))))
  in
  Circuit.mark_output c n.Circuit.id;
  c

let test_cache_hit_and_invalidation () =
  skip_without_cc ();
  let compiles0 = Native.stats.Native.compiles in
  let c1 = cache_circuit 1001 in
  let t1 = Full_cycle.create ~backend:`Native c1 in
  let ct1 = Full_cycle.counters t1 in
  Alcotest.(check string) "first build is native" "native" ct1.Counters.backend;
  Alcotest.(check string) "first build misses" "miss" ct1.Counters.native_cache;
  Alcotest.(check int) "one compile" (compiles0 + 1) Native.stats.Native.compiles;
  (* Same circuit again: the memo satisfies it — cc must not run. *)
  let t2 = Full_cycle.create ~backend:`Native (cache_circuit 1001) in
  let ct2 = Full_cycle.counters t2 in
  Alcotest.(check string) "second build hits" "hit" ct2.Counters.native_cache;
  Alcotest.(check int) "no second compile" (compiles0 + 1) Native.stats.Native.compiles;
  (* The cached artifacts exist on disk under the digest key. *)
  (match Native.load c1 with
   | Some (u, Native.Memo_hit) ->
     Alcotest.(check bool) "so cached" true (Sys.file_exists u.Native.so_path);
     Alcotest.(check bool) "c kept" true (Sys.file_exists u.Native.c_path)
   | _ -> Alcotest.fail "expected a memo hit");
  (* A different circuit hash invalidates: new digest, fresh compile. *)
  let t3 = Full_cycle.create ~backend:`Native (cache_circuit 1002) in
  let ct3 = Full_cycle.counters t3 in
  Alcotest.(check string) "changed hash misses" "miss" ct3.Counters.native_cache;
  Alcotest.(check int) "recompiled" (compiles0 + 2) Native.stats.Native.compiles

(* --- missing-compiler fallback ladder ---------------------------------- *)

let test_fallback_no_compiler () =
  let with_disabled f =
    let prev = try Sys.getenv "GSIM_NATIVE" with Not_found -> "" in
    Unix.putenv "GSIM_NATIVE" "off";
    Fun.protect
      ~finally:(fun () ->
        Unix.putenv "GSIM_NATIVE" (if prev = "" then "on" else prev))
      f
  in
  with_disabled (fun () ->
      Alcotest.(check bool) "backend reports unavailable" false (Native.available ());
      let c = cache_circuit 2001 in
      (* Requesting native must degrade, not fail — and still simulate
         correctly. *)
      let t = Full_cycle.create ~backend:`Native c in
      let ct = Full_cycle.counters t in
      Alcotest.(check bool)
        "fell back to an interpreted backend" true
        (ct.Counters.backend = "bytecode" || ct.Counters.backend = "closures");
      Alcotest.(check string) "no cache traffic" "" ct.Counters.native_cache;
      let x = (Option.get (Circuit.find_node c "x")).Circuit.id in
      let n = (Option.get (Circuit.find_node c "n")).Circuit.id in
      let stimulus = Array.init 4 (fun i -> [ (x, b ~w:16 (i * 7)) ]) in
      let expected =
        Sim.trace (Sim.of_reference (Reference.create c)) ~observe:[ n ] ~stimulus
      in
      let got = Sim.trace (Full_cycle.sim t) ~observe:[ n ] ~stimulus in
      if not (Sim.equal_traces expected got) then
        Alcotest.fail "fallback engine diverges from reference")

(* --- auto heuristic ----------------------------------------------------- *)

let test_auto_heuristic () =
  (* Small circuit: auto stays interpreted (bytecode) even with a
     compiler present — a cc run would cost more than it returns. *)
  let small = cache_circuit 3001 in
  let sel = Eval.select `Auto small in
  Alcotest.(check string) "small goes bytecode" "bytecode" (Eval.effective_string sel);
  (* Big narrow circuit: auto goes native when a compiler is present. *)
  let st = Random.State.make [| 77; 3111 |] in
  let big =
    Rand_circuit.generate st
      { Rand_circuit.default_config with Rand_circuit.logic_nodes = 400; max_width = 32 }
  in
  let est = Eval.estimate_instrs big in
  Alcotest.(check bool)
    (Printf.sprintf "estimate %d crosses the native threshold" est)
    true (est >= 512);
  let sel = Eval.select `Auto big in
  if have_cc then
    Alcotest.(check string) "big goes native" "native" (Eval.effective_string sel)
  else
    Alcotest.(check string) "big goes closures without cc" "closures"
      (Eval.effective_string sel)

(* --- emitted source sanity --------------------------------------------- *)

let test_emitted_source () =
  let c = cache_circuit 4001 in
  let r = Emit_c.emit c in
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "exports table" true (contains r.Emit_c.source "gsim_table");
  Alcotest.(check bool) "exports count" true (contains r.Emit_c.source "gsim_node_count");
  Alcotest.(check bool) "has compiled nodes" true (r.Emit_c.compiled_nodes > 0);
  (* Wide nodes compile via the limb-array path (ABI v2). *)
  let cw = Circuit.create ~name:"wide" () in
  let x = Circuit.add_input cw ~name:"x" ~width:100 in
  let n =
    Circuit.add_logic cw ~name:"n"
      (Expr.unop Expr.Not (Expr.var ~width:100 x.Circuit.id))
  in
  Circuit.mark_output cw n.Circuit.id;
  let rw = Emit_c.emit cw in
  Alcotest.(check int) "wide node compiles" 1 rw.Emit_c.compiled_nodes;
  Alcotest.(check bool) "wide source stores limbs" true
    (contains rw.Emit_c.source "gsim_wstore")

let () =
  Alcotest.run "native"
    [
      ( "divrem",
        [
          Alcotest.test_case "signed corners w=8" `Quick (test_signed_divrem ~w:8);
          Alcotest.test_case "signed corners w=62" `Quick (test_signed_divrem ~w:62);
        ] );
      ( "differential",
        [
          Alcotest.test_case "torture 120 random circuits" `Slow test_torture;
          Alcotest.test_case "force/release torture 30 circuits" `Slow test_force_torture;
        ] );
      ( "cache",
        [ Alcotest.test_case "miss, hit, invalidation" `Quick test_cache_hit_and_invalidation ] );
      ( "fallback",
        [ Alcotest.test_case "no compiler degrades gracefully" `Quick test_fallback_no_compiler ] );
      ( "auto",
        [ Alcotest.test_case "size-based selection" `Quick test_auto_heuristic ] );
      ( "emit",
        [ Alcotest.test_case "source shape" `Quick test_emitted_source ] );
    ]
