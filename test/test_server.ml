(* gsimd: wire protocol, scheduler, plan cache, compile split, and the
   daemon end-to-end over a Unix socket. *)

module Bits = Gsim_bits.Bits
module Circuit = Gsim_ir.Circuit
module Sim = Gsim_engine.Sim
module Checkpoint = Gsim_engine.Checkpoint
module Gsim = Gsim_core.Gsim
module Compile = Gsim_core.Gsim.Compile
module Store = Gsim_resilience.Store
module P = Gsim_server.Protocol
module Plan_cache = Gsim_server.Plan_cache
module Scheduler = Gsim_server.Scheduler
module Worker = Gsim_server.Worker
module Daemon = Gsim_server.Daemon
module Client = Gsim_server.Client

let temp_dir =
  let ctr = ref 0 in
  fun () ->
    incr ctr;
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "gsim-server-%d-%d" (Unix.getpid ()) !ctr)
    in
    Store.ensure_dir d;
    d

let gray_fir =
  "circuit Gray :\n\
  \  module Gray :\n\
  \    input clock : Clock\n\
  \    input reset : UInt<1>\n\
  \    input en : UInt<1>\n\
  \    output count : UInt<8>\n\
  \    output gray : UInt<8>\n\n\
  \    reg r : UInt<8>, clock with : (reset => (reset, UInt<8>(0)))\n\
  \    when en :\n\
  \      r <= tail(add(r, UInt<8>(1)), 1)\n\
  \    count <= r\n\
  \    gray <= xor(r, shr(r, 1))\n"

let expect_error name f =
  match f () with
  | _ -> Alcotest.failf "%s: expected Protocol.Error" name
  | exception P.Error _ -> ()

(* --- frames -------------------------------------------------------------- *)

let test_frame_roundtrip () =
  let payload = "binary \x00\x01\xff payload\n with newlines\n" in
  let f = P.frame_to_string ~kind:0x41 payload in
  Alcotest.(check int) "frame size" (P.header_size + String.length payload)
    (String.length f);
  let k, p = P.frame_of_string f in
  Alcotest.(check int) "kind" 0x41 k;
  Alcotest.(check string) "payload" payload p

let test_frame_zero_length () =
  let f = P.frame_to_string ~kind:0x05 "" in
  Alcotest.(check int) "header only" P.header_size (String.length f);
  let k, p = P.frame_of_string f in
  Alcotest.(check int) "kind" 0x05 k;
  Alcotest.(check string) "empty" "" p

let test_frame_max_size () =
  let big = String.make P.max_payload 'x' in
  let k, p = P.frame_of_string (P.frame_to_string ~kind:2 big) in
  Alcotest.(check int) "kind" 2 k;
  Alcotest.(check int) "max payload survives" P.max_payload (String.length p);
  expect_error "over-max encode" (fun () ->
      P.frame_to_string ~kind:2 (String.make (P.max_payload + 1) 'x'))

let test_frame_truncated () =
  let f = P.frame_to_string ~kind:1 "some payload bytes" in
  List.iter
    (fun k ->
      expect_error
        (Printf.sprintf "truncated at %d" k)
        (fun () -> P.frame_of_string (String.sub f 0 k)))
    [ 0; 3; P.header_size - 1; P.header_size + 1; String.length f - 1 ]

let test_frame_bad_magic_version () =
  let f = Bytes.of_string (P.frame_to_string ~kind:1 "abc") in
  let corrupt i c =
    let b = Bytes.copy f in
    Bytes.set b i c;
    Bytes.to_string b
  in
  (match P.frame_of_string (corrupt 0 'x') with
   | _ -> Alcotest.fail "bad magic accepted"
   | exception P.Error m ->
     Alcotest.(check bool) "magic diagnostic" true
       (String.length m >= 9 && String.sub m 0 9 = "bad magic"));
  (match P.frame_of_string (corrupt 4 '\x09') with
   | _ -> Alcotest.fail "bad version accepted"
   | exception P.Error m ->
     Alcotest.(check bool) "version diagnostic" true
       (String.length m >= 11 && String.sub m 0 11 = "unsupported"));
  (* An in-range header whose declared length exceeds the cap. *)
  let b = Bytes.copy f in
  Bytes.set b 6 '\x7f';
  Bytes.set b 7 '\xff';
  Bytes.set b 8 '\xff';
  Bytes.set b 9 '\xff';
  expect_error "oversize length field" (fun () ->
      P.frame_of_string (Bytes.to_string b))

(* --- request / response round-trips -------------------------------------- *)

let sample_opts =
  { P.eo_engine = "gsim"; eo_backend = "closures"; eo_level = Some "O2";
    eo_max_supernode = 12; eo_threads = 3 }

let sample_requests =
  [
    P.Sim
      ( P.Interactive,
        { P.sj_filename = "gray.fir"; sj_design = gray_fir; sj_opts = sample_opts;
          sj_cycles = 123; sj_pokes = [ "en=1"; "reset=0" ];
          sj_token = Some "cli-1-0.5"; sj_tenant = Some "alice"; sj_deadline = 2.5 } );
    P.Campaign
      ( P.Batch,
        { P.cj_filename = "gray.fir"; cj_design = gray_fir;
          cj_opts = P.default_engine_opts; cj_horizon = 40; cj_budget = 15;
          cj_faults = [ "seu:r:3@7" ]; cj_random = 8; cj_seed = 9; cj_duration = 2;
          cj_models = Some "seu,stuck0"; cj_pokes = [ "en=1" ]; cj_token = None;
          cj_tenant = None; cj_deadline = 0. } );
    P.Fuzz
      ( P.Batch,
        { P.fj_seed = 4; fj_cases = 25; fj_from = 25; fj_cycles = 64;
          fj_setups = Some "gsim+bytecode"; fj_token = None; fj_tenant = Some "ci";
          fj_deadline = 0. } );
    P.Coverage
      ( P.Interactive,
        { P.vj_filename = "gray.fir"; vj_design = gray_fir;
          vj_opts = P.default_engine_opts; vj_cycles = 77; vj_pokes = [];
          vj_token = Some "t"; vj_tenant = None; vj_deadline = 1.25 } );
    P.Status;
    P.Shutdown;
  ]

let sample_responses =
  [
    P.Sim_done
      { P.sr_engine = "gsim"; sr_cycles = 123; sr_halted = true;
        sr_outputs = [ ("count", "8'h2a"); ("gray", "8'h3f") ]; sr_cache_hit = true;
        sr_compile_seconds = 0.015625; sr_preemptions = 2 };
    P.Db_done
      { P.dr_kind = "fault"; dr_text = "line1\nline2\n"; dr_summary = "10 fault(s)";
        dr_cache_hit = false; dr_seconds = 1.5 };
    P.Status_ok
      { P.st_workers = 4; st_queued = 1; st_running = 2; st_completed = 33;
        st_rejected = 5; st_cache_entries = 3; st_cache_capacity = 16;
        st_cache_hits = 20; st_cache_misses = 13; st_cache_evictions = 1;
        st_golden_hits = 2; st_golden_misses = 3; st_preemptions = 7;
        st_uptime = 12.125; st_draining = false; st_retries = 4; st_hangs = 2;
        st_worker_crashes = 3; st_worker_restarts = 3; st_gave_up = 1;
        st_quarantined = 1; st_quarantine_trips = 2; st_chaos_injected = 5;
        st_shed = 6; st_over_budget = 2; st_deadline_expired = 1;
        st_tenants =
          [ { P.tn_tenant = "alice"; tn_submitted = 9; tn_completed = 7; tn_shed = 1;
              tn_expired = 1; tn_inflight = 0 };
            { P.tn_tenant = "bob"; tn_submitted = 3; tn_completed = 3; tn_shed = 0;
              tn_expired = 0; tn_inflight = 2 } ] };
    P.Shutting_down;
    P.Error_resp
      { P.ei_code = P.Queue_full;
        ei_message = "queue full (64 job(s) queued); retry later"; ei_attempts = 1;
        ei_retry_after = 0. };
    P.Error_resp
      { P.ei_code = P.Worker_lost; ei_message = "job failed after 4 attempt(s)";
        ei_attempts = 4; ei_retry_after = 0. };
    P.Error_resp
      { P.ei_code = P.Overloaded; ei_message = "daemon overloaded; retry later";
        ei_attempts = 1; ei_retry_after = 7.5 };
    P.Error_resp
      { P.ei_code = P.Over_budget;
        ei_message = "estimated 300000 node(s) exceeds the daemon budget 200000";
        ei_attempts = 1; ei_retry_after = 0. };
    P.Error_resp
      { P.ei_code = P.Deadline_exceeded; ei_message = "deadline exceeded after 40 cycle(s)";
        ei_attempts = 1; ei_retry_after = 0. };
  ]

let test_request_roundtrip () =
  List.iter
    (fun r ->
      Alcotest.(check bool) "request round-trips" true
        (P.decode_request (P.encode_request r) = r))
    sample_requests

let test_response_roundtrip () =
  List.iter
    (fun r ->
      Alcotest.(check bool) "response round-trips" true
        (P.decode_response (P.encode_response r) = r))
    sample_responses

let test_channel_io () =
  let path = Filename.temp_file "gsim_proto" ".bin" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
  @@ fun () ->
  let oc = open_out_bin path in
  List.iter (P.write_request oc) sample_requests;
  close_out oc;
  let ic = open_in_bin path in
  List.iter
    (fun expected ->
      match P.read_request ic with
      | Some got -> Alcotest.(check bool) "stream request" true (got = expected)
      | None -> Alcotest.fail "premature EOF")
    sample_requests;
  Alcotest.(check bool) "clean EOF is None" true (P.read_request ic = None);
  close_in ic;
  (* EOF mid-frame is an error, not None. *)
  let oc = open_out_bin path in
  let whole = P.encode_request P.Status in
  output_string oc (String.sub whole 0 (String.length whole - 1));
  close_out oc;
  let ic = open_in_bin path in
  expect_error "mid-frame EOF" (fun () -> P.read_request ic);
  close_in ic

let test_address_parse () =
  Alcotest.(check bool) "tcp" true
    (P.address_of_string "localhost:9900" = P.Tcp ("localhost", 9900));
  Alcotest.(check bool) "unix path" true
    (P.address_of_string "/tmp/gsimd.sock" = P.Unix_sock "/tmp/gsimd.sock");
  Alcotest.(check bool) "relative unix path" true
    (P.address_of_string "gsimd.sock" = P.Unix_sock "gsimd.sock");
  List.iter
    (fun a ->
      Alcotest.(check bool) "address round-trips" true
        (P.address_of_string (P.address_to_string a) = a))
    [ P.Unix_sock "x/y.sock"; P.Tcp ("127.0.0.1", 1234) ]

(* --- scheduler ------------------------------------------------------------ *)

let accepted = function Scheduler.Accepted -> true | _ -> false

let test_scheduler_priority () =
  let s = Scheduler.create ~capacity:8 () in
  Alcotest.(check bool) "b1" true (accepted (Scheduler.submit s ~priority:1 "b1"));
  Alcotest.(check bool) "b2" true (accepted (Scheduler.submit s ~priority:1 "b2"));
  Alcotest.(check bool) "i1" true (accepted (Scheduler.submit s ~priority:0 "i1"));
  Alcotest.(check int) "queued" 3 (Scheduler.queued s);
  Alcotest.(check bool) "higher than batch" true (Scheduler.higher_waiting s ~than:1);
  Alcotest.(check bool) "nothing above interactive" false
    (Scheduler.higher_waiting s ~than:0);
  (* Interactive first, then batch in FIFO order. *)
  Alcotest.(check (option string)) "take i1" (Some "i1") (Scheduler.take s);
  Alcotest.(check (option string)) "take b1" (Some "b1") (Scheduler.take s);
  Alcotest.(check (option string)) "take b2" (Some "b2") (Scheduler.take s)

let test_scheduler_bound_and_drain () =
  let s = Scheduler.create ~capacity:2 () in
  Alcotest.(check bool) "1 fits" true (accepted (Scheduler.submit s ~priority:1 1));
  Alcotest.(check bool) "2 fits" true (accepted (Scheduler.submit s ~priority:0 2));
  Alcotest.(check bool) "3 refused (full)" true
    (Scheduler.submit s ~priority:0 3 = Scheduler.Rejected_full);
  (* Requeue ignores the bound: a preempted job must be re-admitted. *)
  Scheduler.requeue s ~priority:1 4;
  Alcotest.(check int) "requeue over bound" 3 (Scheduler.queued s);
  Scheduler.drain s;
  Alcotest.(check bool) "draining" true (Scheduler.draining s);
  Alcotest.(check bool) "submit refused while draining" true
    (Scheduler.submit s ~priority:0 5 = Scheduler.Rejected_full);
  Alcotest.(check (option int)) "backlog survives drain" (Some 2) (Scheduler.take s);
  Alcotest.(check (option int)) "fifo" (Some 1) (Scheduler.take s);
  Alcotest.(check (option int)) "requeued job drains too" (Some 4) (Scheduler.take s);
  Alcotest.(check (option int)) "empty+draining is None" None (Scheduler.take s)

(* --- plan cache ----------------------------------------------------------- *)

let test_plan_cache_lru () =
  let c = Plan_cache.create ~capacity:2 () in
  Alcotest.(check (option int)) "initial miss" None (Plan_cache.find c "a");
  Plan_cache.add c "a" 1;
  Plan_cache.add c "b" 2;
  Alcotest.(check (option int)) "hit a" (Some 1) (Plan_cache.find c "a");
  (* "b" is now least recent; adding "c" evicts it. *)
  Plan_cache.add c "c" 3;
  Alcotest.(check (option int)) "b evicted" None (Plan_cache.find c "b");
  Alcotest.(check (option int)) "a kept" (Some 1) (Plan_cache.find c "a");
  Alcotest.(check (option int)) "c kept" (Some 3) (Plan_cache.find c "c");
  let s = Plan_cache.stats c in
  Alcotest.(check int) "entries" 2 s.Plan_cache.entries;
  Alcotest.(check int) "hits" 3 s.Plan_cache.hits;
  Alcotest.(check int) "misses" 2 s.Plan_cache.misses;
  Alcotest.(check int) "evictions" 1 s.Plan_cache.evictions

let test_plan_cache_disabled () =
  let c = Plan_cache.create ~capacity:0 () in
  Plan_cache.add c "a" 1;
  Alcotest.(check (option int)) "always misses" None (Plan_cache.find c "a");
  Alcotest.(check int) "no entries" 0 (Plan_cache.stats c).Plan_cache.entries

(* --- Compile split -------------------------------------------------------- *)

let gsim_config () =
  Gsim.config_of_names ~engine:"gsim" ~threads:1 ~level:None ~max_supernode:0
    ~backend:"bytecode"

let run_outputs compiled cycles pokes =
  let sim = compiled.Gsim.sim in
  let circuit = sim.Sim.circuit in
  List.iter
    (fun (name, v) ->
      match Circuit.find_node circuit name with
      | Some n -> sim.Sim.poke n.Circuit.id (Bits.of_int ~width:n.Circuit.width v)
      | None -> Alcotest.failf "no input %s" name)
    pokes;
  for _ = 1 to cycles do
    sim.Sim.step ()
  done;
  Circuit.outputs circuit
  |> List.map (fun (n : Circuit.node) ->
         (n.Circuit.name, Format.asprintf "%a" Bits.pp (sim.Sim.peek n.Circuit.id)))

let test_compile_hash_stable () =
  let s1 = Compile.source_of_string ~filename:"gray.fir" gray_fir in
  let s2 = Compile.source_of_string ~filename:"gray.fir" gray_fir in
  Alcotest.(check string) "hash is deterministic" s1.Compile.hash s2.Compile.hash;
  (* Reformatting that does not change the circuit keeps the hash: the
     hash covers the canonical IR text, not the input bytes. *)
  let s3 =
    Compile.source_of_string ~filename:"gray.fir"
      (String.concat "\n" (String.split_on_char '\n' gray_fir) ^ "\n")
  in
  Alcotest.(check string) "whitespace-stable" s1.Compile.hash s3.Compile.hash;
  Alcotest.(check int) "md5 hex" 32 (String.length s1.Compile.hash)

let test_compile_matches_instantiate () =
  let config = gsim_config () in
  let source = Compile.source_of_string ~filename:"gray.fir" gray_fir in
  let plan = Compile.prepare config source in
  let via_plan = Compile.realize plan in
  let direct = Gsim.instantiate config source.Compile.circuit in
  let pokes = [ ("en", 1) ] in
  let a = run_outputs via_plan 37 pokes in
  let b = run_outputs direct 37 pokes in
  via_plan.Gsim.destroy ();
  direct.Gsim.destroy ();
  Alcotest.(check bool) "plan path matches direct instantiation" true (a = b)

let test_plan_shared_across_instances () =
  let config = gsim_config () in
  let source = Compile.source_of_string ~filename:"gray.fir" gray_fir in
  let plan = Compile.prepare config source in
  (* One prepared plan backs several concurrent engine instances. *)
  let c1 = Compile.realize plan and c2 = Compile.realize plan in
  let a = run_outputs c1 20 [ ("en", 1) ] in
  let b = run_outputs c2 50 [ ("en", 1) ] in
  let b' = run_outputs c1 30 [] in
  (* c1 continued 30 more cycles with en still driven = 50 total. *)
  c1.Gsim.destroy ();
  c2.Gsim.destroy ();
  Alcotest.(check bool) "instances are independent" true (a <> b);
  Alcotest.(check bool) "same plan, same trajectory" true (b = b')

(* --- worker preemption: checkpoint/resume identity ------------------------ *)

let test_preemption_identity () =
  let spool = temp_dir () in
  let sched = Scheduler.create () in
  let ctx =
    { Worker.cache = Plan_cache.create (); sched; spool; preempt_stride = 10;
      log = ignore; chaos = Gsim_server.Chaos.off; preemption_count = Atomic.make 0;
      golden_hits = Atomic.make 0; golden_misses = Atomic.make 0 }
  in
  let sj =
    { P.sj_filename = "gray.fir"; sj_design = gray_fir;
      sj_opts = P.default_engine_opts; sj_cycles = 95; sj_pokes = [ "en=1" ];
      sj_token = None; sj_tenant = None; sj_deadline = 0. }
  in
  let result = ref None in
  let job =
    Worker.make_job ~id:1 ~priority:1 ~reply:(fun r -> result := Some r)
      (P.Sim (P.Batch, sj))
  in
  (* Higher-priority work is already waiting, so the batch job yields at
     its first 10-cycle stride — repeatedly, as long as we keep the
     interactive queue non-empty. *)
  let interactive =
    Worker.make_job ~id:2 ~priority:0 ~reply:ignore (P.Sim (P.Interactive, sj))
  in
  Alcotest.(check bool) "queue interactive" true
    (accepted (Scheduler.submit sched ~priority:0 interactive));
  (match Worker.execute ctx job with
   | Worker.Yielded -> ()
   | Worker.Done _ | Worker.Abandoned ->
     Alcotest.fail "expected a yield with higher work waiting");
  Alcotest.(check int) "progress = one stride" 10 job.Worker.done_cycles;
  Alcotest.(check bool) "checkpoint captured" true (job.Worker.ck <> None);
  (* Run the interactive job (drains the higher level), then resume. *)
  ignore (Scheduler.take sched);
  (match Worker.execute ctx interactive with
   | Worker.Done (P.Sim_done r) ->
     Alcotest.(check int) "interactive never yields" 0 r.P.sr_preemptions
   | _ -> Alcotest.fail "interactive job failed");
  (match Worker.execute ctx job with
   | Worker.Done (P.Sim_done r) ->
     Alcotest.(check int) "full run length" 95 r.P.sr_cycles;
     Alcotest.(check int) "one preemption" 1 r.P.sr_preemptions;
     (* The interrupted run must equal an uninterrupted one. *)
     let uj =
       Worker.make_job ~id:3 ~priority:0 ~reply:ignore (P.Sim (P.Interactive, sj))
     in
     (match Worker.execute ctx uj with
      | Worker.Done (P.Sim_done u) ->
        Alcotest.(check bool) "outputs identical to uninterrupted run" true
          (r.P.sr_outputs = u.P.sr_outputs)
      | _ -> Alcotest.fail "uninterrupted run failed")
   | _ -> Alcotest.fail "resumed job failed");
  Alcotest.(check int) "preemption counter" 1 (Atomic.get ctx.Worker.preemption_count)

(* --- worker spool ring: delta chain, resume after a lost daemon ----------- *)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let test_worker_spool_resume () =
  let spool = temp_dir () in
  let sched = Scheduler.create () in
  let logs = ref [] in
  let ctx =
    { Worker.cache = Plan_cache.create (); sched; spool; preempt_stride = 10;
      log = (fun l -> logs := l :: !logs); chaos = Gsim_server.Chaos.off;
      preemption_count = Atomic.make 0; golden_hits = Atomic.make 0;
      golden_misses = Atomic.make 0 }
  in
  let sj =
    { P.sj_filename = "gray.fir"; sj_design = gray_fir;
      sj_opts = P.default_engine_opts; sj_cycles = 95; sj_pokes = [ "en=1" ];
      sj_token = None; sj_tenant = None; sj_deadline = 0. }
  in
  let expected =
    let uj =
      Worker.make_job ~id:99 ~priority:0 ~reply:ignore (P.Sim (P.Interactive, sj))
    in
    match Worker.execute ctx uj with
    | Worker.Done (P.Sim_done u) -> u.P.sr_outputs
    | _ -> Alcotest.fail "uninterrupted run failed"
  in
  (* Yield a batch job three times (interactive work keeps waiting), so
     the spool ring holds a keyframe and a two-delta chain. *)
  let build_chain id =
    let interactive =
      Worker.make_job ~id:(50 + id) ~priority:0 ~reply:ignore (P.Sim (P.Interactive, sj))
    in
    Alcotest.(check bool) "queue interactive" true
      (accepted (Scheduler.submit sched ~priority:0 interactive));
    let job =
      Worker.make_job ~id ~priority:1 ~reply:ignore (P.Sim (P.Batch, sj))
    in
    for _ = 1 to 3 do
      match Worker.execute ctx job with
      | Worker.Yielded -> ()
      | Worker.Done _ | Worker.Abandoned -> Alcotest.fail "expected a yield"
    done;
    ignore (Scheduler.take sched);
    Alcotest.(check int) "three strides done" 30 job.Worker.done_cycles;
    Filename.concat spool (Printf.sprintf "sim-job-%03d" id)
  in
  let dir = build_chain 1 in
  let gens =
    List.map (fun (c, _, kind) -> (c, kind)) (Store.generations (Store.create dir))
  in
  Alcotest.(check bool) "keyframe then two chained deltas" true
    (gens = [ (10, `Full); (20, `Delta); (30, `Delta) ]);
  (* The daemon died: a fresh job record (no in-memory checkpoint) marked
     [recovered] must resume from the on-disk chain, not cycle 0. *)
  let resume id expect_cycle =
    let result = ref None in
    let rj =
      Worker.make_job ~id ~priority:1 ~reply:(fun r -> result := Some r)
        (P.Sim (P.Batch, sj))
    in
    rj.Worker.recovered <- true;
    (match Worker.execute ctx rj with
     | Worker.Done (P.Sim_done r) ->
       Alcotest.(check int) "full run length" 95 r.P.sr_cycles;
       Alcotest.(check bool) "outputs identical to uninterrupted run" true
         (r.P.sr_outputs = expected)
     | _ -> Alcotest.fail "recovered job failed");
    Alcotest.(check bool)
      (Printf.sprintf "resumed at cycle %d" expect_cycle)
      true
      (List.exists
         (fun l -> contains l (Printf.sprintf "at cycle %d" expect_cycle))
         !logs)
  in
  resume 1 30;
  Alcotest.(check bool) "ring retired on completion" false (Sys.file_exists dir);
  (* Torn final write: truncate the newest delta mid-file.  Its chain
     link breaks, so recovery must land one generation back — and still
     finish with identical outputs. *)
  let dir = build_chain 2 in
  let tip =
    match List.rev (Store.generations (Store.create dir)) with
    | (30, path, `Delta) :: _ -> path
    | _ -> Alcotest.fail "expected a delta tip at cycle 30"
  in
  let whole = In_channel.with_open_bin tip In_channel.input_all in
  Out_channel.with_open_bin tip (fun oc ->
      Out_channel.output_string oc (String.sub whole 0 (String.length whole / 2)));
  logs := [];
  resume 2 20

(* --- daemon end-to-end ---------------------------------------------------- *)

let start_daemon ?(workers = 2) ?(cache = 16) ?stride ?dir ?log_path () =
  let dir = match dir with Some d -> d | None -> temp_dir () in
  let sock = Filename.concat dir "gsimd.sock" in
  let devnull =
    match log_path with Some p -> open_out p | None -> open_out "/dev/null"
  in
  let dflt = Daemon.default_config (P.Unix_sock sock) in
  let cfg =
    { dflt with
      Daemon.workers; cache_capacity = cache; spool = Some (Filename.concat dir "spool");
      preempt_stride = (match stride with Some s -> s | None -> dflt.Daemon.preempt_stride);
      log = devnull }
  in
  let t = Thread.create (fun () -> Daemon.serve cfg) () in
  let rec wait n =
    if not (Sys.file_exists sock) then
      if n = 0 then Alcotest.fail "daemon did not come up"
      else begin
        Unix.sleepf 0.01;
        wait (n - 1)
      end
  in
  wait 500;
  (P.Unix_sock sock, sock, t, devnull)

let stop_daemon (address, sock, t, devnull) =
  (match Client.with_connection address (fun c -> Client.call c P.Shutdown) with
   | P.Shutting_down -> ()
   | _ -> Alcotest.fail "shutdown not acknowledged");
  Thread.join t;
  close_out devnull;
  Alcotest.(check bool) "socket removed on drain" false (Sys.file_exists sock)

let test_daemon_concurrent_clients () =
  let ((address, _, _, _) as d) = start_daemon () in
  let sj cycles =
    { P.sj_filename = "gray.fir"; sj_design = gray_fir;
      sj_opts = P.default_engine_opts; sj_cycles = cycles; sj_pokes = [ "en=1" ];
      sj_token = None; sj_tenant = None; sj_deadline = 0. }
  in
  (* The local truth each remote answer must match. *)
  let local cycles =
    let source = Compile.source_of_string ~filename:"gray.fir" gray_fir in
    let compiled = Compile.realize (Compile.prepare (gsim_config ()) source) in
    let out = run_outputs compiled cycles [ ("en", 1) ] in
    compiled.Gsim.destroy ();
    out
  in
  let results = Array.make 2 None in
  let client slot cycles () =
    results.(slot) <-
      Some (Client.with_connection address (fun c ->
                Client.call c (P.Sim (P.Interactive, sj cycles))))
  in
  let t1 = Thread.create (client 0 40) () in
  let t2 = Thread.create (client 1 70) () in
  Thread.join t1;
  Thread.join t2;
  let check slot cycles =
    match results.(slot) with
    | Some (P.Sim_done r) ->
      Alcotest.(check int) "cycles" cycles r.P.sr_cycles;
      Alcotest.(check bool) "matches local gsim sim" true
        (r.P.sr_outputs = local cycles)
    | _ -> Alcotest.failf "client %d failed" slot
  in
  check 0 40;
  check 1 70;
  (* Same design, same config: by now the plan must be cached. *)
  (match Client.with_connection address (fun c ->
             Client.call c (P.Sim (P.Interactive, sj 10)))
   with
   | P.Sim_done r -> Alcotest.(check bool) "third request hits the cache" true r.P.sr_cache_hit
   | _ -> Alcotest.fail "third request failed");
  (match Client.with_connection address (fun c -> Client.call c P.Status) with
   | P.Status_ok s ->
     Alcotest.(check int) "three jobs completed" 3 s.P.st_completed;
     Alcotest.(check bool) "cache hits counted" true (s.P.st_cache_hits >= 1);
     Alcotest.(check bool) "not draining" false s.P.st_draining
   | _ -> Alcotest.fail "status failed");
  stop_daemon d

let test_daemon_bad_job () =
  let ((address, _, _, _) as d) = start_daemon () in
  let bad =
    { P.sj_filename = "nope.fir"; sj_design = "circuit Broken :\n  module Missing :\n";
      sj_opts = P.default_engine_opts; sj_cycles = 5; sj_pokes = []; sj_token = None;
      sj_tenant = None; sj_deadline = 0. }
  in
  (match Client.with_connection address (fun c ->
             Client.call c (P.Sim (P.Interactive, bad)))
   with
   | P.Error_resp _ -> ()
   | _ -> Alcotest.fail "broken design must produce Error_resp");
  (* The daemon survives a failed job. *)
  (match Client.with_connection address (fun c -> Client.call c P.Status) with
   | P.Status_ok s -> Alcotest.(check int) "failed job still completes" 1 s.P.st_completed
   | _ -> Alcotest.fail "status after failure");
  stop_daemon d

(* --- daemon restart: persisted batch jobs are re-admitted ----------------- *)

let test_daemon_restart_readmits () =
  let dir = temp_dir () in
  let spool = Filename.concat dir "spool" in
  let jobs_dir = Filename.concat spool "jobs" in
  Store.ensure_dir jobs_dir;
  let sj cycles =
    { P.sj_filename = "gray.fir"; sj_design = gray_fir;
      sj_opts = P.default_engine_opts; sj_cycles = cycles; sj_pokes = [ "en=1" ];
      sj_token = None; sj_tenant = None; sj_deadline = 0. }
  in
  (* Everything a SIGKILLed daemon leaves behind: the persisted batch
     request, a preemption spool ring (keyframe at cycle 20, delta at
     30), and one unreadable leftover whose id must still be retired. *)
  let job7 = Filename.concat jobs_dir "job-000007.gjb" in
  Store.write_atomic job7 (P.encode_request (P.Sim (P.Batch, sj 60)));
  let job9 = Filename.concat jobs_dir "job-000009.gjb" in
  Store.write_atomic job9 "not a protocol frame";
  let ring = Filename.concat spool "sim-job-007" in
  let () =
    let source = Compile.source_of_string ~filename:"gray.fir" gray_fir in
    let compiled = Compile.realize (Compile.prepare (gsim_config ()) source) in
    let sim = compiled.Gsim.sim in
    (match Circuit.find_node sim.Sim.circuit "en" with
     | Some n -> sim.Sim.poke n.Circuit.id (Bits.of_int ~width:1 1)
     | None -> Alcotest.fail "no en input");
    for _ = 1 to 20 do sim.Sim.step () done;
    let ck20 = Checkpoint.with_cycle (Checkpoint.capture sim) 20 in
    for _ = 1 to 10 do sim.Sim.step () done;
    let ck30 = Checkpoint.with_cycle (Checkpoint.capture sim) 30 in
    compiled.Gsim.destroy ();
    let store = Store.create ring in
    let _, crc = Store.save_keyframe store ck20 in
    ignore (Store.save_delta store (Checkpoint.delta_of ~base:ck20 ~base_crc:crc ck30))
  in
  let log_path = Filename.concat dir "daemon.log" in
  let ((address, _, _, _) as d) = start_daemon ~dir ~log_path () in
  (* The recovered job runs with no client attached; wait for it. *)
  let rec poll n =
    if n = 0 then Alcotest.fail "recovered job never completed";
    match Client.with_connection address (fun c -> Client.call c P.Status) with
    | P.Status_ok s when s.P.st_completed >= 1 -> ()
    | _ ->
      Unix.sleepf 0.02;
      poll (n - 1)
  in
  poll 500;
  Alcotest.(check bool) "request file retired on completion" false
    (Sys.file_exists job7);
  Alcotest.(check bool) "unreadable job file dropped" false (Sys.file_exists job9);
  Alcotest.(check bool) "spool ring retired on completion" false
    (Sys.file_exists ring);
  (* New submissions must be numbered above every scanned id (9 was the
     max), even the undecodable one. *)
  (match Client.with_connection address (fun c ->
             Client.call c (P.Sim (P.Batch, sj 40)))
   with
   | P.Sim_done r -> Alcotest.(check int) "new job runs" 40 r.P.sr_cycles
   | _ -> Alcotest.fail "post-restart submission failed");
  stop_daemon d;
  let log = In_channel.with_open_bin log_path In_channel.input_all in
  Alcotest.(check bool) "boot re-admitted job 7" true
    (contains log "re-admitted interrupted job 7");
  Alcotest.(check bool) "resume came from the delta tip" true
    (contains log "job 7: resumed from spooled delta-000000000030.gcd at cycle 30");
  Alcotest.(check bool) "recovered job completed" true
    (contains log "recovered job 7 completed");
  Alcotest.(check bool) "ids continue above the scan" true
    (contains log "job 10 queued")

(* --- drain waits for worker acks ------------------------------------------ *)

(* Regression: a drain must wait on worker acknowledgements (busy
   supervisor slots), not on queue emptiness.  A preempted batch job
   lives in a worker's hands while the queue is momentarily empty; a
   drain keyed on the queue could stop the pool and lose it.  Here a
   batch job is forced to yield repeatedly (tiny stride, interactive
   traffic) while a shutdown lands mid-flight — both clients must still
   get correct responses. *)
let test_drain_waits_for_inflight () =
  let ((address, _, _, _) as d) = start_daemon ~workers:1 ~stride:500 () in
  let sj cycles =
    { P.sj_filename = "gray.fir"; sj_design = gray_fir;
      sj_opts = P.default_engine_opts; sj_cycles = cycles; sj_pokes = [ "en=1" ];
      sj_token = None; sj_tenant = None; sj_deadline = 0. }
  in
  let batch_cycles = 400_000 in
  let batch_result = ref None in
  let t_batch =
    Thread.create
      (fun () ->
        batch_result :=
          Some (Client.with_connection address (fun c ->
                    Client.call c (P.Sim (P.Batch, sj batch_cycles)))))
      ()
  in
  Unix.sleepf 0.05;
  let inter_result = ref None in
  let t_inter =
    Thread.create
      (fun () ->
        inter_result :=
          Some (Client.with_connection address (fun c ->
                    Client.call c (P.Sim (P.Interactive, sj 20)))))
      ()
  in
  Unix.sleepf 0.02;
  (* Shutdown while the batch job is (very likely) mid-flight. *)
  stop_daemon d;
  Thread.join t_batch;
  Thread.join t_inter;
  (match !inter_result with
   | Some (P.Sim_done r) -> Alcotest.(check int) "interactive cycles" 20 r.P.sr_cycles
   | _ -> Alcotest.fail "interactive job lost in the drain");
  match !batch_result with
  | Some (P.Sim_done r) ->
    Alcotest.(check int) "batch ran to completion through the drain" batch_cycles
      r.P.sr_cycles
  | Some (P.Error_resp e) -> Alcotest.failf "batch job failed: %s" e.P.ei_message
  | _ -> Alcotest.fail "batch job lost in the drain"

(* --- Store SIGTERM cleanup ------------------------------------------------ *)

let test_store_sigterm_cleanup () =
  let dir = temp_dir () in
  let tracked = Filename.concat dir "tracked.tmp" in
  match Unix.fork () with
  | 0 ->
    (* Child: create and track a temp file, then wait to be killed. *)
    let oc = open_out tracked in
    output_string oc "scratch";
    close_out oc;
    Store.track_tmp tracked;
    (try
       while true do
         Unix.sleepf 0.05
       done
     with _ -> ());
    Stdlib.exit 0
  | pid ->
    let rec wait_file n =
      if not (Sys.file_exists tracked) then
        if n = 0 then Alcotest.fail "child never created the file"
        else begin
          Unix.sleepf 0.01;
          wait_file (n - 1)
        end
    in
    wait_file 500;
    Unix.sleepf 0.05;
    Unix.kill pid Sys.sigterm;
    (match Unix.waitpid [] pid with
     | _, Unix.WEXITED code ->
       Alcotest.(check int) "SIGTERM handler exits 143" 143 code
     | _ -> Alcotest.fail "child did not exit normally");
    Alcotest.(check bool) "tracked temp file removed on SIGTERM" false
      (Sys.file_exists tracked)

let () =
  Alcotest.run "server"
    [
      ( "protocol",
        [
          Alcotest.test_case "frame round-trip" `Quick test_frame_roundtrip;
          Alcotest.test_case "zero-length frame" `Quick test_frame_zero_length;
          Alcotest.test_case "max-size frame" `Quick test_frame_max_size;
          Alcotest.test_case "truncated frames rejected" `Quick test_frame_truncated;
          Alcotest.test_case "bad magic/version rejected" `Quick
            test_frame_bad_magic_version;
          Alcotest.test_case "requests round-trip" `Quick test_request_roundtrip;
          Alcotest.test_case "responses round-trip" `Quick test_response_roundtrip;
          Alcotest.test_case "channel stream io" `Quick test_channel_io;
          Alcotest.test_case "address parsing" `Quick test_address_parse;
        ] );
      ( "scheduler",
        [
          Alcotest.test_case "priority order" `Quick test_scheduler_priority;
          Alcotest.test_case "bound and drain" `Quick test_scheduler_bound_and_drain;
        ] );
      ( "plan-cache",
        [
          Alcotest.test_case "lru eviction" `Quick test_plan_cache_lru;
          Alcotest.test_case "capacity 0 disables" `Quick test_plan_cache_disabled;
        ] );
      ( "compile",
        [
          Alcotest.test_case "hash stability" `Quick test_compile_hash_stable;
          Alcotest.test_case "plan matches instantiate" `Quick
            test_compile_matches_instantiate;
          Alcotest.test_case "plan shared across instances" `Quick
            test_plan_shared_across_instances;
        ] );
      ( "worker",
        [
          Alcotest.test_case "preemption identity" `Quick test_preemption_identity;
          Alcotest.test_case "spool ring delta-chain resume" `Quick
            test_worker_spool_resume;
        ] );
      (* Must precede the daemon suite: Unix.fork is illegal once any
         Domain has been spawned, and Daemon.serve spawns its pool. *)
      ( "store",
        [ Alcotest.test_case "sigterm cleanup" `Quick test_store_sigterm_cleanup ] );
      ( "daemon",
        [
          Alcotest.test_case "two concurrent clients" `Quick
            test_daemon_concurrent_clients;
          Alcotest.test_case "bad job is an error, not a crash" `Quick
            test_daemon_bad_job;
          Alcotest.test_case "restart re-admits persisted batch jobs" `Quick
            test_daemon_restart_readmits;
          Alcotest.test_case "drain waits for in-flight worker acks" `Quick
            test_drain_waits_for_inflight;
        ] );
    ]
